package browser

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/crl"
	"repro/internal/ocsp"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/x509x"
)

// world is a complete PKI reachable over a simnet fabric: root CA,
// intermediate CA, and helpers to issue leaves and build chains.
type world struct {
	t     *testing.T
	clock *simtime.Clock
	net   *simnet.Network
	root  *ca.CA
	inter *ca.CA
}

// protoMode selects which revocation pointers certificates carry.
type protoMode int

const (
	crlOnly protoMode = iota
	ocspOnly
	bothProtos
)

func newWorld(t *testing.T, mode protoMode) *world {
	t.Helper()
	clock := simtime.NewClock(simtime.Date(2015, time.March, 1))
	net := simnet.New()
	includeCRL := mode == crlOnly || mode == bothProtos
	includeOCSP := mode == ocspOnly || mode == bothProtos
	root, err := ca.NewRoot(ca.Config{
		Name:         "Root",
		CRLBaseURL:   "http://crl.root.test/crl",
		OCSPBaseURL:  "http://ocsp.root.test/ocsp",
		IncludeCRLDP: includeCRL,
		IncludeOCSP:  includeOCSP,
		Clock:        clock.Now,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	inter, err := ca.NewIntermediate(ca.Config{
		Name:         "Intermediate",
		CRLBaseURL:   "http://crl.inter.test/crl",
		OCSPBaseURL:  "http://ocsp.inter.test/ocsp",
		IncludeCRLDP: includeCRL,
		IncludeOCSP:  includeOCSP,
		Clock:        clock.Now,
		Seed:         2,
	}, root)
	if err != nil {
		t.Fatal(err)
	}
	net.Register("crl.root.test", root.Handler())
	net.Register("ocsp.root.test", root.Handler())
	net.Register("crl.inter.test", inter.Handler())
	net.Register("ocsp.inter.test", inter.Handler())
	return &world{t: t, clock: clock, net: net, root: root, inter: inter}
}

// leaf issues a leaf under the intermediate and returns the full chain
// [leaf, intermediate, root].
func (w *world) leaf(ev bool) ([]*x509x.Certificate, *ca.Record) {
	w.t.Helper()
	cert, rec, err := w.inter.Issue(ca.IssueOptions{
		CommonName: "site.test",
		NotBefore:  w.clock.Now().AddDate(0, -1, 0),
		NotAfter:   w.clock.Now().AddDate(1, 0, 0),
		EV:         ev,
	})
	if err != nil {
		w.t.Fatal(err)
	}
	return []*x509x.Certificate{cert, w.inter.Certificate(), w.root.Certificate()}, rec
}

func (w *world) client(p *Profile) *Client {
	return &Client{Profile: p, HTTP: w.net.Client(), Now: w.clock.Now}
}

func (w *world) evaluate(p *Profile, chain []*x509x.Certificate, staple []byte) *Verdict {
	w.t.Helper()
	v, err := w.client(p).Evaluate(chain, staple)
	if err != nil {
		w.t.Fatal(err)
	}
	return v
}

func TestHardenedDetectsRevokedLeaf(t *testing.T) {
	for _, mode := range []protoMode{crlOnly, ocspOnly, bothProtos} {
		w := newWorld(t, mode)
		chain, rec := w.leaf(false)
		if err := w.inter.Revoke(rec.Serial, w.clock.Now(), crl.ReasonKeyCompromise); err != nil {
			t.Fatal(err)
		}
		v := w.evaluate(Hardened(), chain, nil)
		if v.Outcome != OutcomeReject || !v.RevocationDetected {
			t.Errorf("mode %d: verdict = %+v", mode, v)
		}
		// And a good leaf is accepted.
		goodChain, _ := w.leaf(false)
		v = w.evaluate(Hardened(), goodChain, nil)
		if v.Outcome != OutcomeAccept {
			t.Errorf("mode %d: good leaf rejected: %+v", mode, v)
		}
	}
}

func TestFirefoxChecksOnlyLeafOCSP(t *testing.T) {
	// Revoked leaf, OCSP chain: detected.
	w := newWorld(t, ocspOnly)
	chain, rec := w.leaf(false)
	if err := w.inter.Revoke(rec.Serial, w.clock.Now(), crl.ReasonUnspecified); err != nil {
		t.Fatal(err)
	}
	if v := w.evaluate(Firefox40(), chain, nil); v.Outcome != OutcomeReject {
		t.Errorf("revoked leaf OCSP not detected: %v", v.Outcome)
	}

	// Revoked leaf, CRL-only chain: Firefox never fetches CRLs.
	w2 := newWorld(t, crlOnly)
	chain2, rec2 := w2.leaf(false)
	if err := w2.inter.Revoke(rec2.Serial, w2.clock.Now(), crl.ReasonUnspecified); err != nil {
		t.Fatal(err)
	}
	if v := w2.evaluate(Firefox40(), chain2, nil); v.Outcome != OutcomeAccept {
		t.Errorf("Firefox should not check CRLs: %v", v.Outcome)
	}
	if w2.net.TotalStats().Requests != 0 {
		t.Error("Firefox made network requests on a CRL-only chain")
	}

	// Revoked intermediate, OCSP chain: only for EV.
	w3 := newWorld(t, ocspOnly)
	chainDV, _ := w3.leaf(false)
	if err := w3.root.Revoke(w3.inter.Certificate().SerialNumber, w3.clock.Now(), crl.ReasonCACompromise); err != nil {
		t.Fatal(err)
	}
	if v := w3.evaluate(Firefox40(), chainDV, nil); v.Outcome != OutcomeAccept {
		t.Errorf("non-EV intermediate should not be checked: %v", v.Outcome)
	}
	chainEV, _ := w3.leaf(true)
	if v := w3.evaluate(Firefox40(), chainEV, nil); v.Outcome != OutcomeReject {
		t.Errorf("EV chain with revoked intermediate accepted: %v", v.Outcome)
	}
}

func TestMobileBrowsersNeverCheck(t *testing.T) {
	w := newWorld(t, bothProtos)
	chain, rec := w.leaf(true) // even EV
	if err := w.inter.Revoke(rec.Serial, w.clock.Now(), crl.ReasonKeyCompromise); err != nil {
		t.Fatal(err)
	}
	for _, p := range []*Profile{MobileSafari(), AndroidStock(), AndroidChrome(), IEMobile8()} {
		w.net.ResetStats()
		v := w.evaluate(p, chain, nil)
		if v.Outcome != OutcomeAccept {
			t.Errorf("%s: outcome = %v", p.Name, v.Outcome)
		}
		if w.net.TotalStats().Requests != 0 {
			t.Errorf("%s made revocation fetches", p.Name)
		}
		if p.ChecksAnything() {
			t.Errorf("%s claims to check something", p.Name)
		}
	}
}

func TestChromeEVOnly(t *testing.T) {
	w := newWorld(t, ocspOnly)
	chain, rec := w.leaf(false)
	if err := w.inter.Revoke(rec.Serial, w.clock.Now(), crl.ReasonKeyCompromise); err != nil {
		t.Fatal(err)
	}
	if v := w.evaluate(ChromeOSX(), chain, nil); v.Outcome != OutcomeAccept {
		t.Errorf("Chrome OSX checked a non-EV chain: %v", v.Outcome)
	}
	evChain, evRec := w.leaf(true)
	if err := w.inter.Revoke(evRec.Serial, w.clock.Now(), crl.ReasonKeyCompromise); err != nil {
		t.Fatal(err)
	}
	if v := w.evaluate(ChromeOSX(), evChain, nil); v.Outcome != OutcomeReject {
		t.Errorf("Chrome OSX missed a revoked EV leaf: %v", v.Outcome)
	}
}

func TestChromeWindowsInt1CRLOnly(t *testing.T) {
	// Non-EV, CRL-only chain with revoked intermediate: Chrome Windows
	// checks the first intermediate's CRL.
	w := newWorld(t, crlOnly)
	chain, _ := w.leaf(false)
	if err := w.root.Revoke(w.inter.Certificate().SerialNumber, w.clock.Now(), crl.ReasonCACompromise); err != nil {
		t.Fatal(err)
	}
	if v := w.evaluate(ChromeWindows(), chain, nil); v.Outcome != OutcomeReject {
		t.Errorf("revoked Int1 CRL not detected: %v", v.Outcome)
	}
	// Revoked leaf is NOT checked for non-EV.
	w2 := newWorld(t, crlOnly)
	chain2, rec2 := w2.leaf(false)
	if err := w2.inter.Revoke(rec2.Serial, w2.clock.Now(), crl.ReasonKeyCompromise); err != nil {
		t.Fatal(err)
	}
	if v := w2.evaluate(ChromeWindows(), chain2, nil); v.Outcome != OutcomeAccept {
		t.Errorf("Chrome Windows checked non-EV leaf: %v", v.Outcome)
	}
	// With both protocols present, the non-EV Int1 CRL check is skipped
	// ("only if it only has a CRL listed").
	w3 := newWorld(t, bothProtos)
	chain3, _ := w3.leaf(false)
	if err := w3.root.Revoke(w3.inter.Certificate().SerialNumber, w3.clock.Now(), crl.ReasonCACompromise); err != nil {
		t.Fatal(err)
	}
	if v := w3.evaluate(ChromeWindows(), chain3, nil); v.Outcome != OutcomeAccept {
		t.Errorf("OnlyIfSoleProtocol not honoured: %v", v.Outcome)
	}
}

func TestSoftFailVersusHardFail(t *testing.T) {
	w := newWorld(t, ocspOnly)
	chain, _ := w.leaf(false)
	w.net.SetFailure("ocsp.inter.test", simnet.FailUnresponsive)
	w.net.SetFailure("ocsp.root.test", simnet.FailUnresponsive)

	if v := w.evaluate(Firefox40(), chain, nil); v.Outcome != OutcomeAccept {
		t.Errorf("Firefox should soft-fail: %v", v.Outcome)
	}
	if v := w.evaluate(Hardened(), chain, nil); v.Outcome != OutcomeReject {
		t.Errorf("Hardened should hard-fail: %v", v.Outcome)
	}
}

func TestIE10WarnsIE11Rejects(t *testing.T) {
	w := newWorld(t, ocspOnly)
	chain, _ := w.leaf(false)
	// Leaf responder down; intermediate's responder still up.
	w.net.SetFailure("ocsp.inter.test", simnet.FailUnresponsive)

	if v := w.evaluate(IE10(), chain, nil); v.Outcome != OutcomeWarn {
		t.Errorf("IE10 = %v, want warn", v.Outcome)
	}
	if v := w.evaluate(IE11(), chain, nil); v.Outcome != OutcomeReject {
		t.Errorf("IE11 = %v, want reject", v.Outcome)
	}
	if v := w.evaluate(IE7to9(), chain, nil); v.Outcome != OutcomeAccept {
		t.Errorf("IE7-9 = %v, want accept", v.Outcome)
	}
}

func TestInt1UnavailableHardFails(t *testing.T) {
	// IE hard-fails when the first intermediate's revocation info is
	// unavailable (the intermediate's pointers go to the root's
	// endpoints).
	w := newWorld(t, ocspOnly)
	chain, _ := w.leaf(false)
	w.net.SetFailure("ocsp.root.test", simnet.FailUnresponsive)
	if v := w.evaluate(IE7to9(), chain, nil); v.Outcome != OutcomeReject {
		t.Errorf("IE7-9 Int1 unavailable = %v, want reject", v.Outcome)
	}
	// Safari's hard failure is CRL-specific; on an OCSP-only chain it
	// soft-fails.
	if v := w.evaluate(Safari6to8(), chain, nil); v.Outcome != OutcomeAccept {
		t.Errorf("Safari OCSP Int1 unavailable = %v, want accept", v.Outcome)
	}
	wCRL := newWorld(t, crlOnly)
	chainCRL, _ := wCRL.leaf(false)
	wCRL.net.SetFailure("crl.root.test", simnet.FailUnresponsive)
	if v := wCRL.evaluate(Safari6to8(), chainCRL, nil); v.Outcome != OutcomeReject {
		t.Errorf("Safari CRL Int1 unavailable = %v, want reject", v.Outcome)
	}
}

func TestFallbackToCRL(t *testing.T) {
	// Both-protocol chain, OCSP down, leaf revoked: browsers with CRL
	// fallback still detect the revocation.
	w := newWorld(t, bothProtos)
	chain, rec := w.leaf(false)
	if err := w.inter.Revoke(rec.Serial, w.clock.Now(), crl.ReasonKeyCompromise); err != nil {
		t.Fatal(err)
	}
	w.net.SetFailure("ocsp.inter.test", simnet.FailUnresponsive)
	w.net.SetFailure("ocsp.root.test", simnet.FailUnresponsive)

	v := w.evaluate(Safari6to8(), chain, nil)
	if v.Outcome != OutcomeReject || !v.RevocationDetected {
		t.Errorf("Safari fallback failed: %+v", v)
	}
	sawCRL := false
	for _, e := range v.Events {
		if e.Protocol == "crl" && e.Result == "revoked" {
			sawCRL = true
		}
	}
	if !sawCRL {
		t.Error("fallback did not actually fetch the CRL")
	}
	// Firefox has no fallback: the same chain is accepted.
	if v := w.evaluate(Firefox40(), chain, nil); v.Outcome != OutcomeAccept {
		t.Errorf("Firefox should not fall back: %v", v.Outcome)
	}
}

func TestUnknownStatusHandling(t *testing.T) {
	w := newWorld(t, ocspOnly)
	chain, _ := w.leaf(false)
	// Replace the leaf's responder with one that always answers unknown.
	unknown := ocsp.StatusUnknown
	signer, key := w.inter.Signer()
	w.net.Register("ocsp.inter.test", http.StripPrefix("/ocsp", &ocsp.Responder{
		Source:      ocsp.SourceFunc(func(ocsp.CertID) ocsp.SingleResponse { return ocsp.SingleResponse{} }),
		Signer:      signer,
		Key:         key,
		Now:         w.clock.Now,
		ForceStatus: &unknown,
	}))
	if v := w.evaluate(Firefox40(), chain, nil); v.Outcome != OutcomeReject {
		t.Errorf("Firefox should reject unknown: %v", v.Outcome)
	}
	if v := w.evaluate(Safari6to8(), chain, nil); v.Outcome != OutcomeAccept {
		t.Errorf("Safari incorrectly rejects unknown: %v", v.Outcome)
	}
}

func makeStaple(t *testing.T, w *world, rec *ca.Record, status ocsp.Status) []byte {
	t.Helper()
	signer, key := w.inter.Signer()
	staple, err := ocsp.CreateResponse(&ocsp.ResponseTemplate{
		ProducedAt: w.clock.Now(),
		Responses: []ocsp.SingleResponse{{
			ID:         ocsp.NewCertID(signer, rec.Serial),
			Status:     status,
			RevokedAt:  w.clock.Now().Add(-time.Hour),
			Reason:     crl.ReasonKeyCompromise,
			ThisUpdate: w.clock.Now(),
			NextUpdate: w.clock.Now().Add(96 * time.Hour),
		}},
	}, signer, key)
	if err != nil {
		t.Fatal(err)
	}
	return staple
}

func TestStapleHandling(t *testing.T) {
	w := newWorld(t, ocspOnly)
	chain, rec := w.leaf(false)
	goodStaple := makeStaple(t, w, rec, ocsp.StatusGood)
	revokedStaple := makeStaple(t, w, rec, ocsp.StatusRevoked)

	// A good staple satisfies the leaf with no network fetch.
	w.net.ResetStats()
	if v := w.evaluate(Firefox40(), chain, goodStaple); v.Outcome != OutcomeAccept {
		t.Errorf("good staple rejected: %v", v.Outcome)
	}
	if w.net.TotalStats().Requests != 0 {
		t.Error("good staple still triggered a fetch")
	}

	// A revoked staple: respected by Firefox, ignored by Android.
	if v := w.evaluate(Firefox40(), chain, revokedStaple); v.Outcome != OutcomeReject {
		t.Errorf("Firefox ignored revoked staple: %v", v.Outcome)
	}
	if v := w.evaluate(AndroidStock(), chain, revokedStaple); v.Outcome != OutcomeAccept {
		t.Errorf("Android Stock should ignore staples entirely: %v", v.Outcome)
	}

	// Chrome OS X does not respect the revoked staple; with the
	// responder firewalled it soft-fails and accepts — the GRC
	// revoked-staple scenario. The leaf must be EV for Chrome to check
	// at all.
	evChain, evRec := w.leaf(true)
	evRevokedStaple := makeStaple(t, w, evRec, ocsp.StatusRevoked)
	w.net.SetFailure("ocsp.inter.test", simnet.FailUnresponsive)
	w.net.SetFailure("ocsp.root.test", simnet.FailUnresponsive)
	if v := w.evaluate(ChromeOSX(), evChain, evRevokedStaple); v.Outcome != OutcomeAccept {
		t.Errorf("Chrome OSX revoked-staple behaviour: %v, want accept", v.Outcome)
	}
	// Whereas Chrome Windows respects the staple and rejects.
	if v := w.evaluate(ChromeWindows(), evChain, evRevokedStaple); v.Outcome != OutcomeReject {
		t.Errorf("Chrome Windows should respect revoked staple: %v", v.Outcome)
	}
}

func TestStapleFromWrongSignerIgnored(t *testing.T) {
	w := newWorld(t, ocspOnly)
	chain, rec := w.leaf(false)
	// Forge a staple signed by an unrelated CA.
	rogue, err := ca.NewRoot(ca.Config{Name: "Rogue", Clock: w.clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	rogueCert, rogueKey := rogue.Signer()
	forged, err := ocsp.CreateResponse(&ocsp.ResponseTemplate{
		ProducedAt: w.clock.Now(),
		Responses: []ocsp.SingleResponse{{
			ID:         ocsp.NewCertID(w.inter.Certificate(), rec.Serial),
			Status:     ocsp.StatusGood,
			ThisUpdate: w.clock.Now(),
		}},
	}, rogueCert, rogueKey)
	if err != nil {
		t.Fatal(err)
	}
	// The forged staple must be ignored and the online check performed
	// — which reveals the truth (revoked).
	if err := w.inter.Revoke(rec.Serial, w.clock.Now(), crl.ReasonKeyCompromise); err != nil {
		t.Fatal(err)
	}
	if v := w.evaluate(Firefox40(), chain, forged); v.Outcome != OutcomeReject {
		t.Errorf("forged staple masked a revocation: %v", v.Outcome)
	}
}

func TestEvaluateRequiresChain(t *testing.T) {
	w := newWorld(t, ocspOnly)
	chain, _ := w.leaf(false)
	if _, err := w.client(Hardened()).Evaluate(chain[:1], nil); err == nil {
		t.Error("accepted a chain without a root")
	}
}

func TestAllProfilesAreWellFormed(t *testing.T) {
	profiles := All()
	if len(profiles) != 15 {
		t.Fatalf("All() = %d profiles", len(profiles))
	}
	seen := map[string]bool{}
	mobiles := 0
	for _, p := range profiles {
		if p.Name == "" || seen[p.Name] {
			t.Errorf("bad or duplicate profile name %q", p.Name)
		}
		seen[p.Name] = true
		if p.Mobile {
			mobiles++
			if p.ChecksAnything() || p.UseStaple {
				t.Errorf("%s: mobile browsers check nothing (§6.4)", p.Name)
			}
		}
	}
	if mobiles != 4 {
		t.Errorf("mobile profiles = %d, want 4", mobiles)
	}
}

func TestMultiStapleVerifiesOffline(t *testing.T) {
	// RFC 6961: with staples for leaf AND intermediate, a hard-failing
	// client needs no network at all — and still catches a stapled
	// revoked intermediate.
	w := newWorld(t, ocspOnly)
	chain, rec := w.leaf(false)
	leafStaple := makeStaple(t, w, rec, ocsp.StatusGood)
	signer, key := w.root.Signer()
	interStaple, err := ocsp.CreateResponse(&ocsp.ResponseTemplate{
		ProducedAt: w.clock.Now(),
		Responses: []ocsp.SingleResponse{{
			ID:         ocsp.NewCertID(signer, w.inter.Certificate().SerialNumber),
			Status:     ocsp.StatusGood,
			ThisUpdate: w.clock.Now(),
			NextUpdate: w.clock.Now().Add(96 * time.Hour),
		}},
	}, signer, key)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the entire revocation infrastructure.
	for _, h := range []string{"ocsp.root.test", "ocsp.inter.test", "crl.root.test", "crl.inter.test"} {
		w.net.SetFailure(h, simnet.FailUnresponsive)
	}

	multi := Hardened()
	multi.MultiStaple = true
	client := w.client(multi)

	// Leaf-only staple: intermediate check still needs the dark network.
	v, err := client.EvaluateWithStaples(chain, [][]byte{leafStaple})
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome != OutcomeReject {
		t.Errorf("leaf-only staple under outage = %v, want reject", v.Outcome)
	}
	// Full staples: offline verification succeeds.
	w.net.ResetStats()
	v, err = client.EvaluateWithStaples(chain, [][]byte{leafStaple, interStaple})
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome != OutcomeAccept {
		t.Errorf("multi-staple under outage = %v, want accept", v.Outcome)
	}
	if w.net.TotalStats().Requests != 0 {
		t.Error("multi-staple evaluation should need zero fetches")
	}
	// A profile without MultiStaple ignores the intermediate staple.
	v, err = w.client(Hardened()).EvaluateWithStaples(chain, [][]byte{leafStaple, interStaple})
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome != OutcomeReject {
		t.Errorf("non-multi-staple profile should still hard-fail: %v", v.Outcome)
	}

	// Stapled revoked intermediate is caught offline.
	revokedInter, err := ocsp.CreateResponse(&ocsp.ResponseTemplate{
		ProducedAt: w.clock.Now(),
		Responses: []ocsp.SingleResponse{{
			ID:         ocsp.NewCertID(signer, w.inter.Certificate().SerialNumber),
			Status:     ocsp.StatusRevoked,
			RevokedAt:  w.clock.Now().Add(-time.Hour),
			Reason:     crl.ReasonCACompromise,
			ThisUpdate: w.clock.Now(),
			NextUpdate: w.clock.Now().Add(96 * time.Hour),
		}},
	}, signer, key)
	if err != nil {
		t.Fatal(err)
	}
	v, err = client.EvaluateWithStaples(chain, [][]byte{leafStaple, revokedInter})
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome != OutcomeReject || !v.RevocationDetected {
		t.Errorf("stapled revoked intermediate missed: %+v", v)
	}
}

func TestCacheAvoidsRefetches(t *testing.T) {
	// OCSP cache on an OCSP-primary chain; CRL cache separately below.
	w := newWorld(t, ocspOnly)
	chain, _ := w.leaf(false)
	client := w.client(Hardened())
	cache := NewCache()
	client.Cache = cache

	if v := mustEval(t, client, chain); v.Outcome != OutcomeAccept {
		t.Fatalf("first evaluation = %v", v.Outcome)
	}
	first := w.net.TotalStats().Requests
	if first == 0 {
		t.Fatal("no fetches on cold cache")
	}
	if _, ocsps := cache.Len(); ocsps == 0 {
		t.Fatal("OCSP cache not populated")
	}
	if v := mustEval(t, client, chain); v.Outcome != OutcomeAccept {
		t.Fatalf("second evaluation = %v", v.Outcome)
	}
	if got := w.net.TotalStats().Requests; got != first {
		t.Errorf("warm cache refetched: %d -> %d requests", first, got)
	}
	// A verdict event should note the cache hit.
	v := mustEval(t, client, chain)
	sawCached := false
	for _, e := range v.Events {
		if strings.HasSuffix(e.Result, "(cached)") {
			sawCached = true
		}
	}
	if !sawCached {
		t.Error("no cached events logged")
	}
	// After the CRL/OCSP validity windows lapse, the cache expires and
	// fetches resume.
	w.clock.Advance(8 * 24 * time.Hour)
	if v := mustEval(t, client, chain); v.Outcome != OutcomeAccept {
		t.Fatalf("post-expiry evaluation = %v", v.Outcome)
	}
	if got := w.net.TotalStats().Requests; got == first {
		t.Error("expired cache never refreshed")
	}

	// CRL caching on a CRL-only chain.
	wc := newWorld(t, crlOnly)
	chainCRL, _ := wc.leaf(false)
	crlClient := wc.client(Hardened())
	crlCache := NewCache()
	crlClient.Cache = crlCache
	mustEval(t, crlClient, chainCRL)
	crlFirst := wc.net.TotalStats().Requests
	if crls, _ := crlCache.Len(); crls == 0 {
		t.Fatal("CRL cache not populated")
	}
	mustEval(t, crlClient, chainCRL)
	if got := wc.net.TotalStats().Requests; got != crlFirst {
		t.Errorf("warm CRL cache refetched: %d -> %d", crlFirst, got)
	}
}

func mustEval(t *testing.T, c *Client, chainCerts []*x509x.Certificate) *Verdict {
	t.Helper()
	v, err := c.Evaluate(chainCerts, nil)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestNilCacheIsSafe(t *testing.T) {
	var c *Cache
	if _, ok := c.CRL("x", time.Now()); ok {
		t.Error("nil cache returned a CRL")
	}
	if _, ok := c.OCSP(nil, nil, time.Now()); ok {
		t.Error("nil cache returned a response")
	}
	c.PutCRL("x", &crl.CRL{})
	c.PutOCSP(nil, nil, ocsp.SingleResponse{})
	if a, b := c.Len(); a != 0 || b != 0 {
		t.Error("nil cache non-empty")
	}
}
