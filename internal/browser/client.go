package browser

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/bloom"
	"repro/internal/cascade"
	"repro/internal/crl"
	"repro/internal/crlset"
	"repro/internal/faultnet"
	"repro/internal/ocsp"
	"repro/internal/serialx"
	"repro/internal/x509x"
)

// Outcome is the connection-level decision after revocation checking.
type Outcome int

// Outcomes.
const (
	// OutcomeAccept proceeds silently.
	OutcomeAccept Outcome = iota
	// OutcomeWarn proceeds after asking the user (IE 10 style).
	OutcomeWarn
	// OutcomeReject aborts the connection.
	OutcomeReject
)

func (o Outcome) String() string {
	switch o {
	case OutcomeAccept:
		return "accept"
	case OutcomeWarn:
		return "warn"
	case OutcomeReject:
		return "reject"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// status is the result of one revocation lookup.
type status int

const (
	stGood status = iota
	stRevoked
	stUnknown
	stUnavailable
)

func (s status) String() string {
	return [...]string{"good", "revoked", "unknown", "unavailable"}[s]
}

// cachedResult returns the "(cached)" event string for s without
// allocating — event logging sits on the warm verdict path.
func cachedResult(s status) string {
	return [...]string{"good (cached)", "revoked (cached)", "unknown (cached)", "unavailable (cached)"}[s]
}

// Event logs one revocation-checking action, for the harness to inspect
// (e.g. to verify CRL fallback actually fetched the CRL).
type Event struct {
	Subject  string
	Pos      Position
	Protocol string // "ocsp", "crl", "staple", "crlset", "bloom", "cascade"
	Result   string
}

// FastPathStats attributes local fast-path consultations within one
// verdict (CRLite-style cascade; §7: CRLSet; §7.4: Bloom filter).
type FastPathStats struct {
	// CascadeHits counts chain elements the filter cascade answered
	// authoritatively (issuer enrolled, cert predates the snapshot
	// cutoff, snapshot fresh) — exact verdict, no fetch.
	CascadeHits int
	// CascadeMisses counts elements the cascade could not cover
	// (unenrolled issuer or cert newer than the snapshot), which fall
	// through to CRLSet/Bloom/network.
	CascadeMisses int
	// CascadeStale counts elements skipped because the snapshot aged
	// past its max-age — a stale cascade may miss fresh revocations, so
	// the client falls back to the network path.
	CascadeStale int
	// CRLSetHits counts chain elements whose issuer the CRLSet covers —
	// the set is authoritative there, revoked or not, and no fetch runs.
	CRLSetHits int
	// CRLSetMisses counts elements whose issuer the set does not cover
	// (checking falls through to staples and the network).
	CRLSetMisses int
	// BloomNegatives counts definitive not-revoked answers from the
	// filter (no false negatives, so the fetch is skipped).
	BloomNegatives int
	// BloomPositives counts possible-revocation answers that still
	// required a network check (the filter's false-positive cost).
	BloomPositives int
	// BlockedSPKI counts chain elements rejected by the CRLSet's blocked
	// key list.
	BlockedSPKI int
}

// add accumulates other into s, for fleet-level aggregation.
func (s *FastPathStats) Add(other FastPathStats) {
	s.CascadeHits += other.CascadeHits
	s.CascadeMisses += other.CascadeMisses
	s.CascadeStale += other.CascadeStale
	s.CRLSetHits += other.CRLSetHits
	s.CRLSetMisses += other.CRLSetMisses
	s.BloomNegatives += other.BloomNegatives
	s.BloomPositives += other.BloomPositives
	s.BlockedSPKI += other.BlockedSPKI
}

// Verdict is the full result of evaluating one chain.
type Verdict struct {
	Outcome            Outcome
	RevocationDetected bool
	Events             []Event
	// FastPath attributes CRLSet/Bloom consultations made during this
	// evaluation.
	FastPath FastPathStats
}

// reset prepares v for reuse, keeping the Events backing array so a
// warm evaluation appends without allocating.
func (v *Verdict) reset() {
	v.Outcome = OutcomeAccept
	v.RevocationDetected = false
	v.Events = v.Events[:0]
	v.FastPath = FastPathStats{}
}

// Client executes a Profile's revocation checking against presented
// chains, performing real CRL downloads and OCSP queries through HTTP.
// A Client is immutable during use and safe for concurrent Evaluate
// calls from many goroutines; a fleet of simulated browsers can share
// one Client, one Cache, and one HTTP transport.
type Client struct {
	Profile *Profile
	// HTTP performs fetches (a simnet client or a real one).
	HTTP *http.Client
	// Now is the validation time; time.Now when nil.
	Now func() time.Time
	// MaxCRLBytes caps CRL downloads (default 128 MiB).
	MaxCRLBytes int64
	// Cache, when non-nil, reuses CRLs and OCSP responses across
	// evaluations until their validity windows lapse, as real browsers
	// do (§2.2). A *Cache additionally collapses concurrent same-URL CRL
	// downloads into one fetch (singleflight).
	Cache Store
	// Cascade, when non-nil, is a CRLite-style filter cascade consulted
	// before CRLSet and Bloom: for enrolled issuers and certs predating
	// its snapshot cutoff it answers revoked-or-not exactly — an
	// authoritative offline verdict over the *complete* revocation
	// corpus, where the CRLSet covers <1%. A stale snapshot (past its
	// max-age) is skipped entirely and checking falls through.
	Cascade *cascade.Filter
	// CascadeShards, when non-nil, is the per-issuer sharded form of the
	// cascade: the client installed only the shards of issuers it trusts
	// (via a signed manifest — cascade.InstallShards), so verdicts route
	// to the issuer's own shard and freshness is tracked per shard.
	// Consulted before the monolithic Cascade; an issuer with no
	// installed shard falls through to it (and then to the network).
	CascadeShards *cascade.ShardSet
	// CRLSet, when non-nil, is consulted as a Chrome-style local fast
	// path before any staple or network fetch (§7): for issuers the set
	// covers it answers revoked-or-not authoritatively without network
	// traffic, and its blocked-SPKI list rejects outright.
	CRLSet *crlset.Set
	// Bloom, when non-nil, is the §7.4 revocation filter, keyed by
	// BloomKey(parent, serial). A negative is definitive (no false
	// negatives) and skips the fetch; a positive falls through to the
	// usual online check.
	Bloom *bloom.Filter
	// Timeout bounds each revocation fetch, the way real browsers cap
	// OCSP lookups at a few seconds before soft-failing (§6.2). It is
	// applied as a context deadline and as a faultnet virtual-time
	// budget, so an unresponsive responder resolves as "unavailable"
	// instead of hanging the handshake. 0 means unbounded.
	Timeout time.Duration
}

// fetchCtx returns the per-fetch context implied by Timeout.
func (c *Client) fetchCtx() (context.Context, context.CancelFunc) {
	ctx := context.Background()
	if c.Timeout <= 0 {
		return ctx, func() {}
	}
	ctx = faultnet.WithBudget(ctx, c.Timeout)
	return context.WithTimeout(ctx, c.Timeout)
}

func (c *Client) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

// BloomKey appends the revocation-filter key for (parent, serial) to dst:
// the issuer's SPKI hash followed by the canonical serial magnitude
// (serialx.Canon — leading zeros stripped, the zero serial contributes no
// bytes), so two encodings of the same serial value always hash to the
// same key. Both the filter builder and the client fast path must use
// this layout; the cascade uses it too.
func BloomKey(dst []byte, parent crlset.Parent, serial []byte) []byte {
	dst = append(dst, parent[:]...)
	return append(dst, serialx.Canon(serial)...)
}

// Evaluate runs the profile against a chain ordered leaf-first and ending
// at the root, with an optional stapled OCSP response for the leaf. The
// chain must contain at least the leaf and its root. Evaluate assumes the
// chain already passed signature/path validation; it decides only the
// revocation question.
func (c *Client) Evaluate(chainCerts []*x509x.Certificate, staple []byte) (*Verdict, error) {
	var staples [][]byte
	if staple != nil {
		staples = [][]byte{staple}
	}
	return c.EvaluateWithStaples(chainCerts, staples)
}

// EvaluateWithStaples is Evaluate with RFC 6961 multi-stapling: staples[i]
// is the stapled OCSP response for chain element i (nil entries allowed).
// Staples beyond the leaf are consulted only when the profile sets
// MultiStaple.
func (c *Client) EvaluateWithStaples(chainCerts []*x509x.Certificate, staples [][]byte) (*Verdict, error) {
	v := &Verdict{}
	if err := c.EvaluateInto(v, chainCerts, staples); err != nil {
		return nil, err
	}
	return v, nil
}

// EvaluateInto is EvaluateWithStaples writing into a caller-owned
// Verdict, which is reset (its Events capacity reused) before the
// evaluation. A fleet of simulated browsers reuses one Verdict per
// worker so a warm-cache verdict performs no allocations at all.
func (c *Client) EvaluateInto(v *Verdict, chainCerts []*x509x.Certificate, staples [][]byte) error {
	if len(chainCerts) < 2 {
		return errors.New("browser: Evaluate needs a chain of at least leaf and root")
	}
	v.reset()
	leafEV := chainCerts[0].IsEV()
	crlTab, ocspTab, fallback := c.Profile.behaviors(leafEV)

	// Root certificates are exempt from revocation checking (§2.2
	// footnote 4): iterate leaf through last intermediate.
	for i := 0; i < len(chainCerts)-1; i++ {
		cert := chainCerts[i]
		issuer := chainCerts[i+1]
		pos := position(i)
		behPos := pos
		if pos == PosLeaf && len(chainCerts) == 2 && c.Profile.TreatLeafAsInt1 {
			behPos = PosInt1
		}
		behCRL, behOCSP := crlTab[behPos], ocspTab[behPos]

		// Local fast path (§7): consult the CRLSet and Bloom artifacts
		// before staples or any network fetch, the way Chrome checks its
		// shipped CRLSet instead of querying responders.
		if st, decided := c.localFastPath(v, cert, issuer, pos); decided {
			switch st {
			case stGood:
				continue
			case stRevoked:
				v.RevocationDetected = true
				v.Outcome = OutcomeReject
				return nil
			}
		}

		// Stapled response handling: the leaf always, deeper elements
		// only with RFC 6961 multi-stapling.
		var staple []byte
		if i < len(staples) && (i == 0 || c.Profile.MultiStaple) {
			staple = staples[i]
		}
		if len(staple) > 0 && c.Profile.RequestStaple && c.Profile.UseStaple {
			st, ok := c.evalStaple(v, cert, issuer, pos, staple)
			if ok {
				switch st {
				case stGood:
					continue // leaf satisfied without a network fetch
				case stRevoked:
					if c.Profile.RespectRevokedStaple {
						v.RevocationDetected = true
						v.Outcome = OutcomeReject
						return nil
					}
					// Chrome on OS X ignores the stapled revocation
					// and falls through to an online check.
				case stUnknown:
					if c.Profile.RejectUnknown {
						v.Outcome = OutcomeReject
						return nil
					}
					continue // incorrectly treated as trusted
				}
			}
		}

		canOCSP := len(cert.OCSPServers) > 0 && behOCSP.Check &&
			!(behOCSP.OnlyIfSoleProtocol && len(cert.CRLDistributionPoints) > 0)
		canCRL := len(cert.CRLDistributionPoints) > 0 && behCRL.Check &&
			!(behCRL.OnlyIfSoleProtocol && len(cert.OCSPServers) > 0)
		if !canOCSP && !canCRL {
			continue // nothing this browser would check here
		}

		var st status
		var beh Behavior
		if canOCSP {
			st = c.fetchOCSP(v, cert, issuer, pos)
			beh = behOCSP
			if st == stUnavailable && fallback && len(cert.CRLDistributionPoints) > 0 {
				st = c.fetchCRL(v, cert, issuer, pos)
				if st != stUnavailable {
					beh = behCRL
				}
			}
		} else {
			st = c.fetchCRL(v, cert, issuer, pos)
			beh = behCRL
		}

		switch st {
		case stGood:
			// fine; next certificate
		case stRevoked:
			v.RevocationDetected = true
			v.Outcome = OutcomeReject
			return nil
		case stUnknown:
			if c.Profile.RejectUnknown {
				v.Outcome = OutcomeReject
				return nil
			}
		case stUnavailable:
			switch {
			case beh.RejectUnavailable:
				v.Outcome = OutcomeReject
				return nil
			case beh.WarnUnavailable:
				v.Outcome = OutcomeWarn
			}
		}
	}
	return nil
}

// localFastPath consults the client's CRLSet and Bloom artifacts for
// (cert, issuer). decided is true when the artifacts answered the
// revocation question and no staple or network check should run.
func (c *Client) localFastPath(v *Verdict, cert, issuer *x509x.Certificate, pos Position) (status, bool) {
	if c.Cascade == nil && c.CascadeShards == nil && c.CRLSet == nil && c.Bloom == nil {
		return stUnavailable, false
	}
	var keyBuf [56]byte // 32-byte parent + serials up to 20 bytes (RFC 5280 §4.1.2.2)
	parent := crlset.Parent(x509x.SPKIHash(issuer.RawSPKI))
	serial := appendSerial(keyBuf[32:32], cert.SerialNumber)

	if c.CascadeShards != nil {
		p := cascade.Parent(parent)
		if sh := c.CascadeShards.Shard(p); sh == nil {
			// Untrusted or never-fetched issuer: no local verdict, fall
			// through (monolithic cascade, CRLSet, then the network).
			v.FastPath.CascadeMisses++
		} else if !c.CascadeShards.FreshAt(p, c.now()) {
			// Per-shard freshness: one stale issuer must not disable the
			// rest of the install.
			v.FastPath.CascadeStale++
			c.log(v, cert, pos, "cascade-shard", "stale")
		} else if sh.Covers(p, cert.NotBefore) {
			v.FastPath.CascadeHits++
			key := keyBuf[:32+len(serial)]
			copy(key, parent[:])
			if c.CascadeShards.Revoked(key) {
				c.log(v, cert, pos, "cascade-shard", "revoked")
				return stRevoked, true
			}
			c.log(v, cert, pos, "cascade-shard", "good")
			return stGood, true
		} else {
			v.FastPath.CascadeMisses++
		}
	}

	if c.Cascade != nil {
		if !c.Cascade.FreshAt(c.now()) {
			v.FastPath.CascadeStale++
			c.log(v, cert, pos, "cascade", "stale")
		} else if c.Cascade.Covers(cascade.Parent(parent), cert.NotBefore) {
			// Enrolled and fresh: the cascade's answer is exact, not
			// probabilistic — it is authoritative either way.
			v.FastPath.CascadeHits++
			key := keyBuf[:32+len(serial)]
			copy(key, parent[:])
			if c.Cascade.Revoked(key) {
				c.log(v, cert, pos, "cascade", "revoked")
				return stRevoked, true
			}
			c.log(v, cert, pos, "cascade", "good")
			return stGood, true
		} else {
			v.FastPath.CascadeMisses++
		}
	}

	if c.CRLSet != nil {
		if len(c.CRLSet.BlockedSPKIs) > 0 {
			spki := crlset.Parent(x509x.SPKIHash(cert.RawSPKI))
			for _, blocked := range c.CRLSet.BlockedSPKIs {
				if blocked == spki {
					v.FastPath.BlockedSPKI++
					c.log(v, cert, pos, "crlset", "blocked-spki")
					return stRevoked, true
				}
			}
		}
		if c.CRLSet.HasParent(parent) {
			v.FastPath.CRLSetHits++
			if c.CRLSet.CoversSerial(parent, serial) {
				c.log(v, cert, pos, "crlset", "revoked")
				return stRevoked, true
			}
			c.log(v, cert, pos, "crlset", "good")
			return stGood, true
		}
		v.FastPath.CRLSetMisses++
	}

	if c.Bloom != nil {
		key := keyBuf[:32+len(serial)]
		copy(key, parent[:])
		if !c.Bloom.Contains(key) {
			v.FastPath.BloomNegatives++
			c.log(v, cert, pos, "bloom", "good")
			return stGood, true
		}
		v.FastPath.BloomPositives++
		// A positive may be false: fall through to the online check.
	}
	return stUnavailable, false
}

// position classifies index i in a leaf-first chain: the leaf, the first
// intermediate (the leaf's issuer), and everything deeper.
func position(i int) Position {
	switch {
	case i == 0:
		return PosLeaf
	case i == 1:
		return PosInt1
	default:
		return PosIntDeep
	}
}

func (c *Client) log(v *Verdict, cert *x509x.Certificate, pos Position, proto string, result string) {
	v.Events = append(v.Events, Event{
		Subject:  cert.Subject.CommonName,
		Pos:      pos,
		Protocol: proto,
		Result:   result,
	})
}

// evalStaple validates a stapled OCSP response. ok is false when the
// staple is unusable (wrong cert, bad signature, stale) and online
// checking should proceed as if no staple were present.
func (c *Client) evalStaple(v *Verdict, leaf, issuer *x509x.Certificate, pos Position, staple []byte) (status, bool) {
	resp, err := ocsp.ParseResponse(staple)
	if err != nil || resp.RespStatus != ocsp.RespSuccessful {
		c.log(v, leaf, pos, "staple", "invalid")
		return stUnavailable, false
	}
	if err := resp.VerifySignatureFrom(issuer); err != nil {
		c.log(v, leaf, pos, "staple", "bad-signature")
		return stUnavailable, false
	}
	id := ocsp.NewCertID(issuer, leaf.SerialNumber)
	sr, found := resp.Find(id)
	if !found || !sr.CurrentAt(c.now()) {
		c.log(v, leaf, pos, "staple", "stale")
		return stUnavailable, false
	}
	st := fromOCSPStatus(sr.Status)
	c.log(v, leaf, pos, "staple", st.String())
	return st, true
}

func fromOCSPStatus(s ocsp.Status) status {
	switch s {
	case ocsp.StatusGood:
		return stGood
	case ocsp.StatusRevoked:
		return stRevoked
	default:
		return stUnknown
	}
}

func (c *Client) fetchOCSP(v *Verdict, cert, issuer *x509x.Certificate, pos Position) status {
	if c.Cache != nil {
		if sr, ok := c.Cache.OCSP(issuer, cert, c.now()); ok {
			st := fromOCSPStatus(sr.Status)
			c.log(v, cert, pos, "ocsp", cachedResult(st))
			return st
		}
	}
	client := &ocsp.Client{HTTP: c.HTTP}
	var last status = stUnavailable
	for _, url := range cert.OCSPServers {
		ctx, cancel := c.fetchCtx()
		sr, err := client.CheckContext(ctx, url, issuer, cert.SerialNumber)
		cancel()
		if err != nil {
			c.log(v, cert, pos, "ocsp", "unavailable")
			continue
		}
		if !sr.CurrentAt(c.now()) {
			c.log(v, cert, pos, "ocsp", "stale")
			continue
		}
		if c.Cache != nil {
			c.Cache.PutOCSP(issuer, cert, sr)
		}
		last = fromOCSPStatus(sr.Status)
		c.log(v, cert, pos, "ocsp", last.String())
		return last
	}
	return last
}

// CRL fetch failure classes, mapped to the event strings the harnesses
// assert on.
var (
	errCRLUnavailable  = errors.New("browser: CRL unavailable")
	errCRLBadSignature = errors.New("browser: CRL signature invalid")
	errCRLStale        = errors.New("browser: CRL stale")
)

func crlErrorResult(err error) string {
	switch {
	case errors.Is(err, errCRLBadSignature):
		return "bad-signature"
	case errors.Is(err, errCRLStale):
		return "stale"
	default:
		return "unavailable"
	}
}

func (c *Client) fetchCRL(v *Verdict, cert, issuer *x509x.Certificate, pos Position) status {
	now := c.now()
	for _, url := range cert.CRLDistributionPoints {
		parsed, src, err := c.obtainCRL(url, issuer, now)
		if err != nil {
			c.log(v, cert, pos, "crl", crlErrorResult(err))
			continue
		}
		var serialBuf [24]byte
		serial := appendSerial(serialBuf[:0], cert.SerialNumber)
		revoked := parsed.ContainsSerial(serial)
		st := stGood
		if revoked {
			st = stRevoked
		}
		if src == SourceFetched {
			c.log(v, cert, pos, "crl", st.String())
		} else {
			c.log(v, cert, pos, "crl", cachedResult(st))
		}
		return st
	}
	return stUnavailable
}

// obtainCRL produces a verified, current CRL for url through whichever
// cache the client carries: the sharded Cache deduplicates concurrent
// downloads per URL (singleflight), other stores follow the seed
// lookup/download/store sequence, and no cache means a plain download.
func (c *Client) obtainCRL(url string, issuer *x509x.Certificate, now time.Time) (*crl.CRL, CRLSource, error) {
	fetch := func() (*crl.CRL, error) {
		parsed, err := c.downloadCRL(url)
		if err != nil {
			return nil, errCRLUnavailable
		}
		if err := parsed.VerifySignature(issuer); err != nil {
			return nil, errCRLBadSignature
		}
		if !parsed.CurrentAt(now) {
			return nil, errCRLStale
		}
		return parsed, nil
	}
	if sf, ok := c.Cache.(crlSingleflighter); ok {
		return sf.DoCRL(url, now, fetch)
	}
	if c.Cache != nil {
		if parsed, ok := c.Cache.CRL(url, now); ok {
			return parsed, SourceCached, nil
		}
	}
	parsed, err := fetch()
	if err != nil {
		return nil, SourceFetched, err
	}
	if c.Cache != nil {
		c.Cache.PutCRL(url, parsed)
	}
	return parsed, SourceFetched, nil
}

func (c *Client) downloadCRL(url string) (*crl.CRL, error) {
	httpClient := c.HTTP
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	ctx, cancel := c.fetchCtx()
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := httpClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("browser: CRL fetch: HTTP %d", resp.StatusCode)
	}
	limit := c.MaxCRLBytes
	if limit <= 0 {
		limit = 128 << 20
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, limit))
	if err != nil {
		return nil, err
	}
	return crl.Parse(body)
}
