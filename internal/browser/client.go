package browser

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/crl"
	"repro/internal/faultnet"
	"repro/internal/ocsp"
	"repro/internal/x509x"
)

// Outcome is the connection-level decision after revocation checking.
type Outcome int

// Outcomes.
const (
	// OutcomeAccept proceeds silently.
	OutcomeAccept Outcome = iota
	// OutcomeWarn proceeds after asking the user (IE 10 style).
	OutcomeWarn
	// OutcomeReject aborts the connection.
	OutcomeReject
)

func (o Outcome) String() string {
	switch o {
	case OutcomeAccept:
		return "accept"
	case OutcomeWarn:
		return "warn"
	case OutcomeReject:
		return "reject"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// status is the result of one revocation lookup.
type status int

const (
	stGood status = iota
	stRevoked
	stUnknown
	stUnavailable
)

func (s status) String() string {
	return [...]string{"good", "revoked", "unknown", "unavailable"}[s]
}

// Event logs one revocation-checking action, for the harness to inspect
// (e.g. to verify CRL fallback actually fetched the CRL).
type Event struct {
	Subject  string
	Pos      Position
	Protocol string // "ocsp", "crl", "staple"
	Result   string
}

// Verdict is the full result of evaluating one chain.
type Verdict struct {
	Outcome            Outcome
	RevocationDetected bool
	Events             []Event
}

// Client executes a Profile's revocation checking against presented
// chains, performing real CRL downloads and OCSP queries through HTTP.
type Client struct {
	Profile *Profile
	// HTTP performs fetches (a simnet client or a real one).
	HTTP *http.Client
	// Now is the validation time; time.Now when nil.
	Now func() time.Time
	// MaxCRLBytes caps CRL downloads (default 128 MiB).
	MaxCRLBytes int64
	// Cache, when non-nil, reuses CRLs and OCSP responses across
	// evaluations until their validity windows lapse, as real browsers
	// do (§2.2).
	Cache *Cache
	// Timeout bounds each revocation fetch, the way real browsers cap
	// OCSP lookups at a few seconds before soft-failing (§6.2). It is
	// applied as a context deadline and as a faultnet virtual-time
	// budget, so an unresponsive responder resolves as "unavailable"
	// instead of hanging the handshake. 0 means unbounded.
	Timeout time.Duration
}

// fetchCtx returns the per-fetch context implied by Timeout.
func (c *Client) fetchCtx() (context.Context, context.CancelFunc) {
	ctx := context.Background()
	if c.Timeout <= 0 {
		return ctx, func() {}
	}
	ctx = faultnet.WithBudget(ctx, c.Timeout)
	return context.WithTimeout(ctx, c.Timeout)
}

func (c *Client) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

// Evaluate runs the profile against a chain ordered leaf-first and ending
// at the root, with an optional stapled OCSP response for the leaf. The
// chain must contain at least the leaf and its root. Evaluate assumes the
// chain already passed signature/path validation; it decides only the
// revocation question.
func (c *Client) Evaluate(chainCerts []*x509x.Certificate, staple []byte) (*Verdict, error) {
	var staples [][]byte
	if staple != nil {
		staples = [][]byte{staple}
	}
	return c.EvaluateWithStaples(chainCerts, staples)
}

// EvaluateWithStaples is Evaluate with RFC 6961 multi-stapling: staples[i]
// is the stapled OCSP response for chain element i (nil entries allowed).
// Staples beyond the leaf are consulted only when the profile sets
// MultiStaple.
func (c *Client) EvaluateWithStaples(chainCerts []*x509x.Certificate, staples [][]byte) (*Verdict, error) {
	if len(chainCerts) < 2 {
		return nil, errors.New("browser: Evaluate needs a chain of at least leaf and root")
	}
	v := &Verdict{Outcome: OutcomeAccept}
	leafEV := chainCerts[0].IsEV()
	crlTab, ocspTab, fallback := c.Profile.behaviors(leafEV)

	// Root certificates are exempt from revocation checking (§2.2
	// footnote 4): iterate leaf through last intermediate.
	for i := 0; i < len(chainCerts)-1; i++ {
		cert := chainCerts[i]
		issuer := chainCerts[i+1]
		pos := position(i)
		behPos := pos
		if pos == PosLeaf && len(chainCerts) == 2 && c.Profile.TreatLeafAsInt1 {
			behPos = PosInt1
		}
		behCRL, behOCSP := crlTab[behPos], ocspTab[behPos]

		// Stapled response handling: the leaf always, deeper elements
		// only with RFC 6961 multi-stapling.
		var staple []byte
		if i < len(staples) && (i == 0 || c.Profile.MultiStaple) {
			staple = staples[i]
		}
		if len(staple) > 0 && c.Profile.RequestStaple && c.Profile.UseStaple {
			st, ok := c.evalStaple(v, cert, issuer, pos, staple)
			if ok {
				switch st {
				case stGood:
					continue // leaf satisfied without a network fetch
				case stRevoked:
					if c.Profile.RespectRevokedStaple {
						v.RevocationDetected = true
						v.Outcome = OutcomeReject
						return v, nil
					}
					// Chrome on OS X ignores the stapled revocation
					// and falls through to an online check.
				case stUnknown:
					if c.Profile.RejectUnknown {
						v.Outcome = OutcomeReject
						return v, nil
					}
					continue // incorrectly treated as trusted
				}
			}
		}

		canOCSP := len(cert.OCSPServers) > 0 && behOCSP.Check &&
			!(behOCSP.OnlyIfSoleProtocol && len(cert.CRLDistributionPoints) > 0)
		canCRL := len(cert.CRLDistributionPoints) > 0 && behCRL.Check &&
			!(behCRL.OnlyIfSoleProtocol && len(cert.OCSPServers) > 0)
		if !canOCSP && !canCRL {
			continue // nothing this browser would check here
		}

		var st status
		var beh Behavior
		if canOCSP {
			st = c.fetchOCSP(v, cert, issuer, pos)
			beh = behOCSP
			if st == stUnavailable && fallback && len(cert.CRLDistributionPoints) > 0 {
				st = c.fetchCRL(v, cert, issuer, pos)
				if st != stUnavailable {
					beh = behCRL
				}
			}
		} else {
			st = c.fetchCRL(v, cert, issuer, pos)
			beh = behCRL
		}

		switch st {
		case stGood:
			// fine; next certificate
		case stRevoked:
			v.RevocationDetected = true
			v.Outcome = OutcomeReject
			return v, nil
		case stUnknown:
			if c.Profile.RejectUnknown {
				v.Outcome = OutcomeReject
				return v, nil
			}
		case stUnavailable:
			switch {
			case beh.RejectUnavailable:
				v.Outcome = OutcomeReject
				return v, nil
			case beh.WarnUnavailable:
				v.Outcome = OutcomeWarn
			}
		}
	}
	return v, nil
}

// position classifies index i in a leaf-first chain: the leaf, the first
// intermediate (the leaf's issuer), and everything deeper.
func position(i int) Position {
	switch {
	case i == 0:
		return PosLeaf
	case i == 1:
		return PosInt1
	default:
		return PosIntDeep
	}
}

func (c *Client) log(v *Verdict, cert *x509x.Certificate, pos Position, proto string, result string) {
	v.Events = append(v.Events, Event{
		Subject:  cert.Subject.CommonName,
		Pos:      pos,
		Protocol: proto,
		Result:   result,
	})
}

// evalStaple validates a stapled OCSP response. ok is false when the
// staple is unusable (wrong cert, bad signature, stale) and online
// checking should proceed as if no staple were present.
func (c *Client) evalStaple(v *Verdict, leaf, issuer *x509x.Certificate, pos Position, staple []byte) (status, bool) {
	resp, err := ocsp.ParseResponse(staple)
	if err != nil || resp.RespStatus != ocsp.RespSuccessful {
		c.log(v, leaf, pos, "staple", "invalid")
		return stUnavailable, false
	}
	if err := resp.VerifySignatureFrom(issuer); err != nil {
		c.log(v, leaf, pos, "staple", "bad-signature")
		return stUnavailable, false
	}
	id := ocsp.NewCertID(issuer, leaf.SerialNumber)
	sr, found := resp.Find(id)
	if !found || !sr.CurrentAt(c.now()) {
		c.log(v, leaf, pos, "staple", "stale")
		return stUnavailable, false
	}
	st := fromOCSPStatus(sr.Status)
	c.log(v, leaf, pos, "staple", st.String())
	return st, true
}

func fromOCSPStatus(s ocsp.Status) status {
	switch s {
	case ocsp.StatusGood:
		return stGood
	case ocsp.StatusRevoked:
		return stRevoked
	default:
		return stUnknown
	}
}

func (c *Client) fetchOCSP(v *Verdict, cert, issuer *x509x.Certificate, pos Position) status {
	id := ocsp.NewCertID(issuer, cert.SerialNumber)
	if sr, ok := c.Cache.OCSP(id, c.now()); ok {
		st := fromOCSPStatus(sr.Status)
		c.log(v, cert, pos, "ocsp", st.String()+" (cached)")
		return st
	}
	client := &ocsp.Client{HTTP: c.HTTP}
	var last status = stUnavailable
	for _, url := range cert.OCSPServers {
		ctx, cancel := c.fetchCtx()
		sr, err := client.CheckContext(ctx, url, issuer, cert.SerialNumber)
		cancel()
		if err != nil {
			c.log(v, cert, pos, "ocsp", "unavailable")
			continue
		}
		if !sr.CurrentAt(c.now()) {
			c.log(v, cert, pos, "ocsp", "stale")
			continue
		}
		c.Cache.PutOCSP(id, sr)
		last = fromOCSPStatus(sr.Status)
		c.log(v, cert, pos, "ocsp", last.String())
		return last
	}
	return last
}

func (c *Client) fetchCRL(v *Verdict, cert, issuer *x509x.Certificate, pos Position) status {
	for _, url := range cert.CRLDistributionPoints {
		cachedNote := ""
		parsed, cached := c.Cache.CRL(url, c.now())
		if !cached {
			var err error
			parsed, err = c.downloadCRL(url)
			if err != nil {
				c.log(v, cert, pos, "crl", "unavailable")
				continue
			}
			if err := parsed.VerifySignature(issuer); err != nil {
				c.log(v, cert, pos, "crl", "bad-signature")
				continue
			}
			if !parsed.CurrentAt(c.now()) {
				c.log(v, cert, pos, "crl", "stale")
				continue
			}
			c.Cache.PutCRL(url, parsed)
		} else {
			cachedNote = " (cached)"
		}
		if parsed.Contains(cert.SerialNumber) {
			c.log(v, cert, pos, "crl", "revoked"+cachedNote)
			return stRevoked
		}
		c.log(v, cert, pos, "crl", "good"+cachedNote)
		return stGood
	}
	return stUnavailable
}

func (c *Client) downloadCRL(url string) (*crl.CRL, error) {
	httpClient := c.HTTP
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	ctx, cancel := c.fetchCtx()
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := httpClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("browser: CRL fetch: HTTP %d", resp.StatusCode)
	}
	limit := c.MaxCRLBytes
	if limit <= 0 {
		limit = 128 << 20
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, limit))
	if err != nil {
		return nil, err
	}
	return crl.Parse(body)
}
