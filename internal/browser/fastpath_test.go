package browser

import (
	"bytes"
	"crypto/ed25519"
	"testing"
	"time"

	"repro/internal/bloom"
	"repro/internal/cascade"
	"repro/internal/crl"
	"repro/internal/crlset"
	"repro/internal/x509x"
)

// coveredParents returns the CRLSet parents for every issuer in a
// leaf-first chain (everything that signs a checked element).
func coveredParents(chain []*x509x.Certificate) []crlset.Parent {
	var ps []crlset.Parent
	for i := 1; i < len(chain); i++ {
		ps = append(ps, crlset.Parent(x509x.SPKIHash(chain[i].RawSPKI)))
	}
	return ps
}

func TestCRLSetFastPathAnswersWithoutNetwork(t *testing.T) {
	w := newWorld(t, ocspOnly)
	chain, rec := w.leaf(false)
	if err := w.inter.Revoke(rec.Serial, w.clock.Now(), crl.ReasonKeyCompromise); err != nil {
		t.Fatal(err)
	}

	set := crlset.NewSet(1)
	for _, p := range coveredParents(chain) {
		set.AddParent(p) // covered even with no revocations under it
	}
	set.Add(crlset.Parent(x509x.SPKIHash(chain[1].RawSPKI)), rec.Serial)

	client := w.client(Hardened())
	client.CRLSet = set

	v := mustEval(t, client, chain)
	if v.Outcome != OutcomeReject || !v.RevocationDetected {
		t.Errorf("CRLSet-revoked leaf: %+v", v)
	}
	if got := w.net.TotalStats().Requests; got != 0 {
		t.Errorf("fast path made %d network requests", got)
	}
	sawCRLSet := false
	for _, e := range v.Events {
		if e.Protocol == "crlset" && e.Result == "revoked" {
			sawCRLSet = true
		}
	}
	if !sawCRLSet {
		t.Errorf("no crlset event logged: %+v", v.Events)
	}

	// A good leaf under a covered issuer is also answered locally.
	good, _ := w.leaf(false)
	v = mustEval(t, client, good)
	if v.Outcome != OutcomeAccept {
		t.Errorf("good leaf under covered parent: %+v", v)
	}
	if got := w.net.TotalStats().Requests; got != 0 {
		t.Errorf("good fast path made %d network requests", got)
	}
	if v.FastPath.CRLSetHits == 0 {
		t.Errorf("no CRLSet hits attributed: %+v", v.FastPath)
	}
}

func TestCRLSetMissFallsThroughToNetwork(t *testing.T) {
	w := newWorld(t, ocspOnly)
	chain, _ := w.leaf(false)
	client := w.client(Hardened())
	client.CRLSet = crlset.NewSet(1) // covers nothing

	v := mustEval(t, client, chain)
	if v.Outcome != OutcomeAccept {
		t.Errorf("verdict: %+v", v)
	}
	if w.net.TotalStats().Requests == 0 {
		t.Error("uncovered issuer should have hit the network")
	}
	if v.FastPath.CRLSetMisses == 0 {
		t.Errorf("no CRLSet misses attributed: %+v", v.FastPath)
	}
}

func TestBlockedSPKIRejects(t *testing.T) {
	w := newWorld(t, ocspOnly)
	chain, _ := w.leaf(false)
	set := crlset.NewSet(1)
	set.BlockedSPKIs = append(set.BlockedSPKIs, crlset.Parent(x509x.SPKIHash(chain[0].RawSPKI)))
	client := w.client(Hardened())
	client.CRLSet = set

	v := mustEval(t, client, chain)
	if v.Outcome != OutcomeReject || !v.RevocationDetected {
		t.Errorf("blocked SPKI not rejected: %+v", v)
	}
	if v.FastPath.BlockedSPKI != 1 {
		t.Errorf("BlockedSPKI = %d", v.FastPath.BlockedSPKI)
	}
}

func TestBloomFastPath(t *testing.T) {
	w := newWorld(t, ocspOnly)
	revokedChain, rec := w.leaf(false)
	if err := w.inter.Revoke(rec.Serial, w.clock.Now(), crl.ReasonKeyCompromise); err != nil {
		t.Fatal(err)
	}
	goodChain, _ := w.leaf(false)

	// Filter holds the one revoked (parent, serial) key.
	filter := bloom.NewOptimal(1024, 16)
	parent := crlset.Parent(x509x.SPKIHash(revokedChain[1].RawSPKI))
	filter.Add(BloomKey(nil, parent, rec.Serial.Bytes()))

	client := w.client(Hardened())
	client.Bloom = filter

	// Good leaf: negative is definitive, no network fetch for the leaf.
	v := mustEval(t, client, goodChain)
	if v.Outcome != OutcomeAccept {
		t.Errorf("good leaf: %+v", v)
	}
	if v.FastPath.BloomNegatives == 0 {
		t.Errorf("no Bloom negatives attributed: %+v", v.FastPath)
	}

	// Revoked leaf: positive falls through to the online check, which
	// must still find the revocation.
	w.net.ResetStats()
	v = mustEval(t, client, revokedChain)
	if v.Outcome != OutcomeReject || !v.RevocationDetected {
		t.Errorf("revoked leaf through Bloom positive: %+v", v)
	}
	if v.FastPath.BloomPositives == 0 {
		t.Errorf("no Bloom positives attributed: %+v", v.FastPath)
	}
	if w.net.TotalStats().Requests == 0 {
		t.Error("Bloom positive should have triggered a network check")
	}
}

// buildChainCascade builds a cascade over the test world's chain: the
// revoked keys plus a small synthetic population under the same issuers.
func buildChainCascade(t *testing.T, chain []*x509x.Certificate, revokedSerials [][]byte, cfg cascade.BuildConfig) *cascade.Filter {
	t.Helper()
	var parents []cascade.Parent
	for _, p := range coveredParents(chain) {
		parents = append(parents, cascade.Parent(p))
	}
	issuer := parents[0]
	var revoked [][]byte
	for _, s := range revokedSerials {
		revoked = append(revoked, cascade.AppendKey(nil, issuer, s))
	}
	visit := func(fn func(key []byte) bool) {
		for _, k := range revoked {
			if !fn(k) {
				return
			}
		}
		for i := 0; i < 500; i++ {
			serial := []byte{0x55, byte(i >> 8), byte(i)}
			if !fn(cascade.AppendKey(nil, issuer, serial)) {
				return
			}
		}
	}
	f, err := cascade.Build(revoked, visit, parents, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestCascadeFastPathAuthoritative: a fresh cascade answers both the
// revoked and the good leaf offline, exactly, before CRLSet/Bloom.
func TestCascadeFastPathAuthoritative(t *testing.T) {
	w := newWorld(t, ocspOnly)
	revokedChain, rec := w.leaf(false)
	if err := w.inter.Revoke(rec.Serial, w.clock.Now(), crl.ReasonKeyCompromise); err != nil {
		t.Fatal(err)
	}
	goodChain, _ := w.leaf(false)

	client := w.client(Hardened())
	client.Cascade = buildChainCascade(t, revokedChain, [][]byte{rec.Serial.Bytes()}, cascade.BuildConfig{
		Epoch: 1, BuiltAt: w.clock.Now(), MaxAge: 48 * time.Hour,
	})

	v := mustEval(t, client, revokedChain)
	if v.Outcome != OutcomeReject || !v.RevocationDetected {
		t.Errorf("cascade-revoked leaf: %+v", v)
	}
	if v.FastPath.CascadeHits == 0 {
		t.Errorf("no cascade hits attributed: %+v", v.FastPath)
	}
	v = mustEval(t, client, goodChain)
	if v.Outcome != OutcomeAccept {
		t.Errorf("good leaf: %+v", v)
	}
	if got := w.net.TotalStats().Requests; got != 0 {
		t.Errorf("authoritative cascade made %d network requests", got)
	}
}

// TestCascadeStaleFallsBack: once the snapshot outlives its max-age the
// cascade is skipped and checking goes to the network.
func TestCascadeStaleFallsBack(t *testing.T) {
	w := newWorld(t, ocspOnly)
	chain, _ := w.leaf(false)
	client := w.client(Hardened())
	client.Cascade = buildChainCascade(t, chain, nil, cascade.BuildConfig{
		Epoch: 1, BuiltAt: w.clock.Now().Add(-72 * time.Hour), MaxAge: 24 * time.Hour,
	})

	v := mustEval(t, client, chain)
	if v.Outcome != OutcomeAccept {
		t.Errorf("verdict: %+v", v)
	}
	if v.FastPath.CascadeStale == 0 || v.FastPath.CascadeHits != 0 {
		t.Errorf("stale cascade consulted: %+v", v.FastPath)
	}
	if w.net.TotalStats().Requests == 0 {
		t.Error("stale cascade should have fallen back to the network")
	}
}

// TestCascadeCutoffExcludesNewCerts: a cert issued after the snapshot
// cutoff was never streamed through the build — the cascade must not
// answer for it.
func TestCascadeCutoffExcludesNewCerts(t *testing.T) {
	w := newWorld(t, ocspOnly)
	chain, _ := w.leaf(false) // NotBefore is one month before now
	client := w.client(Hardened())
	client.Cascade = buildChainCascade(t, chain, nil, cascade.BuildConfig{
		Epoch: 1, BuiltAt: w.clock.Now(), Cutoff: w.clock.Now().AddDate(0, -2, 0),
	})

	v := mustEval(t, client, chain)
	// The older intermediate may still hit; the leaf must miss.
	if v.FastPath.CascadeMisses == 0 {
		t.Errorf("post-cutoff cert answered by cascade: %+v", v.FastPath)
	}
	for _, e := range v.Events {
		if e.Protocol == "cascade" && e.Pos == PosLeaf {
			t.Errorf("cascade answered the post-cutoff leaf: %+v", e)
		}
	}
	if w.net.TotalStats().Requests == 0 {
		t.Error("uncovered cert should have hit the network")
	}
}

// TestCascadeKeyMatchesBloomKey pins the shared key layout: the cascade
// and the Bloom filter must agree byte for byte, including serial
// canonicalization.
func TestCascadeKeyMatchesBloomKey(t *testing.T) {
	var p crlset.Parent
	p[5] = 0xaa
	for _, serial := range [][]byte{nil, {0x00}, {0x00, 0x17}, {0x80, 0x01}} {
		a := BloomKey(nil, p, serial)
		b := cascade.AppendKey(nil, cascade.Parent(p), serial)
		if !bytes.Equal(a, b) {
			t.Errorf("key drift for serial %x: bloom %x, cascade %x", serial, a, b)
		}
	}
}

// buildShardInstall builds one ribbon-level shard per issuer in the
// chain, pins them all under a signed manifest, and installs only the
// shards the trust predicate accepts — the full client-side path for a
// sharded cascade (cascade.InstallShards).
func buildShardInstall(t *testing.T, chain []*x509x.Certificate, revokedSerials [][]byte, now time.Time, trusted func(cascade.Parent) bool) *cascade.ShardSet {
	t.Helper()
	parents := coveredParents(chain)
	order := make([]cascade.Parent, len(parents))
	for i, p := range parents {
		order[i] = cascade.Parent(p)
	}
	cascade.SortParents(order)
	snaps := make(map[cascade.Parent][]byte)
	m := &cascade.Manifest{Epoch: 1, BuiltAt: now}
	for _, p := range order {
		var revoked [][]byte
		if p == cascade.Parent(parents[0]) { // the leaf's issuer owns the revocations
			for _, s := range revokedSerials {
				revoked = append(revoked, cascade.AppendKey(nil, p, s))
			}
		}
		parent := p
		visit := func(fn func(key []byte) bool) {
			for _, k := range revoked {
				if !fn(k) {
					return
				}
			}
			for i := 0; i < 400; i++ {
				serial := []byte{0x55, byte(i >> 8), byte(i)}
				if !fn(cascade.AppendKey(nil, parent, serial)) {
					return
				}
			}
		}
		f, err := cascade.Build(revoked, visit, []cascade.Parent{p}, cascade.BuildConfig{
			Epoch: 1, BuiltAt: now, MaxAge: 48 * time.Hour, LevelKind: cascade.KindRibbon,
		})
		if err != nil {
			t.Fatal(err)
		}
		enc := f.Encode()
		snaps[p] = enc
		m.Shards = append(m.Shards, cascade.ShardEntry{
			Parent: p, Epoch: 1, SnapshotCRC: cascade.CRC(enc), SnapshotLen: uint32(len(enc)),
		})
	}
	priv := cascade.ManifestKeyFromSeed(99)
	raw, err := m.Sign(priv)
	if err != nil {
		t.Fatal(err)
	}
	verified, err := cascade.VerifyManifest(raw, priv.Public().(ed25519.PublicKey))
	if err != nil {
		t.Fatal(err)
	}
	s, err := cascade.InstallShards(verified, snaps, trusted)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCascadeShardsFastPath: a full sharded install answers both leaves
// offline through the issuer's own shard, exactly like the monolithic
// cascade.
func TestCascadeShardsFastPath(t *testing.T) {
	w := newWorld(t, ocspOnly)
	revokedChain, rec := w.leaf(false)
	if err := w.inter.Revoke(rec.Serial, w.clock.Now(), crl.ReasonKeyCompromise); err != nil {
		t.Fatal(err)
	}
	goodChain, _ := w.leaf(false)

	client := w.client(Hardened())
	client.CascadeShards = buildShardInstall(t, revokedChain, [][]byte{rec.Serial.Bytes()}, w.clock.Now(), nil)

	v := mustEval(t, client, revokedChain)
	if v.Outcome != OutcomeReject || !v.RevocationDetected {
		t.Errorf("shard-revoked leaf: %+v", v)
	}
	if v.FastPath.CascadeHits == 0 {
		t.Errorf("no cascade hits attributed: %+v", v.FastPath)
	}
	v = mustEval(t, client, goodChain)
	if v.Outcome != OutcomeAccept {
		t.Errorf("good leaf: %+v", v)
	}
	if got := w.net.TotalStats().Requests; got != 0 {
		t.Errorf("full shard install made %d network requests", got)
	}
}

// TestCascadeShardsTrustFiltering: with only the leaf issuer's shard
// installed, the leaf is answered locally while the intermediate (whose
// issuer the client did not trust) falls back to the network.
func TestCascadeShardsTrustFiltering(t *testing.T) {
	w := newWorld(t, ocspOnly)
	chain, _ := w.leaf(false)
	leafIssuer := cascade.Parent(coveredParents(chain)[0])
	client := w.client(Hardened())
	client.CascadeShards = buildShardInstall(t, chain, nil, w.clock.Now(),
		func(p cascade.Parent) bool { return p == leafIssuer })
	if client.CascadeShards.NumShards() != 1 {
		t.Fatalf("installed %d shards, want 1", client.CascadeShards.NumShards())
	}

	v := mustEval(t, client, chain)
	if v.Outcome != OutcomeAccept {
		t.Errorf("verdict: %+v", v)
	}
	if v.FastPath.CascadeHits == 0 || v.FastPath.CascadeMisses == 0 {
		t.Errorf("expected one shard hit and one miss: %+v", v.FastPath)
	}
	for _, e := range v.Events {
		if e.Protocol == "cascade-shard" && e.Pos != PosLeaf {
			t.Errorf("uninstalled issuer answered locally: %+v", e)
		}
	}
	if w.net.TotalStats().Requests == 0 {
		t.Error("untrusted issuer's element should have hit the network")
	}
}
