package browser

import (
	"sync"
	"time"

	"repro/internal/crl"
	"repro/internal/ocsp"
	"repro/internal/x509x"
)

// SingleLockCache is the seed tree's browser cache, preserved verbatim as
// the measured "before" of the fleet benchmark (the same convention as
// the crlbench legacy oracle): one global mutex over two maps, an
// exclusive lock even for read hits, delete-on-read for expired entries,
// and an ocsp.CertID key string built — twice — per lookup. Do not use it
// outside baseline measurement; Cache is the production Store.
type SingleLockCache struct {
	mu    sync.Mutex
	crls  map[string]*crl.CRL
	ocsps map[string]ocsp.SingleResponse
}

// NewSingleLockCache returns an empty seed-style cache.
func NewSingleLockCache() *SingleLockCache {
	return &SingleLockCache{
		crls:  make(map[string]*crl.CRL),
		ocsps: make(map[string]ocsp.SingleResponse),
	}
}

// CRL returns the cached CRL for url if it is still current at now.
func (c *SingleLockCache) CRL(url string, now time.Time) (*crl.CRL, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cached, ok := c.crls[url]
	if !ok || !cached.CurrentAt(now) {
		delete(c.crls, url)
		return nil, false
	}
	return cached, true
}

// PutCRL stores a CRL under its distribution-point URL.
func (c *SingleLockCache) PutCRL(url string, parsed *crl.CRL) {
	if c == nil || parsed.NextUpdate.IsZero() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crls[url] = parsed
}

// OCSP returns the cached single response for (issuer, cert) if still
// current at now, reproducing the seed hot path: the CertID is rebuilt
// from scratch and its Key() computed twice under the exclusive lock.
func (c *SingleLockCache) OCSP(issuer, cert *x509x.Certificate, now time.Time) (ocsp.SingleResponse, bool) {
	if c == nil {
		return ocsp.SingleResponse{}, false
	}
	id := ocsp.NewCertID(issuer, cert.SerialNumber)
	c.mu.Lock()
	defer c.mu.Unlock()
	sr, ok := c.ocsps[id.Key()]
	if !ok || !sr.CurrentAt(now) {
		delete(c.ocsps, id.Key())
		return ocsp.SingleResponse{}, false
	}
	return sr, true
}

// PutOCSP stores a verified single response.
func (c *SingleLockCache) PutOCSP(issuer, cert *x509x.Certificate, sr ocsp.SingleResponse) {
	if c == nil || sr.NextUpdate.IsZero() {
		return
	}
	id := ocsp.NewCertID(issuer, cert.SerialNumber)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ocsps[id.Key()] = sr
}

// Len reports the number of cached CRLs and OCSP responses.
func (c *SingleLockCache) Len() (crls, ocsps int) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.crls), len(c.ocsps)
}
