package browser_test

import (
	"fmt"

	"repro/internal/browser"
)

// The Table 2 profiles capture what each browser actually checked in
// 2015. Mobile browsers checked nothing at all.
func ExampleProfile_ChecksAnything() {
	for _, p := range []*browser.Profile{
		browser.Firefox40(),
		browser.Safari6to8(),
		browser.MobileSafari(),
		browser.AndroidStock(),
	} {
		fmt.Printf("%-14s checks revocation for non-EV chains: %t\n", p.Name, p.ChecksAnything())
	}
	// Output:
	// Firefox 40     checks revocation for non-EV chains: true
	// Safari 6-8     checks revocation for non-EV chains: true
	// iOS 6-8        checks revocation for non-EV chains: false
	// Android Stock  checks revocation for non-EV chains: false
}
