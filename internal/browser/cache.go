package browser

import (
	"sync"
	"time"

	"repro/internal/crl"
	"repro/internal/ocsp"
)

// Cache holds revocation data a checking client may reuse: CRLs until
// their nextUpdate and OCSP single responses until theirs (§2.2 — clients
// can cache CRLs, and OCSP responses are typically cacheable for days,
// longer than most CRLs). A nil *Cache disables caching; one Cache is safe
// for concurrent use by many clients.
type Cache struct {
	mu    sync.Mutex
	crls  map[string]*crl.CRL
	ocsps map[string]ocsp.SingleResponse
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{
		crls:  make(map[string]*crl.CRL),
		ocsps: make(map[string]ocsp.SingleResponse),
	}
}

// CRL returns the cached CRL for url if it is still current at now.
func (c *Cache) CRL(url string, now time.Time) (*crl.CRL, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cached, ok := c.crls[url]
	if !ok || !cached.CurrentAt(now) {
		delete(c.crls, url)
		return nil, false
	}
	return cached, true
}

// PutCRL stores a CRL under its distribution-point URL. CRLs without a
// nextUpdate are not cached (no safe reuse window).
func (c *Cache) PutCRL(url string, parsed *crl.CRL) {
	if c == nil || parsed.NextUpdate.IsZero() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crls[url] = parsed
}

// OCSP returns the cached single response for id if still current at now.
func (c *Cache) OCSP(id ocsp.CertID, now time.Time) (ocsp.SingleResponse, bool) {
	if c == nil {
		return ocsp.SingleResponse{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	sr, ok := c.ocsps[id.Key()]
	if !ok || !sr.CurrentAt(now) {
		delete(c.ocsps, id.Key())
		return ocsp.SingleResponse{}, false
	}
	return sr, true
}

// PutOCSP stores a verified single response. Responses without a
// nextUpdate are not cached.
func (c *Cache) PutOCSP(id ocsp.CertID, sr ocsp.SingleResponse) {
	if c == nil || sr.NextUpdate.IsZero() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ocsps[id.Key()] = sr
}

// Len reports the number of cached CRLs and OCSP responses.
func (c *Cache) Len() (crls, ocsps int) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.crls), len(c.ocsps)
}
