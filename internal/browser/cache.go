package browser

import (
	"math/big"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/crl"
	"repro/internal/ocsp"
	"repro/internal/x509x"
)

// Store is the pluggable client-side revocation cache consulted by
// Client: CRLs until their nextUpdate and OCSP single responses until
// theirs (§2.2 — clients can cache CRLs, and OCSP responses are typically
// cacheable for days, longer than most CRLs). A Store must be safe for
// concurrent use by many clients; a nil Client.Cache disables caching.
//
// OCSP entries are keyed by (issuer, certificate) rather than a
// pre-computed ocsp.CertID so each implementation can pick its own key
// derivation: the sharded Cache builds an allocation-free key from the
// issuer's raw name/SPKI bytes, while SingleLockCache reproduces the
// seed's CertID.Key() string path for baseline measurement.
type Store interface {
	CRL(url string, now time.Time) (*crl.CRL, bool)
	PutCRL(url string, parsed *crl.CRL)
	OCSP(issuer, cert *x509x.Certificate, now time.Time) (ocsp.SingleResponse, bool)
	PutOCSP(issuer, cert *x509x.Certificate, sr ocsp.SingleResponse)
}

// CRLSource says how a CRL reached the caller of DoCRL.
type CRLSource int

// CRL sources.
const (
	// SourceFetched: this caller ran the fetch itself.
	SourceFetched CRLSource = iota
	// SourceCached: served from a live cache entry.
	SourceCached
	// SourceJoined: another client was already fetching the same URL and
	// this caller waited for that flight instead of duplicating it.
	SourceJoined
)

// crlSingleflighter is implemented by stores that can collapse concurrent
// same-URL CRL fetches into one download+parse. Client type-asserts for
// it so the seed-faithful SingleLockCache keeps the seed's fetch
// behaviour.
type crlSingleflighter interface {
	DoCRL(url string, now time.Time, fetch func() (*crl.CRL, error)) (*crl.CRL, CRLSource, error)
}

// CacheConfig sizes a Cache.
type CacheConfig struct {
	// Shards is the number of lock shards; rounded up to a power of two.
	// 0 means DefaultCacheShards. More shards cut contention when many
	// clients hit the cache concurrently; each shard costs two small maps.
	Shards int
	// MaxEntries caps the total number of cached items (CRLs plus OCSP
	// responses) across all shards. 0 means unbounded. When a shard
	// exceeds its slice of the cap, expired entries are swept first and
	// then the entries closest to expiry are evicted (they are the least
	// valuable: about to be refetched anyway).
	MaxEntries int
}

// DefaultCacheShards is the shard count used by NewCache.
const DefaultCacheShards = 64

// Cache is the sharded Store used by a fleet of clients sharing one
// revocation cache, the way all tabs (and, via the OS verifier, all
// processes) of one machine share a single CRL/OCSP cache. Reads take a
// per-shard RLock and never write — an expired entry is reported as a
// miss and left for the sweeper instead of being deleted under an
// exclusive lock on the read path. Construct with NewCache or
// NewCacheWithConfig; one Cache is safe for concurrent use by many
// clients. The zero value and nil are both usable as a disabled cache.
type Cache struct {
	shards []cacheShard
	mask   uint32
	// perShardCap is MaxEntries spread over the shards (0 = unbounded).
	perShardCap int

	crlHits     atomic.Int64
	crlMisses   atomic.Int64
	ocspHits    atomic.Int64
	ocspMisses  atomic.Int64
	expired     atomic.Int64
	evictions   atomic.Int64
	crlFetches  atomic.Int64
	dedupeJoins atomic.Int64
}

type cacheShard struct {
	mu      sync.RWMutex
	crls    map[string]*crl.CRL
	ocsps   map[string]ocsp.SingleResponse
	flights map[string]*crlFlight
}

// crlFlight is one in-progress download+parse of a CRL URL. ready is
// closed once parsed/err are final; joiners block on it, which is what
// collapses N concurrent same-URL fetches into one.
type crlFlight struct {
	ready  chan struct{}
	parsed *crl.CRL
	err    error
}

// NewCache returns an empty cache with default sharding and no entry cap.
func NewCache() *Cache {
	return NewCacheWithConfig(CacheConfig{})
}

// NewCacheWithConfig returns an empty cache sized by cfg.
func NewCacheWithConfig(cfg CacheConfig) *Cache {
	shards := cfg.Shards
	if shards <= 0 {
		shards = DefaultCacheShards
	}
	// Round up to a power of two so the shard index is a mask.
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &Cache{shards: make([]cacheShard, n), mask: uint32(n - 1)}
	if cfg.MaxEntries > 0 {
		c.perShardCap = (cfg.MaxEntries + n - 1) / n
		if c.perShardCap < 1 {
			c.perShardCap = 1
		}
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.crls = make(map[string]*crl.CRL)
		sh.ocsps = make(map[string]ocsp.SingleResponse)
		sh.flights = make(map[string]*crlFlight)
	}
	return c
}

// CacheStats counts cache activity since construction.
type CacheStats struct {
	CRLHits    int64
	CRLMisses  int64
	OCSPHits   int64
	OCSPMisses int64
	// Expired counts lookups that found an entry past its validity
	// window (reported as misses; the entry stays for the sweeper).
	Expired int64
	// Evictions counts entries removed to enforce MaxEntries.
	Evictions int64
	// CRLFetches counts fetch closures actually run by DoCRL — the
	// number of network downloads a fleet paid for.
	CRLFetches int64
	// DedupeJoins counts DoCRL callers that waited on another client's
	// in-flight fetch instead of starting their own.
	DedupeJoins int64
}

// Hits returns total lookup hits across both protocols.
func (s CacheStats) Hits() int64 { return s.CRLHits + s.OCSPHits }

// Misses returns total lookup misses across both protocols.
func (s CacheStats) Misses() int64 { return s.CRLMisses + s.OCSPMisses }

// HitRatio returns hits/(hits+misses), or 0 before any lookup.
func (s CacheStats) HitRatio() float64 {
	total := s.Hits() + s.Misses()
	if total == 0 {
		return 0
	}
	return float64(s.Hits()) / float64(total)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		CRLHits:     c.crlHits.Load(),
		CRLMisses:   c.crlMisses.Load(),
		OCSPHits:    c.ocspHits.Load(),
		OCSPMisses:  c.ocspMisses.Load(),
		Expired:     c.expired.Load(),
		Evictions:   c.evictions.Load(),
		CRLFetches:  c.crlFetches.Load(),
		DedupeJoins: c.dedupeJoins.Load(),
	}
}

// shardFor hashes key (FNV-1a) onto a shard.
func (c *Cache) shardFor(key []byte) *cacheShard {
	h := uint32(2166136261)
	for _, b := range key {
		h ^= uint32(b)
		h *= 16777619
	}
	return &c.shards[h&c.mask]
}

func (c *Cache) shardForString(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h&c.mask]
}

// ocspKeyBuf is the stack scratch an OCSP lookup assembles its key in:
// issuer RawSubject + issuer RawSPKI + compact serial. Typical sizes are
// ~40 + ~91 + ≤20 bytes, comfortably inside the array, so the read path
// never allocates; oversized names spill to the heap and still work.
type ocspKeyBuf [256]byte

// appendOCSPKey builds the cache key identifying (issuer, cert) — the
// same uniqueness the OCSP CertID provides (issuer name, issuer key,
// serial) without the two SHA-256s, the elliptic point marshal, and the
// string concatenation the seed paid per lookup.
func appendOCSPKey(dst []byte, issuer, cert *x509x.Certificate) []byte {
	dst = append(dst, issuer.RawSubject...)
	dst = append(dst, issuer.RawSPKI...)
	return appendSerial(dst, cert.SerialNumber)
}

// appendSerial appends the compact big-endian magnitude of s (what
// big.Int.Bytes returns) without allocating.
func appendSerial(dst []byte, s *big.Int) []byte {
	n := (s.BitLen() + 7) / 8
	if n == 0 {
		return dst
	}
	if cap(dst)-len(dst) < n {
		return append(dst, s.Bytes()...)
	}
	out := dst[:len(dst)+n]
	s.FillBytes(out[len(dst):])
	return out
}

// CRL returns the cached CRL for url if it is still current at now.
func (c *Cache) CRL(url string, now time.Time) (*crl.CRL, bool) {
	if c == nil || len(c.shards) == 0 {
		return nil, false
	}
	sh := c.shardForString(url)
	sh.mu.RLock()
	cached, ok := sh.crls[url]
	sh.mu.RUnlock()
	if !ok {
		c.crlMisses.Add(1)
		return nil, false
	}
	if !cached.CurrentAt(now) {
		c.expired.Add(1)
		c.crlMisses.Add(1)
		return nil, false
	}
	c.crlHits.Add(1)
	return cached, true
}

// PutCRL stores a CRL under its distribution-point URL. CRLs without a
// nextUpdate are not cached (no safe reuse window).
func (c *Cache) PutCRL(url string, parsed *crl.CRL) {
	if c == nil || len(c.shards) == 0 || parsed.NextUpdate.IsZero() {
		return
	}
	sh := c.shardForString(url)
	sh.mu.Lock()
	sh.crls[url] = parsed
	c.enforceCapLocked(sh)
	sh.mu.Unlock()
}

// OCSP returns the cached single response for (issuer, cert) if still
// current at now. The hit path takes one RLock and performs no
// allocations.
func (c *Cache) OCSP(issuer, cert *x509x.Certificate, now time.Time) (ocsp.SingleResponse, bool) {
	if c == nil || len(c.shards) == 0 {
		return ocsp.SingleResponse{}, false
	}
	var buf ocspKeyBuf
	key := appendOCSPKey(buf[:0], issuer, cert)
	sh := c.shardFor(key)
	sh.mu.RLock()
	sr, ok := sh.ocsps[string(key)]
	sh.mu.RUnlock()
	if !ok {
		c.ocspMisses.Add(1)
		return ocsp.SingleResponse{}, false
	}
	if !sr.CurrentAt(now) {
		c.expired.Add(1)
		c.ocspMisses.Add(1)
		return ocsp.SingleResponse{}, false
	}
	c.ocspHits.Add(1)
	return sr, true
}

// PutOCSP stores a verified single response. Responses without a
// nextUpdate are not cached.
func (c *Cache) PutOCSP(issuer, cert *x509x.Certificate, sr ocsp.SingleResponse) {
	if c == nil || len(c.shards) == 0 || sr.NextUpdate.IsZero() {
		return
	}
	var buf ocspKeyBuf
	key := appendOCSPKey(buf[:0], issuer, cert)
	sh := c.shardFor(key)
	sh.mu.Lock()
	sh.ocsps[string(key)] = sr
	c.enforceCapLocked(sh)
	sh.mu.Unlock()
}

// DoCRL returns a current CRL for url, fetching at most once no matter
// how many clients ask concurrently: the first miss runs fetch, every
// concurrent caller for the same URL waits on that flight, and later
// callers hit the cached result. A successful fetch is stored under the
// usual PutCRL rules. With a nil receiver DoCRL degrades to calling
// fetch directly.
func (c *Cache) DoCRL(url string, now time.Time, fetch func() (*crl.CRL, error)) (*crl.CRL, CRLSource, error) {
	if c == nil || len(c.shards) == 0 {
		parsed, err := fetch()
		return parsed, SourceFetched, err
	}
	if parsed, ok := c.CRL(url, now); ok {
		return parsed, SourceCached, nil
	}
	sh := c.shardForString(url)
	sh.mu.Lock()
	// Re-check under the write lock: a flight may have completed between
	// the read miss and here.
	if cached, ok := sh.crls[url]; ok && cached.CurrentAt(now) {
		sh.mu.Unlock()
		c.crlHits.Add(1)
		return cached, SourceCached, nil
	}
	if fl := sh.flights[url]; fl != nil {
		sh.mu.Unlock()
		<-fl.ready
		c.dedupeJoins.Add(1)
		return fl.parsed, SourceJoined, fl.err
	}
	fl := &crlFlight{ready: make(chan struct{})}
	sh.flights[url] = fl
	sh.mu.Unlock()

	c.crlFetches.Add(1)
	parsed, err := fetch()
	fl.parsed, fl.err = parsed, err
	if err == nil {
		c.PutCRL(url, parsed)
	}
	sh.mu.Lock()
	delete(sh.flights, url)
	sh.mu.Unlock()
	close(fl.ready)
	return parsed, SourceFetched, err
}

// enforceCapLocked evicts soonest-to-expire entries while the shard is
// over its cap; the policy is deterministic for a given shard
// population. Caller holds sh.mu.
func (c *Cache) enforceCapLocked(sh *cacheShard) {
	if c.perShardCap <= 0 {
		return
	}
	for len(sh.crls)+len(sh.ocsps) > c.perShardCap {
		if c.evictOneLocked(sh) == 0 {
			return
		}
	}
}

// evictOneLocked removes the entry with the earliest nextUpdate (ties
// broken by key order, so eviction is deterministic for a given shard
// population). Returns the number of entries removed.
func (c *Cache) evictOneLocked(sh *cacheShard) int {
	var bestKey string
	var bestAt time.Time
	bestIsCRL := false
	found := false
	consider := func(key string, at time.Time, isCRL bool) {
		if !found || at.Before(bestAt) || (at.Equal(bestAt) && key < bestKey) {
			found, bestKey, bestAt, bestIsCRL = true, key, at, isCRL
		}
	}
	for key, parsed := range sh.crls {
		consider(key, parsed.NextUpdate, true)
	}
	for key, sr := range sh.ocsps {
		consider(key, sr.NextUpdate, false)
	}
	if !found {
		return 0
	}
	if bestIsCRL {
		delete(sh.crls, bestKey)
	} else {
		delete(sh.ocsps, bestKey)
	}
	c.evictions.Add(1)
	return 1
}

// Sweep removes every entry whose validity window has lapsed at now and
// returns the number removed. Reads never delete, so a long-lived cache
// should be swept periodically (the fleet driver sweeps between rounds).
func (c *Cache) Sweep(now time.Time) int {
	if c == nil {
		return 0
	}
	removed := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for key, parsed := range sh.crls {
			if !parsed.CurrentAt(now) {
				delete(sh.crls, key)
				removed++
			}
		}
		for key, sr := range sh.ocsps {
			if !sr.CurrentAt(now) {
				delete(sh.ocsps, key)
				removed++
			}
		}
		sh.mu.Unlock()
	}
	return removed
}

// Len reports the number of cached CRLs and OCSP responses.
func (c *Cache) Len() (crls, ocsps int) {
	if c == nil {
		return 0, 0
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		crls += len(sh.crls)
		ocsps += len(sh.ocsps)
		sh.mu.RUnlock()
	}
	return crls, ocsps
}

// NumShards reports the (rounded) shard count, for harness reporting.
func (c *Cache) NumShards() int {
	if c == nil {
		return 0
	}
	return len(c.shards)
}
