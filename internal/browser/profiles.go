package browser

// The profiles below encode Table 2 of the paper column by column, using
// the §6.3/§6.4 narrative to resolve each cell. Cells marked "l/w" in the
// paper (Linux/Windows only) are represented by splitting that browser
// into per-OS profiles, as the paper itself does for Chrome.

func checkAllPositions(b Behavior) [3]Behavior { return [3]Behavior{b, b, b} }

// ChromeOSX is Chrome 44 on OS X: no revocation checks for non-EV
// certificates; for EV it checks the whole chain over both protocols,
// falls back to CRLs, and hard-fails only when the first intermediate's
// CRL is unavailable. It requests OCSP staples but does not respect a
// stapled revoked response.
func ChromeOSX() *Profile {
	ev := &EVBehavior{
		CRL:           checkAllPositions(Behavior{Check: true}),
		OCSP:          checkAllPositions(Behavior{Check: true}),
		FallbackToCRL: true,
	}
	ev.CRL[PosInt1].RejectUnavailable = true
	return &Profile{
		Name: "Chrome 44 (OS X)", Browser: "Chrome 44", OS: "OS X",
		EV:            ev,
		RequestStaple: true, UseStaple: true, RespectRevokedStaple: false,
	}
}

// ChromeWindows is Chrome 44 on Windows: like OS X, but non-EV chains get
// the first intermediate's CRL checked (when the certificate lists only a
// CRL), with a hard failure if that CRL is unavailable; and stapled
// revoked responses are respected.
func ChromeWindows() *Profile {
	p := ChromeOSX()
	p.Name, p.OS = "Chrome 44 (Windows)", "Windows"
	p.CRL[PosInt1] = Behavior{Check: true, OnlyIfSoleProtocol: true, RejectUnavailable: true}
	p.RespectRevokedStaple = true
	return p
}

// ChromeLinux is Chrome 44 on Linux: EV-only checking as on OS X. The
// paper could not measure its unavailability handling (the "–" cells);
// this profile models the measured subset.
func ChromeLinux() *Profile {
	ev := &EVBehavior{
		CRL:  checkAllPositions(Behavior{Check: true}),
		OCSP: checkAllPositions(Behavior{Check: true}),
	}
	return &Profile{
		Name: "Chrome 44 (Linux)", Browser: "Chrome 44", OS: "Linux",
		EV:            ev,
		RequestStaple: true, UseStaple: true,
	}
}

// Firefox40 checks only the leaf's OCSP responder for non-EV chains and
// every OCSP responder for EV; it never fetches CRLs, never falls back,
// and soft-fails when the responder is unavailable — but it does
// correctly reject responses with status unknown.
func Firefox40() *Profile {
	p := &Profile{
		Name: "Firefox 40", Browser: "Firefox 40", OS: "all",
		RejectUnknown: true,
		RequestStaple: true, UseStaple: true, RespectRevokedStaple: true,
	}
	p.OCSP[PosLeaf] = Behavior{Check: true}
	p.EV = &EVBehavior{OCSP: checkAllPositions(Behavior{Check: true})}
	return p
}

// Opera12 (the pre-Chromium engine) checks every certificate's CRL but
// only the leaf's OCSP responder, accepts on unavailability, and rejects
// unknown OCSP statuses.
func Opera12() *Profile {
	p := &Profile{
		Name: "Opera 12.17", Browser: "Opera 12.17", OS: "all",
		RejectUnknown: true,
		RequestStaple: true, UseStaple: true, RespectRevokedStaple: true,
	}
	p.CRL = checkAllPositions(Behavior{Check: true})
	p.OCSP[PosLeaf] = Behavior{Check: true}
	return p
}

// Opera31OSX is the Chromium-based Opera on OS X: full-chain checking
// over both protocols; hard-fails when the first intermediate's (or
// bare leaf's) CRL is unavailable; treats unknown as trusted; on OS X it
// neither falls back to CRLs nor respects stapled revoked responses.
func Opera31OSX() *Profile {
	p := &Profile{
		Name: "Opera 31 (OS X)", Browser: "Opera 31", OS: "OS X",
		TreatLeafAsInt1: true,
		RequestStaple:   true, UseStaple: true,
	}
	p.CRL = checkAllPositions(Behavior{Check: true})
	p.OCSP = checkAllPositions(Behavior{Check: true})
	p.CRL[PosInt1].RejectUnavailable = true
	return p
}

// Opera31WinLin is Opera 31 on Windows and Linux, where OCSP
// unavailability at the first intermediate also hard-fails, CRL fallback
// works, and stapled revoked responses are respected.
func Opera31WinLin() *Profile {
	p := Opera31OSX()
	p.Name, p.OS = "Opera 31 (Win/Linux)", "Windows/Linux"
	p.OCSP[PosInt1].RejectUnavailable = true
	p.FallbackToCRL = true
	p.RespectRevokedStaple = true
	return p
}

// Safari6to8 checks the whole chain over both protocols and falls back
// from OCSP to CRLs, but hard-fails only when the first element's CRL is
// unavailable; it treats unknown as trusted and does not request staples.
func Safari6to8() *Profile {
	p := &Profile{
		Name: "Safari 6-8", Browser: "Safari 6-8", OS: "OS X",
		FallbackToCRL:   true,
		TreatLeafAsInt1: true,
	}
	p.CRL = checkAllPositions(Behavior{Check: true})
	p.OCSP = checkAllPositions(Behavior{Check: true})
	p.CRL[PosInt1].RejectUnavailable = true
	return p
}

// IE7to9 checks everything over both protocols with CRL fallback and
// hard-fails when the first intermediate's revocation information is
// unavailable; leaf unavailability is silently accepted.
func IE7to9() *Profile {
	p := &Profile{
		Name: "IE 7-9", Browser: "IE 7-9", OS: "Windows",
		FallbackToCRL:   true,
		TreatLeafAsInt1: true,
		RequestStaple:   true, UseStaple: true, RespectRevokedStaple: true,
	}
	p.CRL = checkAllPositions(Behavior{Check: true})
	p.OCSP = checkAllPositions(Behavior{Check: true})
	p.CRL[PosInt1].RejectUnavailable = true
	p.OCSP[PosInt1].RejectUnavailable = true
	return p
}

// IE10 behaves like IE 7-9 but pops a user warning when the leaf's
// revocation information is unavailable.
func IE10() *Profile {
	p := IE7to9()
	p.Name, p.Browser = "IE 10", "IE 10"
	p.CRL[PosLeaf].WarnUnavailable = true
	p.OCSP[PosLeaf].WarnUnavailable = true
	return p
}

// IE11 behaves like IE 7-9 but correctly rejects when the leaf's
// revocation information is unavailable.
func IE11() *Profile {
	p := IE7to9()
	p.Name, p.Browser = "IE 11", "IE 11"
	p.CRL[PosLeaf].RejectUnavailable = true
	p.OCSP[PosLeaf].RejectUnavailable = true
	return p
}

// MobileSafari (iOS 6-8) performs no revocation checking at all and does
// not request staples.
func MobileSafari() *Profile {
	return &Profile{Name: "iOS 6-8", Browser: "Mobile Safari", OS: "iOS", Mobile: true}
}

// AndroidStock (the AOSP Browser on Android 4.1-5.1) performs no checks;
// it requests OCSP staples but ignores the responses — even a stapled
// revoked response is accepted.
func AndroidStock() *Profile {
	return &Profile{
		Name: "Android Stock", Browser: "Android Browser", OS: "Android", Mobile: true,
		RequestStaple: true, UseStaple: false,
	}
}

// AndroidChrome behaves like the stock browser: staples requested,
// responses ignored, nothing checked.
func AndroidChrome() *Profile {
	p := AndroidStock()
	p.Name, p.Browser = "Android Chrome", "Chrome (Android)"
	return p
}

// IEMobile8 (Windows Phone 8.0) performs no checks and does not request
// staples.
func IEMobile8() *Profile {
	return &Profile{Name: "IE Mobile 8.0", Browser: "IE Mobile", OS: "Windows Phone", Mobile: true}
}

// Hardened is the maximally safe client §2.3 argues for: every chain
// element checked over every available protocol, hard failure whenever
// revocation information is unavailable or unknown, CRL fallback, and
// full staple support. No shipping browser implements it.
func Hardened() *Profile {
	p := &Profile{
		Name: "Hardened", Browser: "Hardened reference", OS: "all",
		RejectUnknown:   true,
		FallbackToCRL:   true,
		TreatLeafAsInt1: true,
		RequestStaple:   true, UseStaple: true, RespectRevokedStaple: true,
	}
	all := Behavior{Check: true, RejectUnavailable: true}
	p.CRL = checkAllPositions(all)
	p.OCSP = checkAllPositions(all)
	return p
}

// All returns the Table 2 columns in paper order (desktop left to right,
// then mobile).
func All() []*Profile {
	return []*Profile{
		ChromeOSX(), ChromeWindows(), ChromeLinux(),
		Firefox40(),
		Opera12(), Opera31OSX(), Opera31WinLin(),
		Safari6to8(),
		IE7to9(), IE10(), IE11(),
		MobileSafari(), AndroidStock(), AndroidChrome(), IEMobile8(),
	}
}
