package browser

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/crl"
)

func testCRL(next time.Time) *crl.CRL {
	return &crl.CRL{
		ThisUpdate: next.Add(-7 * 24 * time.Hour),
		NextUpdate: next,
	}
}

func TestCacheShardRounding(t *testing.T) {
	cases := []struct{ want, shards int }{
		{DefaultCacheShards, 0}, {1, 1}, {4, 3}, {8, 8}, {64, 33},
	}
	for _, tc := range cases {
		c := NewCacheWithConfig(CacheConfig{Shards: tc.shards})
		if got := c.NumShards(); got != tc.want {
			t.Errorf("Shards=%d: NumShards = %d, want %d", tc.shards, got, tc.want)
		}
	}
}

func TestCacheExpiryIsMissNotDelete(t *testing.T) {
	c := NewCache()
	now := time.Date(2015, time.March, 1, 0, 0, 0, 0, time.UTC)
	c.PutCRL("http://crl.test/1.crl", testCRL(now.Add(time.Hour)))

	if _, ok := c.CRL("http://crl.test/1.crl", now); !ok {
		t.Fatal("live entry missed")
	}
	// Past expiry the entry is a miss but stays resident for the sweeper.
	late := now.Add(2 * time.Hour)
	if _, ok := c.CRL("http://crl.test/1.crl", late); ok {
		t.Fatal("expired entry served")
	}
	if crls, _ := c.Len(); crls != 1 {
		t.Errorf("read path deleted the expired entry: len = %d", crls)
	}
	st := c.Stats()
	if st.CRLHits != 1 || st.CRLMisses != 1 || st.Expired != 1 {
		t.Errorf("stats = %+v", st)
	}
	if got := c.Sweep(late); got != 1 {
		t.Errorf("Sweep removed %d entries, want 1", got)
	}
	if crls, _ := c.Len(); crls != 0 {
		t.Errorf("entries left after sweep: %d", crls)
	}
}

func TestCacheCapEvictsSoonestToExpire(t *testing.T) {
	// One shard so the cap applies to one deterministic population.
	c := NewCacheWithConfig(CacheConfig{Shards: 1, MaxEntries: 3})
	now := time.Date(2015, time.March, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 4; i++ {
		url := fmt.Sprintf("http://crl.test/%d.crl", i)
		c.PutCRL(url, testCRL(now.Add(time.Duration(i+1)*time.Hour)))
	}
	if crls, _ := c.Len(); crls != 3 {
		t.Fatalf("cap not enforced: len = %d", crls)
	}
	// The entry expiring first (index 0) must be the one evicted.
	if _, ok := c.CRL("http://crl.test/0.crl", now); ok {
		t.Error("soonest-to-expire entry survived eviction")
	}
	for i := 1; i < 4; i++ {
		if _, ok := c.CRL(fmt.Sprintf("http://crl.test/%d.crl", i), now); !ok {
			t.Errorf("entry %d wrongly evicted", i)
		}
	}
	if got := c.Stats().Evictions; got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
}

func TestDoCRLSingleflight(t *testing.T) {
	c := NewCache()
	now := time.Date(2015, time.March, 1, 0, 0, 0, 0, time.UTC)
	const clients = 32

	var fetches int32
	var mu sync.Mutex
	gate := make(chan struct{})
	fetch := func() (*crl.CRL, error) {
		mu.Lock()
		fetches++
		mu.Unlock()
		<-gate // hold the flight open until every client has arrived
		return testCRL(now.Add(time.Hour)), nil
	}

	var started, done sync.WaitGroup
	started.Add(clients)
	done.Add(clients)
	results := make([]CRLSource, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			started.Done()
			parsed, src, err := c.DoCRL("http://crl.test/big.crl", now, fetch)
			if err != nil || parsed == nil {
				t.Errorf("client %d: %v", i, err)
			}
			results[i] = src
			done.Done()
		}(i)
	}
	started.Wait()
	time.Sleep(10 * time.Millisecond) // let the stampede pile onto the flight
	close(gate)
	done.Wait()

	if fetches != 1 {
		t.Fatalf("%d clients caused %d fetches, want 1", clients, fetches)
	}
	var fetched int
	for _, src := range results {
		if src == SourceFetched {
			fetched++
		}
	}
	if fetched != 1 {
		t.Errorf("%d clients report SourceFetched, want exactly 1", fetched)
	}
	st := c.Stats()
	if st.CRLFetches != 1 {
		t.Errorf("CRLFetches = %d, want 1", st.CRLFetches)
	}
	if st.DedupeJoins+st.CRLHits != clients-1 {
		t.Errorf("joins(%d)+hits(%d) != %d", st.DedupeJoins, st.CRLHits, clients-1)
	}

	// A subsequent call is a plain cache hit, still one total fetch.
	if _, src, err := c.DoCRL("http://crl.test/big.crl", now, fetch); err != nil || src != SourceCached {
		t.Errorf("warm DoCRL = %v, %v", src, err)
	}
	if c.Stats().CRLFetches != 1 {
		t.Error("warm DoCRL refetched")
	}
}

func TestDoCRLErrorNotCached(t *testing.T) {
	c := NewCache()
	now := time.Date(2015, time.March, 1, 0, 0, 0, 0, time.UTC)
	boom := errors.New("down")
	calls := 0
	fetch := func() (*crl.CRL, error) { calls++; return nil, boom }
	if _, _, err := c.DoCRL("http://crl.test/x.crl", now, fetch); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Failures must not negative-cache: the next caller retries.
	if _, _, err := c.DoCRL("http://crl.test/x.crl", now, fetch); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 2 {
		t.Errorf("fetch ran %d times, want 2 (no negative caching)", calls)
	}
}

func TestNilStoreDoCRL(t *testing.T) {
	var c *Cache
	now := time.Now()
	parsed, src, err := c.DoCRL("http://crl.test/x.crl", now, func() (*crl.CRL, error) {
		return testCRL(now.Add(time.Hour)), nil
	})
	if err != nil || parsed == nil || src != SourceFetched {
		t.Errorf("nil cache DoCRL = %v, %v, %v", parsed, src, err)
	}
}
