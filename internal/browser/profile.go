// Package browser models client-side revocation checking: a Profile
// describes what one browser/OS combination checks (which chain positions,
// which protocols, EV-only special cases, soft- vs hard-failure on
// unavailable revocation data, OCSP-staple handling), and Client executes
// a profile against a presented chain by performing real CRL downloads and
// OCSP queries.
//
// The profiles in profiles.go encode the paper's Table 2 column by column;
// the test suite in internal/testsuite measures them end-to-end, so a
// mis-encoded profile shows up as a cell mismatch rather than silently
// propagating.
//
// Position convention: the chain is leaf-first, so Int1 is the first
// intermediate in the presented chain (the leaf's issuer), matching the
// paper's "first intermediate in the chain" phrasing; deeper intermediates
// are Int2+.
package browser

// Position classifies where a certificate sits in the presented chain.
type Position int

// Positions.
const (
	PosLeaf Position = iota
	PosInt1
	PosIntDeep
)

func (p Position) String() string {
	switch p {
	case PosLeaf:
		return "leaf"
	case PosInt1:
		return "int1"
	case PosIntDeep:
		return "int2+"
	default:
		return "?"
	}
}

// Behavior is one browser's policy for one (protocol, position) cell.
type Behavior struct {
	// Check: the browser fetches revocation status here.
	Check bool
	// OnlyIfSoleProtocol restricts Check to certificates that carry only
	// this protocol's pointer (Chrome on Windows checks non-EV CRLs only
	// when no OCSP responder is listed).
	OnlyIfSoleProtocol bool
	// RejectUnavailable hard-fails the connection when the revocation
	// status cannot be obtained. Soft-failing browsers leave this false
	// and accept — the behaviour §2.3 criticizes.
	RejectUnavailable bool
	// WarnUnavailable surfaces a user warning instead of hard-failing
	// (IE 10's leaf behaviour).
	WarnUnavailable bool
}

// Profile is one browser/OS column of Table 2.
type Profile struct {
	// Name is the display name ("Chrome 44 (Windows)").
	Name string
	// Browser and OS identify the software.
	Browser string
	OS      string
	// Mobile marks the mobile columns.
	Mobile bool

	// CRL and OCSP give the per-position behaviour (indexed by
	// Position) for non-EV leaves.
	CRL  [3]Behavior
	OCSP [3]Behavior

	// EV, when non-nil, replaces the CRL/OCSP tables when the leaf is an
	// EV certificate (Chrome and Firefox behave differently for EV).
	EV *EVBehavior

	// RejectUnknown rejects the chain on an OCSP response with status
	// unknown; browsers that leave it false incorrectly treat unknown
	// as trusted.
	RejectUnknown bool

	// FallbackToCRL tries the CRL when an OCSP responder is unavailable
	// and the certificate also lists a distribution point.
	FallbackToCRL bool

	// RequestStaple sends the TLS status_request extension; UseStaple
	// consults a received staple (Android browsers request staples and
	// then ignore them). RespectRevokedStaple rejects on a stapled
	// revoked response; Chrome on OS X instead ignores it and queries
	// the responder directly.
	RequestStaple        bool
	UseStaple            bool
	RespectRevokedStaple bool

	// MultiStaple enables the Multiple Certificate Status Request
	// extension (RFC 6961), which §9 identifies as the missing piece:
	// plain stapling covers only the leaf, so intermediate checks still
	// cost a fetch. No browser in the study supported it.
	MultiStaple bool

	// TreatLeafAsInt1 applies Int1's unavailability behaviour to the
	// leaf when the chain has no intermediates ("...or the leaf
	// certificate if no intermediates exist", §6.3).
	TreatLeafAsInt1 bool
}

// EVBehavior is the substitute policy applied when the leaf is EV.
type EVBehavior struct {
	CRL           [3]Behavior
	OCSP          [3]Behavior
	FallbackToCRL bool
}

// behaviors returns the applicable tables given the leaf's EV status.
func (p *Profile) behaviors(leafEV bool) (crlTab, ocspTab [3]Behavior, fallback bool) {
	if leafEV && p.EV != nil {
		return p.EV.CRL, p.EV.OCSP, p.EV.FallbackToCRL
	}
	return p.CRL, p.OCSP, p.FallbackToCRL
}

// ChecksAnything reports whether the profile ever fetches revocation
// information for a non-EV chain — the headline finding for mobile
// browsers is that none do (§6.4).
func (p *Profile) ChecksAnything() bool {
	for i := 0; i < 3; i++ {
		if p.CRL[i].Check || p.OCSP[i].Check {
			return true
		}
	}
	return false
}
