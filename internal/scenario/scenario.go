// Package scenario is the unified scenario engine: it composes a
// simulated world (PKI, serving stack, client fleet), an optional fault
// schedule, and the simnet fabric into named, seed-replayable phases,
// measuring every phase through the hist package and reporting tail
// latencies (p50/p90/p99/p999/max) per phase.
//
// # Phase model
//
// A scenario is a sequence of named phases executed in order. Each phase
// runs a closure against the engine's attached world and is bracketed by
// the engine: wall time, virtual clock advance, and the simnet fabric's
// per-request service-time histogram are snapshotted before and after,
// so every PhaseResult carries exactly the traffic and time that phase
// caused. Phases record two kinds of latency:
//
//   - Wall latency (Phase.Record / Phase.Sharded): real time.Now
//     durations around operations. Non-deterministic; reported and
//     SLO-gated, never part of determinism digests.
//   - Virtual service time (the Net histogram): CostModel-derived
//     durations simnet charges each request. A pure function of the byte
//     stream, so phases whose request multiset is scheduling-independent
//     may mark it deterministic (Phase.NetDeterministic) and fold its
//     digest into the scenario digest.
//
// The scenario digest (Report.Digest) covers phase names, op counts,
// phase digests, virtual clock advances, and — for phases marked net-
// deterministic — the request-stream fingerprint and request count.
// Response bytes (and anything derived from them: sizes, modelled
// service times) are deliberately excluded: ECDSA signatures are
// randomized, so artifact sizes differ run to run even under a fixed
// seed. Two runs of the same scenario and seed must produce equal
// digests regardless of worker count; the heartbleed preset's tests
// enforce exactly that.
package scenario

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"net/http"
	"time"

	"repro/internal/hist"
	"repro/internal/simnet"
	"repro/internal/simtime"
)

// Engine runs phases against an attached world. Create with New, attach
// the world's fabric and clock, then call Phase for each step.
type Engine struct {
	name string
	seed int64

	// Net is the simnet fabric the scenario's serving stack is
	// registered on (nil for pure-compute scenarios).
	Net *simnet.Network
	// Clock is the scenario's virtual clock (nil for wall-only
	// scenarios).
	Clock *simtime.Clock

	phases []*PhaseResult
	tcp    *TCP
}

// New returns an engine for one named scenario run.
func New(name string, seed int64) *Engine {
	return &Engine{name: name, seed: seed}
}

// Attach wires the world's fabric and virtual clock into the engine.
// Either may be nil.
func (e *Engine) Attach(net *simnet.Network, clock *simtime.Clock) {
	e.Net = net
	e.Clock = clock
}

// Client returns the HTTP client scenario traffic should use: the real-
// TCP client when ExposeTCP is active, otherwise the simnet fabric
// client, otherwise nil.
func (e *Engine) Client() *http.Client {
	if e.tcp != nil {
		return e.tcp.Client()
	}
	if e.Net != nil {
		return e.Net.Client()
	}
	return nil
}

// Phase is the handle a phase closure records into.
type Phase struct {
	name   string
	serial hist.Recorder
	shards []*hist.Sharded
	ops    int64

	digest    uint64
	hasDigest bool
	netDet    bool
}

// Record adds one wall-clock operation latency. It is single-writer:
// only the phase closure's own goroutine may call it. Concurrent
// sections use Sharded.
func (p *Phase) Record(d time.Duration) { p.serial.Record(d) }

// Sharded returns a fresh n-shard wall-latency histogram owned by this
// phase (merged into the phase result at phase end). Hand Shard(i) to
// worker i; the record path stays single-writer and allocation-free.
func (p *Phase) Sharded(n int) *hist.Sharded {
	sh := hist.NewSharded(n)
	p.shards = append(p.shards, sh)
	return sh
}

// AddOps adds to the phase's operation count (verdicts, requests,
// revocations — whatever the phase's unit of work is).
func (p *Phase) AddOps(n int) { p.ops += int64(n) }

// MixDigest folds a deterministic 64-bit fingerprint into the phase
// digest. Only fold values that are invariant across worker counts.
func (p *Phase) MixDigest(d uint64) {
	h := fnv.New64a()
	var w [16]byte
	binary.LittleEndian.PutUint64(w[:8], p.digest)
	binary.LittleEndian.PutUint64(w[8:], d)
	h.Write(w[:])
	p.digest = h.Sum64()
	p.hasDigest = true
}

// NetDeterministic declares that this phase's network request multiset
// is scheduling-independent (serial traffic, or traffic collapsed by a
// singleflight), so its virtual service-time digest and traffic
// counters join the scenario digest.
func (p *Phase) NetDeterministic() { p.netDet = true }

// PhaseResult is one executed phase's measurements.
type PhaseResult struct {
	Name string `json:"name"`
	// Ops is the phase's operation count (as reported via AddOps).
	Ops int64 `json:"ops"`
	// ElapsedMS is the phase's wall-clock duration.
	ElapsedMS float64 `json:"elapsed_ms"`
	// VirtualMS is how far the phase advanced the virtual clock.
	VirtualMS float64 `json:"virtual_ms"`
	// Digest fingerprints the phase's deterministic outcome (empty when
	// the phase mixed nothing in).
	Digest string `json:"digest,omitempty"`
	// Wall summarizes per-operation wall latency (Record/Sharded).
	Wall hist.Summary `json:"wall"`
	// Net summarizes per-request service time attributed to this phase:
	// CostModel virtual time under simnet, real wall time over TCP.
	Net hist.Summary `json:"net"`
	// NetDigest fingerprints the phase's request stream (method, host,
	// status, CDN disposition — never response bytes); set only for
	// phases marked NetDeterministic.
	NetDigest string `json:"net_digest,omitempty"`
	// NetRequests / NetBytes are the fabric traffic the phase caused.
	NetRequests int64 `json:"net_requests"`
	NetBytes    int64 `json:"net_bytes"`
	// NetVirtualMS is the summed modelled service time of the phase's
	// requests.
	NetVirtualMS float64 `json:"net_virtual_ms"`

	// WallHist and NetHist are the full histograms behind the
	// summaries, for callers that need more than the fixed quantiles.
	WallHist *hist.Snapshot `json:"-"`
	NetHist  *hist.Snapshot `json:"-"`

	digest    uint64
	netDigest uint64
	hasDigest bool
	netDet    bool
	virtualNS int64
}

// DigestValue returns the raw phase digest (0 when unset).
func (r *PhaseResult) DigestValue() uint64 { return r.digest }

// Phase runs fn as the named phase, bracketing it with wall, virtual,
// and fabric measurements. The error from fn aborts the scenario run
// (the partial result is still appended, so reports show where it
// died).
func (e *Engine) Phase(name string, fn func(p *Phase) error) (*PhaseResult, error) {
	p := &Phase{name: name}

	var netBefore simnet.Stats
	var latBefore *hist.Snapshot
	var streamBefore uint64
	if e.Net != nil {
		netBefore = e.Net.TotalStats()
		latBefore = e.Net.LatencySnapshot()
		streamBefore = e.Net.StreamDigest()
	}
	var tcpBefore *hist.Snapshot
	if e.tcp != nil {
		tcpBefore = e.tcp.snapshot()
	}
	var virtBefore time.Time
	if e.Clock != nil {
		virtBefore = e.Clock.Now()
	}

	start := time.Now()
	ferr := fn(p)
	elapsed := time.Since(start)

	res := &PhaseResult{
		Name:      name,
		Ops:       p.ops,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
		digest:    p.digest,
		hasDigest: p.hasDigest,
		netDet:    p.netDet,
	}
	if p.hasDigest {
		res.Digest = fmt.Sprintf("%016x", p.digest)
	}
	if e.Clock != nil {
		res.virtualNS = int64(e.Clock.Now().Sub(virtBefore))
		res.VirtualMS = float64(res.virtualNS) / float64(time.Millisecond)
	}

	wall := p.serial.Snapshot()
	for _, sh := range p.shards {
		wall.Add(sh.Snapshot())
	}
	res.WallHist = wall
	res.Wall = wall.Summary()

	switch {
	case e.tcp != nil:
		// Over real TCP the per-request service time is wall time,
		// recorded by the TCP transport. Never deterministic.
		net := e.tcp.snapshot().Sub(tcpBefore)
		res.NetHist = net
		res.Net = net.Summary()
		res.NetRequests = int64(net.Count)
		res.NetVirtualMS = 0
		res.netDet = false
	case e.Net != nil:
		netAfter := e.Net.TotalStats()
		net := e.Net.LatencySnapshot().Sub(latBefore)
		res.NetHist = net
		res.Net = net.Summary()
		res.NetRequests = int64(netAfter.Requests - netBefore.Requests)
		res.NetBytes = netAfter.BytesReceived - netBefore.BytesReceived
		res.NetVirtualMS = float64(netAfter.ModelledTime-netBefore.ModelledTime) / float64(time.Millisecond)
		if res.netDet {
			res.netDigest = e.Net.StreamDigest() - streamBefore
			res.NetDigest = fmt.Sprintf("%016x", res.netDigest)
		}
	}

	e.phases = append(e.phases, res)
	if ferr != nil {
		return res, fmt.Errorf("scenario %s: phase %s: %w", e.name, name, ferr)
	}
	return res, nil
}

// Report assembles the scenario's results so far.
func (e *Engine) Report() *Report {
	return &Report{Scenario: e.name, Seed: e.seed, Phases: e.phases}
}

// Report is the JSON-serializable scenario outcome.
type Report struct {
	Scenario string         `json:"scenario"`
	Seed     int64          `json:"seed"`
	Phases   []*PhaseResult `json:"phases"`
}

// Phase returns the named phase result, or nil.
func (r *Report) Phase(name string) *PhaseResult {
	for _, p := range r.Phases {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Digest fingerprints the scenario's deterministic outcome: phase
// names, op counts, phase digests, virtual clock advances, and — for
// net-deterministic phases — request counts and request-stream
// fingerprints. Wall-clock measurements and response bytes never
// participate, so the digest is stable across hosts, runs, and worker
// counts.
func (r *Report) Digest() uint64 {
	h := fnv.New64a()
	var w [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		h.Write(w[:])
	}
	for _, p := range r.Phases {
		h.Write([]byte(p.Name))
		put(uint64(p.Ops))
		put(uint64(p.virtualNS))
		if p.hasDigest {
			put(p.digest)
		}
		if p.netDet {
			put(p.netDigest)
			put(uint64(p.NetRequests))
		}
	}
	return h.Sum64()
}
