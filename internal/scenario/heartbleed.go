package scenario

import (
	"fmt"
	"time"

	"repro/internal/browser"
	"repro/internal/crl"
	"repro/internal/faultnet"
	"repro/internal/fleet"
	"repro/internal/simnet"
)

// HeartbleedConfig sizes the Heartbleed mass-revocation scenario: a
// client fleet against a CDN-fronted CA serving stack, hit by a mass
// revocation of its popular head, a responder brownout, and a
// convergence watch (§5.3's Heartbleed surge and §2.2's caching
// windows, end to end). The zero value of any field selects the noted
// default; the "heartbleed-1m" preset in cmd/scenario sets Clients to
// one million.
type HeartbleedConfig struct {
	// Clients is the simulated browser population (default 2048).
	Clients int
	// Certs is the leaf population (default 512).
	Certs int
	// EvalsPerClient is chain evaluations per browser per fleet phase
	// (default 4).
	EvalsPerClient int
	// Workers is the fleet worker count (default 1; the scenario digest
	// is identical for any value).
	Workers int
	// StormFraction of the population is revoked in the mass-revocation
	// phase, taken from the popular head (default 0.25 — Heartbleed saw
	// CAs revoke at ~40x their baseline rate overnight).
	StormFraction float64
	// BrownoutAvailability is responder availability during the
	// brownout phase (default 0.8).
	BrownoutAvailability float64
	// BrownoutChecks is how many serial revocation checks the brownout
	// phase performs (default 1536); its p999 is the brownout SLO.
	BrownoutChecks int
	// StampedeClients sizes the cold-cache singleflight stampede
	// (default 256).
	StampedeClients int
	// OriginRTT is the CDN edge-to-origin penalty charged to cache
	// misses (default 50ms), making hit/miss latencies separable.
	OriginRTT time.Duration
	// ConvergenceStep is the virtual-time stride of the convergence
	// watch (default 4h).
	ConvergenceStep time.Duration
	// ConvergenceLimit aborts the watch if stale-Good verdicts persist
	// this long after the storm (default 10 days).
	ConvergenceLimit time.Duration
	// Seed drives the world and the fault schedule (default 1).
	Seed int64
}

func (c *HeartbleedConfig) fillDefaults() {
	if c.Clients <= 0 {
		c.Clients = 2048
	}
	if c.Certs <= 0 {
		c.Certs = 512
	}
	if c.EvalsPerClient <= 0 {
		c.EvalsPerClient = 4
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.StormFraction <= 0 || c.StormFraction > 1 {
		c.StormFraction = 0.25
	}
	if c.BrownoutAvailability <= 0 || c.BrownoutAvailability >= 1 {
		c.BrownoutAvailability = 0.8
	}
	if c.BrownoutChecks <= 0 {
		c.BrownoutChecks = 1536
	}
	if c.StampedeClients <= 0 {
		c.StampedeClients = 256
	}
	if c.OriginRTT == 0 {
		c.OriginRTT = 50 * time.Millisecond
	}
	if c.ConvergenceStep <= 0 {
		c.ConvergenceStep = 4 * time.Hour
	}
	if c.ConvergenceLimit <= 0 {
		c.ConvergenceLimit = 240 * time.Hour
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// HeartbleedResult is the scenario outcome: the per-phase report plus
// the scenario-level quantities the SLO gates read.
type HeartbleedResult struct {
	Config HeartbleedConfig `json:"config"`
	Report *Report          `json:"report"`

	// StormRevocations is how many popular certificates the storm
	// revoked.
	StormRevocations int `json:"storm_revocations"`
	// StaleWindowGood counts revoked certificates still accepted
	// immediately after the storm on cached Good responses — the
	// vulnerability window the paper measures. Expected to equal
	// StormRevocations: every client cache is still warm.
	StaleWindowGood int `json:"stale_window_good"`
	// BrownoutRejects counts hard-fail rejections during the brownout.
	BrownoutRejects int `json:"brownout_rejects"`
	// ConvergenceSteps is how many watch strides ran until zero
	// stale-Good.
	ConvergenceSteps int `json:"convergence_steps"`
	// ConvergenceVirtualHours is the virtual time from the storm to the
	// first sweep with zero stale-Good verdicts — bounded by the
	// longest response validity a client cached before the storm.
	ConvergenceVirtualHours float64 `json:"convergence_virtual_hours"`
	// StaleGoodFinal is the stale-Good count at the end of the watch
	// (the zero-stale-Good SLO).
	StaleGoodFinal int `json:"stale_good_final"`

	// Stampede is the cold-cache singleflight collapse measurement.
	Stampede struct {
		Clients int   `json:"clients"`
		Fetches int64 `json:"crl_fetches"`
		Joins   int64 `json:"dedupe_joins"`
		Hits    int64 `json:"cache_hits"`
	} `json:"stampede"`

	// Digest is the scenario digest (worker-count invariant).
	Digest string `json:"digest"`
}

// Heartbleed runs the scenario and returns its result. The same config
// and seed produce an identical Digest for any Workers value.
func Heartbleed(cfg HeartbleedConfig) (*HeartbleedResult, error) {
	cfg.fillDefaults()
	w, err := fleet.New(fleet.Config{
		Browsers:        cfg.Clients,
		Certs:           cfg.Certs,
		EvalsPerBrowser: cfg.EvalsPerClient,
		Seed:            cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	// CDN-front the serving stack: each host gets its own edge cache in
	// front of a fresh CA handler (CRL cache + caching OCSP responder),
	// and cache misses pay the edge-to-origin round trip.
	w.Net.Cost.OriginRTT = cfg.OriginRTT
	w.Net.Register("crl.fleet.test", simnet.NewCDN(w.CA.Handler(), w.Clock.Now))
	w.Net.Register("ocsp.fleet.test", simnet.NewCDN(w.CA.Handler(), w.Clock.Now))

	eng := New("heartbleed", cfg.Seed)
	eng.Attach(w.Net, w.Clock)

	res := &HeartbleedResult{Config: cfg}
	cache := browser.NewCache()

	runFleet := func(p *Phase) error {
		r, err := w.Run(fleet.RunOptions{
			Workers: cfg.Workers,
			Store:   cache,
			Latency: p.Sharded(cfg.Workers),
		})
		if err != nil {
			return err
		}
		p.AddOps(r.Verdicts)
		p.MixDigest(r.Digest)
		return nil
	}

	// Phase 1-2: the fleet browses before the event, cold then warm.
	// The cold request multiset is scheduling-dependent (OCSP misses on
	// the same certificate are not collapsed), so only the warm phase —
	// zero requests — is net-deterministic.
	if _, err := eng.Phase("baseline-cold", runFleet); err != nil {
		return nil, err
	}
	if _, err := eng.Phase("baseline-warm", func(p *Phase) error {
		p.NetDeterministic()
		return runFleet(p)
	}); err != nil {
		return nil, err
	}

	// Phase 3: the Heartbleed-morning stampede — N cold clients, one
	// CRL, collapsed by the singleflight to one fetch.
	if _, err := eng.Phase("stampede", func(p *Phase) error {
		p.NetDeterministic()
		st, err := w.Stampede(cfg.StampedeClients)
		if err != nil {
			return err
		}
		res.Stampede.Clients = st.Clients
		res.Stampede.Fetches = st.Fetches
		res.Stampede.Joins = st.Joins
		res.Stampede.Hits = st.Hits
		p.AddOps(st.Clients)
		// Joins-vs-hits split is scheduling-dependent; the fetch count
		// and the joined+hit total are not.
		p.MixDigest(uint64(st.Fetches))
		p.MixDigest(uint64(st.Joins + st.Hits))
		return nil
	}); err != nil {
		return nil, err
	}

	// Phase 4: the storm — mass-revoke the popular head at one virtual
	// instant, timing each revocation.
	stormAt := w.Clock.Now()
	stormN := int(cfg.StormFraction * float64(cfg.Certs))
	var storm []int
	if _, err := eng.Phase("heartbleed-storm", func(p *Phase) error {
		p.NetDeterministic()
		for i := 0; i < cfg.Certs && len(storm) < stormN; i++ {
			if w.Revoked[i] {
				continue
			}
			t0 := time.Now()
			if err := w.CA.Revoke(w.Records[i].Serial, stormAt, crl.ReasonKeyCompromise); err != nil {
				return err
			}
			p.Record(time.Since(t0))
			storm = append(storm, i)
			p.MixDigest(uint64(i))
		}
		p.AddOps(len(storm))
		return nil
	}); err != nil {
		return nil, err
	}
	res.StormRevocations = len(storm)

	serialClient := func(httpClient ...*faultnet.Injector) *browser.Client {
		c := &browser.Client{
			Profile: browser.Hardened(),
			HTTP:    eng.Client(),
			Now:     w.Clock.Now,
			Cache:   cache,
		}
		if len(httpClient) > 0 {
			c.HTTP = httpClient[0].Client()
		}
		return c
	}

	// sweep serially evaluates every stormed chain and returns how many
	// are still accepted on a stale cached Good.
	sweep := func(p *Phase, client *browser.Client) (int, error) {
		stale := 0
		for _, i := range storm {
			t0 := time.Now()
			v, err := client.Evaluate(w.Chains[i], nil)
			if err != nil {
				return 0, err
			}
			p.Record(time.Since(t0))
			p.AddOps(1)
			if !v.RevocationDetected && v.Outcome == browser.OutcomeAccept {
				stale++
			}
		}
		return stale, nil
	}

	// Phase 5: the stale window — immediately after the storm every
	// client cache still holds valid Good responses, so every revoked
	// chain is still accepted. This is the exposure the paper's
	// end-to-end argument is about.
	if _, err := eng.Phase("stale-window", func(p *Phase) error {
		p.NetDeterministic()
		stale, err := sweep(p, serialClient())
		if err != nil {
			return err
		}
		res.StaleWindowGood = stale
		p.MixDigest(uint64(stale))
		return nil
	}); err != nil {
		return nil, err
	}

	// Phase 6: brownout — a day later the CRL caches have expired and
	// the responders are flapping at reduced availability. Serial
	// uncached checks measure what a hard-fail client pays at the tail
	// (the p999 SLO) and how often it must reject. Serial execution
	// keeps faultnet's per-URL attempt numbering, and therefore the
	// phase digest, scheduling-independent.
	w.Clock.Advance(25 * time.Hour)
	inj := faultnet.New(w.Net, faultnet.Config{
		Seed:         uint64(cfg.Seed),
		Availability: cfg.BrownoutAvailability,
		OutagePeriod: time.Hour,
		Hosts:        []string{"crl.fleet.test", "ocsp.fleet.test"},
		Now:          w.Clock.Now,
	})
	var crlOnly []int
	for i, chain := range w.Chains {
		if len(chain[0].OCSPServers) == 0 {
			crlOnly = append(crlOnly, i)
		}
	}
	if _, err := eng.Phase("brownout", func(p *Phase) error {
		p.NetDeterministic()
		client := serialClient(inj)
		client.Cache = nil // every check refetches through the faults
		var accepts, rejects, detected int
		for n := 0; n < cfg.BrownoutChecks; n++ {
			chain := w.Chains[crlOnly[n%len(crlOnly)]]
			t0 := time.Now()
			v, err := client.Evaluate(chain, nil)
			if err != nil {
				return err
			}
			p.Record(time.Since(t0))
			p.AddOps(1)
			switch v.Outcome {
			case browser.OutcomeAccept:
				accepts++
			case browser.OutcomeReject:
				rejects++
			}
			if v.RevocationDetected {
				detected++
			}
			w.Clock.Advance(30 * time.Second)
		}
		res.BrownoutRejects = rejects
		p.MixDigest(uint64(accepts))
		p.MixDigest(uint64(rejects))
		p.MixDigest(uint64(detected))
		return nil
	}); err != nil {
		return nil, err
	}

	// Phase 7: convergence — responders healthy again, the watch steps
	// virtual time until no revoked chain is accepted anywhere in the
	// fleet's shared cache. The stopping time is bounded by the longest
	// response validity cached before the storm (OCSP: 96h), which is
	// the end-to-end revocation propagation bound.
	if _, err := eng.Phase("convergence", func(p *Phase) error {
		p.NetDeterministic()
		client := serialClient()
		steps := 0
		for {
			stale, err := sweep(p, client)
			if err != nil {
				return err
			}
			p.MixDigest(uint64(stale))
			res.StaleGoodFinal = stale
			if stale == 0 {
				break
			}
			if w.Clock.Now().Sub(stormAt) > cfg.ConvergenceLimit {
				return fmt.Errorf("no convergence after %v: %d stale-Good verdicts remain",
					cfg.ConvergenceLimit, stale)
			}
			w.Clock.Advance(cfg.ConvergenceStep)
			steps++
		}
		res.ConvergenceSteps = steps
		res.ConvergenceVirtualHours = w.Clock.Now().Sub(stormAt).Hours()
		return nil
	}); err != nil {
		return nil, err
	}

	res.Report = eng.Report()
	res.Digest = fmt.Sprintf("%016x", res.Report.Digest())
	return res, nil
}
