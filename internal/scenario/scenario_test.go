package scenario

import (
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/simtime"
)

func testEngine() (*Engine, *simnet.Network, *simtime.Clock) {
	net := simnet.New()
	clock := simtime.NewClock(simtime.Date(2015, time.March, 1))
	eng := New("test", 7)
	eng.Attach(net, clock)
	return eng, net, clock
}

func TestPhaseBracketsFabricTraffic(t *testing.T) {
	eng, net, clock := testEngine()
	net.Cost = simnet.CostModel{RTT: 10 * time.Millisecond, Bandwidth: 1e6}
	net.Register("a.test", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(make([]byte, 1000))
	}))
	client := eng.Client()

	fetch := func(n int) error {
		for i := 0; i < n; i++ {
			resp, err := client.Get("http://a.test/x")
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return nil
	}

	p1, err := eng.Phase("first", func(p *Phase) error {
		p.NetDeterministic()
		p.AddOps(3)
		return fetch(3)
	})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := eng.Phase("second", func(p *Phase) error {
		p.NetDeterministic()
		p.AddOps(2)
		clock.Advance(time.Hour)
		return fetch(2)
	})
	if err != nil {
		t.Fatal(err)
	}

	if p1.NetRequests != 3 || p2.NetRequests != 2 {
		t.Errorf("net requests = %d/%d, want 3/2", p1.NetRequests, p2.NetRequests)
	}
	if p1.Net.Count != 3 || p2.Net.Count != 2 {
		t.Errorf("net histogram counts = %d/%d, want 3/2", p1.Net.Count, p2.Net.Count)
	}
	// 10ms RTT + 1000B at 1MB/s = 11ms per request, exactly.
	if want := int64(11 * time.Millisecond); p1.Net.MaxNs != want {
		t.Errorf("p1 virtual max = %v, want %v", time.Duration(p1.Net.MaxNs), 11*time.Millisecond)
	}
	if p1.VirtualMS != 0 {
		t.Errorf("p1 advanced virtual clock: %v ms", p1.VirtualMS)
	}
	if want := float64(time.Hour/time.Millisecond) * 1.0; p2.VirtualMS != want {
		t.Errorf("p2 virtual advance = %v ms, want %v", p2.VirtualMS, want)
	}
	if p1.NetDigest == "" || p2.NetDigest == "" || p1.NetDigest == p2.NetDigest {
		t.Errorf("net digests = %q / %q, want distinct non-empty", p1.NetDigest, p2.NetDigest)
	}
}

func TestPhaseWallMergesSerialAndSharded(t *testing.T) {
	eng, _, _ := testEngine()
	res, err := eng.Phase("mixed", func(p *Phase) error {
		p.Record(5 * time.Millisecond)
		sh := p.Sharded(4)
		for i := 0; i < 8; i++ {
			sh.Shard(i).Record(time.Duration(i+1) * time.Millisecond)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Wall.Count != 9 {
		t.Errorf("wall count = %d, want 9 (1 serial + 8 sharded)", res.Wall.Count)
	}
	if res.Wall.MaxNs != int64(8*time.Millisecond) {
		t.Errorf("wall max = %v", time.Duration(res.Wall.MaxNs))
	}
}

func TestPhaseErrorKeepsPartialResult(t *testing.T) {
	eng, _, _ := testEngine()
	boom := fmt.Errorf("boom")
	res, err := eng.Phase("fails", func(p *Phase) error {
		p.AddOps(1)
		return boom
	})
	if err == nil {
		t.Fatal("phase error swallowed")
	}
	if res == nil || res.Ops != 1 {
		t.Fatalf("partial result not kept: %+v", res)
	}
	if got := eng.Report().Phase("fails"); got == nil {
		t.Error("failed phase missing from report")
	}
}

func TestReportDigestIgnoresWallTime(t *testing.T) {
	run := func(sleep time.Duration) uint64 {
		eng, net, _ := testEngine()
		net.Register("b.test", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("ok"))
		}))
		_, err := eng.Phase("p", func(p *Phase) error {
			p.NetDeterministic()
			p.MixDigest(42)
			p.AddOps(1)
			if sleep > 0 {
				time.Sleep(sleep)
			}
			p.Record(sleep)
			resp, err := eng.Client().Get("http://b.test/")
			if err != nil {
				return err
			}
			resp.Body.Close()
			return nil
		})
		if err != nil {
			panic(err)
		}
		return eng.Report().Digest()
	}
	if a, b := run(0), run(3*time.Millisecond); a != b {
		t.Errorf("report digest depends on wall time: %016x vs %016x", a, b)
	}
}

// quickHeartbleed is the scaled-down config the determinism and race
// tests run; small enough for -race, large enough that every phase does
// real work.
func quickHeartbleed(workers int) HeartbleedConfig {
	return HeartbleedConfig{
		Clients:         192,
		Certs:           96,
		EvalsPerClient:  4,
		Workers:         workers,
		BrownoutChecks:  64,
		StampedeClients: 32,
		Seed:            3,
	}
}

// TestHeartbleedDeterminism is the tentpole invariant: the same seed
// must produce identical phase digests, fleet tallies, and virtual
// service-time histogram bucket counts whether the fleet runs on one
// worker or many.
func TestHeartbleedDeterminism(t *testing.T) {
	base, err := Heartbleed(quickHeartbleed(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := Heartbleed(quickHeartbleed(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Digest != base.Digest {
			t.Errorf("workers=%d: scenario digest %s != %s", workers, got.Digest, base.Digest)
		}
		for _, name := range []string{"baseline-cold", "baseline-warm", "heartbleed-storm",
			"stale-window", "brownout", "convergence"} {
			a, b := base.Report.Phase(name), got.Report.Phase(name)
			if a == nil || b == nil {
				t.Fatalf("phase %s missing", name)
			}
			if a.Digest != b.Digest {
				t.Errorf("workers=%d: phase %s digest %s != %s", workers, name, b.Digest, a.Digest)
			}
			if a.Ops != b.Ops {
				t.Errorf("workers=%d: phase %s ops %d != %d", workers, name, b.Ops, a.Ops)
			}
			if a.NetDigest != b.NetDigest {
				t.Errorf("workers=%d: phase %s net digest %s != %s", workers, name, b.NetDigest, a.NetDigest)
			}
		}
		if got.StaleWindowGood != base.StaleWindowGood ||
			got.ConvergenceVirtualHours != base.ConvergenceVirtualHours ||
			got.BrownoutRejects != base.BrownoutRejects {
			t.Errorf("workers=%d: scenario quantities diverged: %+v vs %+v", workers, got, base)
		}
	}
}

// TestHeartbleedShape checks the scenario tells the paper's story: a
// full stale window right after the storm, hard-fail rejections under
// brownout, convergence bounded by the 96h OCSP validity, and zero
// stale-Good at the end.
func TestHeartbleedShape(t *testing.T) {
	res, err := Heartbleed(quickHeartbleed(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.StormRevocations == 0 {
		t.Fatal("storm revoked nothing")
	}
	if res.StaleWindowGood == 0 {
		t.Error("no stale window: revoked chains should still be accepted on cached Good")
	}
	if res.StaleGoodFinal != 0 {
		t.Errorf("stale-Good after convergence = %d, want 0", res.StaleGoodFinal)
	}
	// Convergence is bounded by the longest validity cached before the
	// storm: OCSP responses carry 96h. The watch must finish after that
	// expiry, within one step of slack past it.
	if res.ConvergenceVirtualHours < 90 || res.ConvergenceVirtualHours > 120 {
		t.Errorf("convergence at %.1f virtual hours, want within (90, 120]", res.ConvergenceVirtualHours)
	}
	if res.Stampede.Fetches != 1 {
		t.Errorf("stampede fetches = %d, want singleflight collapse to 1", res.Stampede.Fetches)
	}
	warm := res.Report.Phase("baseline-warm")
	if warm.NetRequests != 0 {
		t.Errorf("warm fleet made %d network requests, want 0", warm.NetRequests)
	}
	if warm.Wall.Count == 0 || warm.Wall.P99Ns == 0 {
		t.Errorf("warm wall histogram empty: %+v", warm.Wall)
	}
	brown := res.Report.Phase("brownout")
	if brown.Wall.P999Ns == 0 {
		t.Errorf("brownout p999 missing: %+v", brown.Wall)
	}
	if res.BrownoutRejects == 0 {
		t.Error("brownout at 80% availability rejected nothing")
	}
	cold := res.Report.Phase("baseline-cold")
	if cold.NetRequests == 0 || cold.Net.Count == 0 {
		t.Error("cold fleet traffic not attributed to its phase")
	}
}

func TestExposeTCP(t *testing.T) {
	eng, net, _ := testEngine()
	net.Register("crl.tcp.test", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("der-bytes"))
	}))
	tcp, err := eng.ExposeTCP("crl.tcp.test")
	if err != nil {
		t.Skipf("cannot listen on localhost: %v", err)
	}
	defer eng.Close()

	res, err := eng.Phase("over-tcp", func(p *Phase) error {
		for i := 0; i < 3; i++ {
			resp, err := eng.Client().Get("http://crl.tcp.test/shard.crl")
			if err != nil {
				return err
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if string(body) != "der-bytes" {
				return fmt.Errorf("body = %q over TCP", body)
			}
			p.AddOps(1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Net.Count != 3 {
		t.Errorf("TCP request latency count = %d, want 3", res.Net.Count)
	}
	if res.Net.MaxNs <= 0 {
		t.Error("TCP wall latency not recorded")
	}
	if res.NetDigest != "" {
		t.Error("TCP phase must not claim net determinism")
	}
	if tcp.Addr("crl.tcp.test") == "" {
		t.Error("exposed host has no address")
	}
	if _, err := eng.Client().Get("http://unexposed.test/"); err == nil {
		t.Error("unexposed host resolved over TCP")
	}
}
