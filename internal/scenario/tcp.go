package scenario

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/hist"
)

// TCP exposes the engine's virtual hosts over real localhost listeners:
// one net/http server per host on 127.0.0.1:0, plus a host-mapping
// transport so the same client code that runs against simnet runs over
// actual sockets. Per-request latency over TCP is wall time (sockets
// have no cost model), recorded into a histogram the engine attributes
// to phases; TCP phases are therefore never net-deterministic.
type TCP struct {
	servers   []*http.Server
	listeners []net.Listener
	addrs     map[string]string

	recMu sync.Mutex
	rec   hist.Recorder

	client *http.Client
}

// ExposeTCP starts a localhost listener for each named virtual host
// (every registered host when none are named) and switches the engine's
// Client to route through them. It fails if no fabric is attached or a
// host has no handler; callers must Close the engine when done.
func (e *Engine) ExposeTCP(hosts ...string) (*TCP, error) {
	if e.Net == nil {
		return nil, fmt.Errorf("scenario: ExposeTCP needs an attached simnet.Network")
	}
	if len(hosts) == 0 {
		hosts = e.Net.Hosts()
	}
	t := &TCP{addrs: make(map[string]string, len(hosts))}
	for _, host := range hosts {
		handler := e.Net.Handler(host)
		if handler == nil {
			t.Close()
			return nil, fmt.Errorf("scenario: host %q has no registered handler", host)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("scenario: listen for %q: %w", host, err)
		}
		srv := &http.Server{Handler: handler}
		go srv.Serve(ln)
		t.listeners = append(t.listeners, ln)
		t.servers = append(t.servers, srv)
		t.addrs[host] = ln.Addr().String()
	}
	t.client = &http.Client{Transport: &tcpTransport{tcp: t}}
	e.tcp = t
	return t, nil
}

// Addr returns the listener address serving a virtual host ("" when the
// host is not exposed).
func (t *TCP) Addr(host string) string { return t.addrs[host] }

// Client returns the host-mapping HTTP client.
func (t *TCP) Client() *http.Client { return t.client }

// Close shuts every listener down.
func (t *TCP) Close() error {
	var first error
	for _, srv := range t.servers {
		if err := srv.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (t *TCP) snapshot() *hist.Snapshot {
	t.recMu.Lock()
	defer t.recMu.Unlock()
	return t.rec.Snapshot()
}

// tcpTransport rewrites virtual host names to listener addresses and
// records per-request wall latency. The recorder lock is per request,
// which is cheap next to a real socket round trip.
type tcpTransport struct {
	tcp *TCP
}

func (tr *tcpTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	addr, ok := tr.tcp.addrs[req.URL.Hostname()]
	if !ok {
		return nil, fmt.Errorf("scenario: host %q not exposed over TCP", req.URL.Hostname())
	}
	mapped := req.Clone(req.Context())
	mapped.URL.Host = addr
	start := time.Now()
	resp, err := http.DefaultTransport.RoundTrip(mapped)
	if err == nil {
		d := time.Since(start)
		tr.tcp.recMu.Lock()
		tr.tcp.rec.Record(d)
		tr.tcp.recMu.Unlock()
	}
	return resp, err
}

// Close releases the engine's TCP exposure (no-op without one) and
// reverts Client to the simnet fabric.
func (e *Engine) Close() error {
	if e.tcp == nil {
		return nil
	}
	err := e.tcp.Close()
	e.tcp = nil
	return err
}
