// Package scan implements the measurement study's two scanners: the
// simulated full-"IPv4" scanner that sweeps the host population weekly and
// feeds the corpus (standing in for the Rapid7 sonar.ssl scans, §3.1), and
// a live zgrab-style TLS grabber that performs a real handshake against a
// real address and captures the advertised chain plus any OCSP staple
// (standing in for the University of Michigan TLS handshake scans, §4.3).
package scan

import (
	"crypto/tls"
	"fmt"
	"net"
	"time"

	"repro/internal/ca"
	"repro/internal/corpus"
	"repro/internal/host"
	"repro/internal/x509x"
)

// Scanner sweeps a population of simulated hosts.
type Scanner struct {
	Hosts []*host.SimHost
}

// Result is one full scan.
type Result struct {
	At time.Time
	// Advertisements aggregates per certificate.
	Advertisements []corpus.Advertisement
	// HostsResponding is how many hosts served any certificate.
	HostsResponding int
	// HostsStapling is how many responding hosts presented a staple.
	HostsStapling int
}

// Scan performs one sweep at the given (virtual) time.
func (s *Scanner) Scan(at time.Time) Result {
	type agg struct {
		hosts   int
		stapled int
	}
	byRecord := make(map[*ca.Record]*agg)
	var order []*ca.Record
	res := Result{At: at}
	for _, h := range s.Hosts {
		hr := h.Handshake()
		if hr.Record == nil {
			continue
		}
		res.HostsResponding++
		if hr.StaplePresented {
			res.HostsStapling++
		}
		a := byRecord[hr.Record]
		if a == nil {
			a = &agg{}
			byRecord[hr.Record] = a
			order = append(order, hr.Record)
		}
		a.hosts++
		if hr.StaplePresented {
			a.stapled++
		}
	}
	for _, rec := range order {
		a := byRecord[rec]
		res.Advertisements = append(res.Advertisements, corpus.Advertisement{
			Record:       rec,
			Hosts:        a.hosts,
			StapledHosts: a.stapled,
		})
	}
	return res
}

// ScanInto performs one sweep and ingests it into the corpus.
func (s *Scanner) ScanInto(c *corpus.Corpus, at time.Time) Result {
	res := s.Scan(at)
	c.RecordScan(at, res.Advertisements)
	return res
}

// GrabResult is what one live TLS handshake captured.
type GrabResult struct {
	// Chain is the presented certificate chain, leaf first, parsed with
	// this repository's own X.509 implementation.
	Chain []*x509x.Certificate
	// RawChain is the DER of each presented certificate.
	RawChain [][]byte
	// Staple is the stapled OCSP response, if any.
	Staple []byte
	// Version and CipherSuite describe the negotiated session.
	Version     uint16
	CipherSuite uint16
}

// Grab connects to addr (host:port), performs a TLS handshake requesting
// an OCSP staple, and captures the certificate chain without validating
// it — scanners must record invalid and expired chains too.
func Grab(addr string, timeout time.Duration) (*GrabResult, error) {
	dialer := &net.Dialer{Timeout: timeout}
	conn, err := tls.DialWithDialer(dialer, "tcp", addr, &tls.Config{
		InsecureSkipVerify: true, // scanner records; it does not trust
	})
	if err != nil {
		return nil, fmt.Errorf("scan: %s: %w", addr, err)
	}
	defer conn.Close()
	state := conn.ConnectionState()
	res := &GrabResult{
		Staple:      state.OCSPResponse,
		Version:     state.Version,
		CipherSuite: state.CipherSuite,
	}
	for _, peer := range state.PeerCertificates {
		res.RawChain = append(res.RawChain, peer.Raw)
		parsed, err := x509x.Parse(peer.Raw)
		if err != nil {
			return nil, fmt.Errorf("scan: %s: parsing presented certificate: %v", addr, err)
		}
		res.Chain = append(res.Chain, parsed)
	}
	if len(res.Chain) == 0 {
		return nil, fmt.Errorf("scan: %s: no certificates presented", addr)
	}
	return res, nil
}

// Leaf returns the leaf certificate of the grabbed chain.
func (g *GrabResult) Leaf() *x509x.Certificate { return g.Chain[0] }
