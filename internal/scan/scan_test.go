package scan

import (
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/corpus"
	"repro/internal/host"
	"repro/internal/ocsp"
	"repro/internal/simtime"
	"repro/internal/x509x"
)

func TestSimulatedScan(t *testing.T) {
	clock := simtime.NewClock(simtime.ScanStart)
	authority, err := ca.NewRoot(ca.Config{Name: "ScanCA", Clock: clock.Now, IncludeCRLDP: true, IncludeOCSP: true,
		CRLBaseURL: "http://crl.scanca.test", OCSPBaseURL: "http://ocsp.scanca.test"})
	if err != nil {
		t.Fatal(err)
	}
	recA := authority.IssueRecord(ca.IssueOptions{CommonName: "a.test", NotBefore: clock.Now(), NotAfter: clock.Now().AddDate(1, 0, 0)})
	recB := authority.IssueRecord(ca.IssueOptions{CommonName: "b.test", NotBefore: clock.Now(), NotAfter: clock.Now().AddDate(1, 0, 0)})

	// recA on two hosts (one stapling, warm), recB on one, one empty host.
	h1 := host.New(host.Config{Addr: 1, SupportsStapling: true, InitialFresh: true, Clock: clock.Now})
	h1.SetRecord(recA)
	h2 := host.New(host.Config{Addr: 2, Clock: clock.Now})
	h2.SetRecord(recA)
	h3 := host.New(host.Config{Addr: 3, Clock: clock.Now})
	h3.SetRecord(recB)
	h4 := host.New(host.Config{Addr: 4, Clock: clock.Now})

	s := &Scanner{Hosts: []*host.SimHost{h1, h2, h3, h4}}
	res := s.Scan(clock.Now())
	if res.HostsResponding != 3 {
		t.Errorf("responding = %d", res.HostsResponding)
	}
	if res.HostsStapling != 1 {
		t.Errorf("stapling = %d", res.HostsStapling)
	}
	if len(res.Advertisements) != 2 {
		t.Fatalf("advertisements = %d", len(res.Advertisements))
	}
	byRec := map[*ca.Record]corpus.Advertisement{}
	for _, ad := range res.Advertisements {
		byRec[ad.Record] = ad
	}
	if byRec[recA].Hosts != 2 || byRec[recA].StapledHosts != 1 {
		t.Errorf("recA ad = %+v", byRec[recA])
	}
	if byRec[recB].Hosts != 1 || byRec[recB].StapledHosts != 0 {
		t.Errorf("recB ad = %+v", byRec[recB])
	}
}

func TestScanIntoCorpus(t *testing.T) {
	clock := simtime.NewClock(simtime.ScanStart)
	rec := &ca.Record{CAName: "X", NotBefore: clock.Now(), NotAfter: clock.Now().AddDate(1, 0, 0)}
	h := host.New(host.Config{Addr: 1, Clock: clock.Now})
	h.SetRecord(rec)
	s := &Scanner{Hosts: []*host.SimHost{h}}
	c := corpus.New()
	for i := 0; i < 3; i++ {
		s.ScanInto(c, clock.Now())
		clock.Advance(7 * 24 * time.Hour)
	}
	if c.NumScans() != 3 || c.Size() != 1 {
		t.Errorf("corpus: scans=%d size=%d", c.NumScans(), c.Size())
	}
	hist, ok := c.History(rec)
	if !ok || len(hist.Sightings) != 3 {
		t.Fatalf("history sightings = %d", len(hist.Sightings))
	}
}

func TestLiveGrab(t *testing.T) {
	clock := simtime.NewClock(simtime.Date(2015, time.March, 28))
	authority, err := ca.NewRoot(ca.Config{Name: "GrabCA", Clock: clock.Now, IncludeCRLDP: true, IncludeOCSP: true,
		CRLBaseURL: "http://crl.grab.test", OCSPBaseURL: "http://ocsp.grab.test"})
	if err != nil {
		t.Fatal(err)
	}
	leafKey, err := x509x.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	cert, recMeta, err := authority.Issue(ca.IssueOptions{
		CommonName: "grab.example.test",
		NotBefore:  clock.Now().AddDate(0, -1, 0),
		NotAfter:   clock.Now().AddDate(1, 0, 0),
		PublicKey:  &leafKey.PublicKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	signerCert, signerKey := authority.Signer()
	staple, err := ocsp.CreateResponse(&ocsp.ResponseTemplate{
		ProducedAt: clock.Now(),
		Responses: []ocsp.SingleResponse{{
			ID:         ocsp.NewCertID(signerCert, recMeta.Serial),
			Status:     ocsp.StatusGood,
			ThisUpdate: clock.Now(),
		}},
	}, signerCert, signerKey)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := host.NewLiveServer(host.LiveConfig{
		Chain:  [][]byte{cert.Raw, signerCert.Raw},
		Key:    leafKey,
		Staple: staple,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	grab, err := Grab(srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(grab.Chain) != 2 {
		t.Fatalf("chain length = %d", len(grab.Chain))
	}
	if grab.Leaf().SerialNumber.Cmp(recMeta.Serial) != 0 {
		t.Error("leaf serial mismatch")
	}
	if grab.Leaf().Subject.CommonName != "grab.example.test" {
		t.Errorf("leaf CN = %q", grab.Leaf().Subject.CommonName)
	}
	if !grab.Chain[1].IsCA {
		t.Error("second chain element should be the CA")
	}
	if len(grab.Staple) == 0 {
		t.Error("staple not captured")
	}
	parsed, err := ocsp.ParseResponse(grab.Staple)
	if err != nil || parsed.Responses[0].Status != ocsp.StatusGood {
		t.Errorf("staple parse: %v", err)
	}
	if grab.Version == 0 || grab.CipherSuite == 0 {
		t.Error("session parameters not recorded")
	}
}

func TestGrabConnectionRefused(t *testing.T) {
	if _, err := Grab("127.0.0.1:1", 500*time.Millisecond); err == nil {
		t.Error("Grab to closed port should fail")
	}
}
