package serialx

import (
	"bytes"
	"math/big"
	"testing"
)

// TestCanon pins the canonical-form table shared by crlset, the Bloom
// key builder, and the cascade: minimal magnitude, zero is empty.
func TestCanon(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		want []byte
	}{
		{"nil", nil, []byte{}},
		{"empty", []byte{}, []byte{}},
		{"zero", []byte{0x00}, []byte{}},
		{"double-zero", []byte{0x00, 0x00}, []byte{}},
		{"plain", []byte{0x05}, []byte{0x05}},
		{"leading-zero", []byte{0x00, 0x05}, []byte{0x05}},
		{"two-leading-zeros", []byte{0x00, 0x00, 0x05}, []byte{0x05}},
		{"trailing-zero-kept", []byte{0x01, 0x00}, []byte{0x01, 0x00}},
		{"high-bit", []byte{0x00, 0x80, 0x01}, []byte{0x80, 0x01}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Canon(tc.in)
			if !bytes.Equal(got, tc.want) {
				t.Fatalf("Canon(%x) = %x, want %x", tc.in, got, tc.want)
			}
			if !IsCanonical(got) {
				t.Fatalf("Canon(%x) = %x is not canonical", tc.in, got)
			}
		})
	}
}

// TestCanonMatchesBigInt verifies the canonical form is exactly what
// big.Int produces, for round-trips through arithmetic paths.
func TestCanonMatchesBigInt(t *testing.T) {
	for _, raw := range [][]byte{nil, {0}, {0, 0, 7}, {1, 2, 3}, {0x00, 0xff, 0xfe}} {
		want := new(big.Int).SetBytes(raw).Bytes()
		if got := Canon(raw); !bytes.Equal(got, want) {
			t.Fatalf("Canon(%x) = %x, big.Int gives %x", raw, got, want)
		}
	}
}

// TestCanonAliases pins the no-copy contract.
func TestCanonAliases(t *testing.T) {
	in := []byte{0x00, 0x09}
	got := Canon(in)
	in[1] = 0x0a
	if got[0] != 0x0a {
		t.Fatal("Canon must alias its input, not copy it")
	}
}
