// Package serialx defines the one canonical byte form of a certificate
// serial number used by every set-membership artifact in this repo — the
// CRLSet, the Bloom filter keys, and the filter cascade.
//
// The canonical form is the minimal big-endian magnitude: no leading zero
// octets, and the serial value zero is the empty slice (exactly what
// (*big.Int).Bytes returns). Serials that originate from big.Int — CA
// records, browser chain elements — are canonical already; serials that
// originate from parsed DER may in principle carry leading zeros (a
// hostile or sloppy encoder can pad an INTEGER), and two encodings of the
// same value must land on the same set entry. Every artifact therefore
// canonicalizes on both the build side and the probe side, so documented
// semantics ("keyed by the serial value") and behavior cannot drift.
package serialx

// Canon returns the canonical form of serial: the minimal big-endian
// magnitude with leading zero octets stripped. The zero serial (nil,
// empty, or all-zero input) canonicalizes to an empty slice. The result
// aliases the input's backing array — it is a subslice, never a copy —
// so it costs nothing on hot paths and callers who retain it must copy.
func Canon(serial []byte) []byte {
	i := 0
	for i < len(serial) && serial[i] == 0 {
		i++
	}
	return serial[i:]
}

// IsCanonical reports whether serial is already in canonical form.
func IsCanonical(serial []byte) bool {
	return len(serial) == 0 || serial[0] != 0
}
