package crlset

import (
	"math/big"
	"math/rand"
	"testing"
)

// Mutated CRLSet files must never panic Parse — Chrome fetches them over
// plain HTTP.
func TestParseNeverPanicsOnMutations(t *testing.T) {
	s := NewSet(9)
	for i := byte(1); i <= 4; i++ {
		for j := int64(1); j <= 20; j++ {
			s.Add(parent(i), big.NewInt(int64(i)*100+j))
		}
	}
	s.BlockedSPKIs = []Parent{parent(99)}
	seed, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 10000; i++ {
		data := append([]byte(nil), seed...)
		for flips := rng.Intn(5) + 1; flips > 0; flips-- {
			data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
		}
		if rng.Intn(5) == 0 {
			data = data[:rng.Intn(len(data))]
		}
		if set, err := Parse(data); err == nil {
			set.Covers(parent(1), big.NewInt(101))
			set.NumEntries()
		}
	}
}

func FuzzParseCRLSet(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 0, '{', '}'})
	f.Fuzz(func(t *testing.T, data []byte) {
		Parse(data)
	})
}
