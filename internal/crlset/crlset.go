// Package crlset implements Google's CRLSet mechanism (§7): the binary
// format Chrome ships (a JSON header followed by per-parent serial lists,
// where a parent is the SHA-256 of an issuer's SubjectPublicKeyInfo), the
// documented generation rules (250 KB size cap, CRLSet-eligible reason
// codes only, oversized CRLs dropped), and the timeline machinery behind
// the coverage and dynamics analyses of §7.2–7.3.
package crlset

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	"sort"

	"repro/internal/serialx"
)

// MaxBytes is Google's documented cap on the CRLSet file size.
const MaxBytes = 250 * 1024

// Parent identifies an issuing key: SHA-256 of its SubjectPublicKeyInfo.
type Parent [32]byte

// Set is one CRLSet snapshot.
type Set struct {
	// Sequence is the CRLSet's version counter.
	Sequence int
	parents  map[Parent][]string // serial bytes (raw big-endian)
	lookup   map[Parent]map[string]bool
	order    []Parent
	// BlockedSPKIs lists leaf keys blocked outright (the ~11-entry list
	// §7.1 footnote 26 describes).
	BlockedSPKIs []Parent
}

// NewSet returns an empty CRLSet with the given sequence number.
func NewSet(sequence int) *Set {
	return &Set{
		Sequence: sequence,
		parents:  make(map[Parent][]string),
		lookup:   make(map[Parent]map[string]bool),
	}
}

// Add inserts a revoked serial under a parent. Duplicate serials for the
// same parent are ignored.
func (s *Set) Add(p Parent, serial *big.Int) {
	s.AddSerial(p, serial.Bytes())
}

// AddSerial is Add keyed by the compact big-endian serial magnitude (what
// crl.Entry.Serial holds). The serial is canonicalized first (leading
// zero octets stripped, the zero serial stored as the empty string —
// serialx.Canon), so two encodings of the same serial value always land
// on the same entry. The bytes are interned on first insertion; the
// duplicate check does not allocate.
func (s *Set) AddSerial(p Parent, serial []byte) {
	serial = serialx.Canon(serial)
	set, known := s.lookup[p]
	if !known {
		set = make(map[string]bool)
		s.lookup[p] = set
		s.order = append(s.order, p)
	}
	if set[string(serial)] {
		return
	}
	key := string(serial)
	set[key] = true
	s.parents[p] = append(s.parents[p], key)
}

// AddParent marks p as covered by the set even when no serials are
// revoked under it — real CRLSets carry many such empty parents (a CA
// with an empty CRL is still authoritatively covered, so clients skip
// the online check for its children). No-op when p is already present.
func (s *Set) AddParent(p Parent) {
	if _, known := s.lookup[p]; known {
		return
	}
	s.lookup[p] = make(map[string]bool)
	s.parents[p] = nil
	s.order = append(s.order, p)
}

// Covers reports whether the set revokes (parent, serial).
func (s *Set) Covers(p Parent, serial *big.Int) bool {
	return s.lookup[p][string(serial.Bytes())]
}

// CoversSerial is Covers keyed by the compact serial magnitude; it does
// not allocate. The probe is canonicalized exactly like AddSerial, so a
// leading-zero or zero-length encoding of a stored serial still matches.
func (s *Set) CoversSerial(p Parent, serial []byte) bool {
	return s.lookup[p][string(serialx.Canon(serial))]
}

// HasParent reports whether any entry exists for parent p.
func (s *Set) HasParent(p Parent) bool {
	_, ok := s.parents[p]
	return ok
}

// NumParents returns the count of distinct parents.
func (s *Set) NumParents() int { return len(s.order) }

// NumEntries returns the total revocation count.
func (s *Set) NumEntries() int {
	n := 0
	for _, list := range s.parents {
		n += len(list)
	}
	return n
}

// Parents returns the parents in insertion order.
func (s *Set) Parents() []Parent {
	out := make([]Parent, len(s.order))
	copy(out, s.order)
	return out
}

// Serials returns the serials recorded under p.
func (s *Set) Serials(p Parent) []*big.Int {
	list := s.parents[p]
	out := make([]*big.Int, len(list))
	for i, k := range list {
		out[i] = new(big.Int).SetBytes([]byte(k))
	}
	return out
}

// header is the JSON preamble of the wire format.
type header struct {
	ContentType string `json:"ContentType"`
	Sequence    int    `json:"Sequence"`
	NumParents  int    `json:"NumParents"`
	BlockedSPKI int    `json:"BlockedSPKIs"`
}

// Marshal encodes the set in Chrome's CRLSet wire format: a uint16
// little-endian header length, a JSON header, then for each parent a
// 32-byte SPKI hash, a uint32 LE serial count, and length-prefixed
// serials; blocked SPKIs follow as raw 32-byte hashes.
func (s *Set) Marshal() ([]byte, error) {
	h, err := json.Marshal(header{
		ContentType: "CRLSet",
		Sequence:    s.Sequence,
		NumParents:  len(s.order),
		BlockedSPKI: len(s.BlockedSPKIs),
	})
	if err != nil {
		return nil, err
	}
	if len(h) > 0xffff {
		return nil, errors.New("crlset: header too large")
	}
	out := binary.LittleEndian.AppendUint16(nil, uint16(len(h)))
	out = append(out, h...)
	for _, p := range s.order {
		out = append(out, p[:]...)
		list := s.parents[p]
		out = binary.LittleEndian.AppendUint32(out, uint32(len(list)))
		for _, serial := range list {
			if len(serial) > 255 {
				return nil, fmt.Errorf("crlset: serial of %d bytes", len(serial))
			}
			out = append(out, byte(len(serial)))
			out = append(out, serial...)
		}
	}
	for _, spki := range s.BlockedSPKIs {
		out = append(out, spki[:]...)
	}
	return out, nil
}

// Size returns the marshaled byte size.
func (s *Set) Size() int {
	b, err := s.Marshal()
	if err != nil {
		return 0
	}
	return len(b)
}

// Parse decodes a CRLSet produced by Marshal.
func Parse(data []byte) (*Set, error) {
	if len(data) < 2 {
		return nil, errors.New("crlset: short input")
	}
	hlen := int(binary.LittleEndian.Uint16(data))
	if len(data) < 2+hlen {
		return nil, errors.New("crlset: truncated header")
	}
	var h header
	if err := json.Unmarshal(data[2:2+hlen], &h); err != nil {
		return nil, fmt.Errorf("crlset: header: %v", err)
	}
	if h.ContentType != "CRLSet" {
		return nil, fmt.Errorf("crlset: content type %q", h.ContentType)
	}
	s := NewSet(h.Sequence)
	pos := 2 + hlen
	for i := 0; i < h.NumParents; i++ {
		if pos+36 > len(data) {
			return nil, errors.New("crlset: truncated parent")
		}
		var p Parent
		copy(p[:], data[pos:pos+32])
		pos += 32
		count := int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
		// Each serial costs at least its length byte: a count beyond the
		// remaining input is corrupt, and must be rejected before any
		// count-sized allocation (a flipped bit in the count field must
		// not make Parse allocate gigabytes).
		if count < 0 || count > len(data)-pos {
			return nil, fmt.Errorf("crlset: implausible serial count %d", count)
		}
		s.order = append(s.order, p)
		list := make([]string, 0, count)
		set := make(map[string]bool, count)
		for j := 0; j < count; j++ {
			if pos >= len(data) {
				return nil, errors.New("crlset: truncated serial length")
			}
			n := int(data[pos])
			pos++
			if pos+n > len(data) {
				return nil, errors.New("crlset: truncated serial")
			}
			// Canonicalize on ingest: a file encoding the same serial
			// value with leading zeros must land on the same entry a
			// canonical probe looks up.
			key := string(serialx.Canon(data[pos : pos+n]))
			list = append(list, key)
			set[key] = true
			pos += n
		}
		s.parents[p] = list
		s.lookup[p] = set
	}
	for i := 0; i < h.BlockedSPKI; i++ {
		if pos+32 > len(data) {
			return nil, errors.New("crlset: truncated blocked SPKI")
		}
		var p Parent
		copy(p[:], data[pos:pos+32])
		s.BlockedSPKIs = append(s.BlockedSPKIs, p)
		pos += 32
	}
	if pos != len(data) {
		return nil, errors.New("crlset: trailing bytes")
	}
	return s, nil
}

// sortedParents returns parents in deterministic (byte) order — generation
// must be reproducible run to run.
func sortedParents(m map[Parent][]serialEntry) []Parent {
	out := make([]Parent, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		return string(out[i][:]) < string(out[j][:])
	})
	return out
}
