package crlset_test

import (
	"fmt"
	"math/big"

	"repro/internal/crl"
	"repro/internal/crlset"
)

// Generate applies Google's documented CRLSet rules: only public CRLs,
// only CRLSet-eligible reason codes, oversized CRLs dropped wholesale.
func ExampleGenerate() {
	var parentA, parentB crlset.Parent
	parentA[0], parentB[0] = 1, 2
	sources := []crlset.SourceCRL{
		{Parent: parentA, URL: "http://small.example/1.crl", Public: true, Entries: []crl.Entry{
			{Serial: big.NewInt(100).Bytes(), Reason: crl.ReasonKeyCompromise},
			{Serial: big.NewInt(101).Bytes(), Reason: crl.ReasonSuperseded}, // filtered: not CRLSet-eligible
		}},
		{Parent: parentB, URL: "http://private.example/1.crl", Public: false, Entries: []crl.Entry{
			{Serial: big.NewInt(200).Bytes(), Reason: crl.ReasonKeyCompromise}, // skipped: not crawled
		}},
	}
	set := crlset.Generate(crlset.GeneratorConfig{FilterReasons: true}, sources, 1)
	fmt.Println("entries:", set.NumEntries())
	fmt.Println("covers 100:", set.Covers(parentA, big.NewInt(100)))
	fmt.Println("covers 101:", set.Covers(parentA, big.NewInt(101)))
	fmt.Println("covers 200:", set.Covers(parentB, big.NewInt(200)))
	// Output:
	// entries: 1
	// covers 100: true
	// covers 101: false
	// covers 200: false
}

func ExampleSet_Marshal() {
	set := crlset.NewSet(42)
	var parent crlset.Parent
	set.Add(parent, big.NewInt(7))
	data, _ := set.Marshal()
	parsed, _ := crlset.Parse(data)
	fmt.Println(parsed.Sequence, parsed.NumEntries())
	// Output: 42 1
}
