package crlset

import (
	"crypto/sha256"
	"math/big"
	"testing"
	"time"

	"repro/internal/crl"
	"repro/internal/simtime"
)

func parent(id byte) Parent {
	return Parent(sha256.Sum256([]byte{id}))
}

func TestSetBasics(t *testing.T) {
	s := NewSet(1)
	p1, p2 := parent(1), parent(2)
	s.Add(p1, big.NewInt(100))
	s.Add(p1, big.NewInt(200))
	s.Add(p1, big.NewInt(100)) // duplicate ignored
	s.Add(p2, big.NewInt(300))

	if s.NumParents() != 2 || s.NumEntries() != 3 {
		t.Fatalf("parents=%d entries=%d", s.NumParents(), s.NumEntries())
	}
	if !s.Covers(p1, big.NewInt(100)) || !s.Covers(p2, big.NewInt(300)) {
		t.Error("missing coverage")
	}
	if s.Covers(p1, big.NewInt(300)) || s.Covers(parent(9), big.NewInt(100)) {
		t.Error("phantom coverage")
	}
	if !s.HasParent(p1) || s.HasParent(parent(9)) {
		t.Error("HasParent wrong")
	}
	if got := s.Serials(p1); len(got) != 2 || got[0].Int64() != 100 {
		t.Errorf("Serials = %v", got)
	}
}

// TestSerialCanonicalization pins the documented AddSerial/CoversSerial
// semantics for degenerate encodings: entries are keyed by the serial
// *value* (serialx.Canon form), so zero-length, single-zero, and
// leading-zero encodings of the same value are one entry, on both the
// insert and the probe side, and survive a Marshal/Parse round trip.
func TestSerialCanonicalization(t *testing.T) {
	p := parent(1)
	cases := []struct {
		name   string
		stored []byte   // encoding handed to AddSerial
		hits   [][]byte // probes that must report covered
		misses [][]byte // probes that must not
	}{
		{
			name:   "leading-zero insert, canonical probe",
			stored: []byte{0x00, 0x05},
			hits:   [][]byte{{0x05}, {0x00, 0x05}, {0x00, 0x00, 0x05}},
			misses: [][]byte{{0x05, 0x00}, {}, nil},
		},
		{
			name:   "canonical insert, padded probe",
			stored: []byte{0x81, 0x02},
			hits:   [][]byte{{0x81, 0x02}, {0x00, 0x81, 0x02}},
			misses: [][]byte{{0x81}, {0x02}},
		},
		{
			name:   "zero serial in every encoding",
			stored: []byte{0x00},
			hits:   [][]byte{nil, {}, {0x00}, {0x00, 0x00}},
			misses: [][]byte{{0x01}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewSet(1)
			s.AddSerial(p, tc.stored)
			// A differently-padded duplicate must not create a second entry.
			s.AddSerial(p, append([]byte{0x00}, tc.stored...))
			if s.NumEntries() != 1 {
				t.Fatalf("NumEntries = %d after duplicate encodings", s.NumEntries())
			}
			check := func(set *Set, label string) {
				for _, probe := range tc.hits {
					if !set.CoversSerial(p, probe) {
						t.Errorf("%s: CoversSerial(%x) = false, want true", label, probe)
					}
				}
				for _, probe := range tc.misses {
					if set.CoversSerial(p, probe) {
						t.Errorf("%s: CoversSerial(%x) = true, want false", label, probe)
					}
				}
			}
			check(s, "built")
			data, err := s.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			parsed, err := Parse(data)
			if err != nil {
				t.Fatal(err)
			}
			check(parsed, "parsed")
		})
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	s := NewSet(42)
	for i := byte(1); i <= 3; i++ {
		for j := int64(1); j <= 5; j++ {
			s.Add(parent(i), big.NewInt(int64(i)*1000+j))
		}
	}
	s.BlockedSPKIs = []Parent{parent(200), parent(201)}
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sequence != 42 || got.NumParents() != 3 || got.NumEntries() != 15 {
		t.Fatalf("round trip: seq=%d parents=%d entries=%d", got.Sequence, got.NumParents(), got.NumEntries())
	}
	if len(got.BlockedSPKIs) != 2 || got.BlockedSPKIs[0] != parent(200) {
		t.Errorf("blocked SPKIs = %d", len(got.BlockedSPKIs))
	}
	for i := byte(1); i <= 3; i++ {
		for j := int64(1); j <= 5; j++ {
			if !got.Covers(parent(i), big.NewInt(int64(i)*1000+j)) {
				t.Fatalf("lost entry %d/%d", i, j)
			}
		}
	}
	if s.Size() != len(data) {
		t.Errorf("Size() = %d, marshal = %d", s.Size(), len(data))
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	s := NewSet(1)
	s.Add(parent(1), big.NewInt(7))
	data, _ := s.Marshal()
	for name, b := range map[string][]byte{
		"empty":        {},
		"short header": {0xff, 0xff, 'x'},
		"trailing":     append(append([]byte{}, data...), 1),
		"truncated":    data[:len(data)-2],
		"not json":     {2, 0, '{', 'x'},
	} {
		if _, err := Parse(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func srcEntries(n int, reason crl.Reason) []crl.Entry {
	var out []crl.Entry
	for i := 1; i <= n; i++ {
		out = append(out, crl.Entry{Serial: big.NewInt(int64(i)).Bytes(), RevokedAt: simtime.Heartbleed, Reason: reason})
	}
	return out
}

func TestGenerateReasonFilter(t *testing.T) {
	sources := []SourceCRL{
		{Parent: parent(1), URL: "http://a/1.crl", Public: true, Entries: []crl.Entry{
			{Serial: big.NewInt(1).Bytes(), Reason: crl.ReasonKeyCompromise},
			{Serial: big.NewInt(2).Bytes(), Reason: crl.ReasonSuperseded},
			{Serial: big.NewInt(3).Bytes(), Reason: crl.ReasonAbsent},
			{Serial: big.NewInt(4).Bytes(), Reason: crl.ReasonCessationOfOperation},
		}},
	}
	set := Generate(GeneratorConfig{FilterReasons: true}, sources, 1)
	if set.NumEntries() != 2 {
		t.Fatalf("entries = %d, want 2 (eligible reasons only)", set.NumEntries())
	}
	if !set.Covers(parent(1), big.NewInt(1)) || !set.Covers(parent(1), big.NewInt(3)) {
		t.Error("eligible entries missing")
	}
	all := Generate(GeneratorConfig{}, sources, 2)
	if all.NumEntries() != 4 {
		t.Errorf("unfiltered entries = %d", all.NumEntries())
	}
}

func TestGenerateDropsOversizedCRLs(t *testing.T) {
	sources := []SourceCRL{
		{Parent: parent(1), URL: "http://big/1.crl", Public: true, Entries: srcEntries(500, crl.ReasonUnspecified)},
		{Parent: parent(2), URL: "http://small/1.crl", Public: true, Entries: srcEntries(10, crl.ReasonUnspecified)},
	}
	set := Generate(GeneratorConfig{MaxCRLEntries: 100}, sources, 1)
	if set.HasParent(parent(1)) {
		t.Error("oversized CRL not dropped")
	}
	if !set.HasParent(parent(2)) || set.NumEntries() != 10 {
		t.Errorf("small CRL missing: entries=%d", set.NumEntries())
	}
}

func TestGenerateSkipsNonPublic(t *testing.T) {
	sources := []SourceCRL{
		{Parent: parent(1), URL: "http://private/1.crl", Public: false, Entries: srcEntries(5, crl.ReasonAbsent)},
	}
	set := Generate(GeneratorConfig{}, sources, 1)
	if set.NumEntries() != 0 {
		t.Error("non-public CRL included")
	}
}

func TestGenerateRespectsSizeCap(t *testing.T) {
	// Each entry is ~2-3 bytes serial + 1 length byte; parent block 36
	// bytes. With a tiny cap only some parents fit.
	var sources []SourceCRL
	for i := byte(1); i <= 20; i++ {
		sources = append(sources, SourceCRL{
			Parent: parent(i), URL: "http://x", Public: true,
			Entries: srcEntries(50, crl.ReasonAbsent),
		})
	}
	set := Generate(GeneratorConfig{MaxBytes: 1000}, sources, 1)
	if set.Size() > 1000 {
		t.Errorf("size %d exceeds cap", set.Size())
	}
	if set.NumParents() == 0 || set.NumParents() >= 20 {
		t.Errorf("parents admitted = %d, want partial admission", set.NumParents())
	}
	// Determinism: same inputs, same output bytes.
	set2 := Generate(GeneratorConfig{MaxBytes: 1000}, sources, 1)
	b1, _ := set.Marshal()
	b2, _ := set2.Marshal()
	if string(b1) != string(b2) {
		t.Error("generation not deterministic")
	}
}

func TestAnalyzeCoverage(t *testing.T) {
	sources := []SourceCRL{
		{Parent: parent(1), URL: "http://a", Public: true, Entries: []crl.Entry{
			{Serial: big.NewInt(1).Bytes(), Reason: crl.ReasonKeyCompromise},
			{Serial: big.NewInt(2).Bytes(), Reason: crl.ReasonSuperseded},
		}},
		{Parent: parent(2), URL: "http://b", Public: true, Entries: srcEntries(8, crl.ReasonSuperseded)},
	}
	set := Generate(GeneratorConfig{FilterReasons: true}, sources, 1)
	cov := AnalyzeCoverage(set, sources)
	if cov.TotalRevocations != 10 || cov.CoveredRevocations != 1 {
		t.Fatalf("coverage = %+v", cov)
	}
	if cov.TotalCRLs != 2 || cov.CoveredCRLs != 1 {
		t.Errorf("CRL coverage = %d/%d", cov.CoveredCRLs, cov.TotalCRLs)
	}
	if got := cov.CoverageFraction(); got != 0.1 {
		t.Errorf("fraction = %v", got)
	}
	// The covered CRL has 1 of 2 entries covered overall, but 1 of 1
	// eligible entries — the Figure 7 distinction.
	if len(cov.PerCoveredCRLAll) != 1 || cov.PerCoveredCRLAll[0] != 0.5 {
		t.Errorf("all fraction = %v", cov.PerCoveredCRLAll)
	}
	if len(cov.PerCoveredCRLEligible) != 1 || cov.PerCoveredCRLEligible[0] != 1.0 {
		t.Errorf("eligible fraction = %v", cov.PerCoveredCRLEligible)
	}
	if (Coverage{}).CoverageFraction() != 0 {
		t.Error("empty coverage fraction")
	}
}

func TestTimelineDynamics(t *testing.T) {
	tl := NewTimeline()
	d := simtime.Date(2014, time.October, 1)
	p := parent(1)

	s1 := NewSet(1)
	s1.Add(p, big.NewInt(1))
	s2 := NewSet(2)
	s2.Add(p, big.NewInt(1))
	s2.Add(p, big.NewInt(2))
	s3 := NewSet(3)
	s3.Add(p, big.NewInt(2)) // serial 1 removed

	tl.Add(d, s1)
	tl.Add(d.AddDate(0, 0, 1), s2)
	tl.Add(d.AddDate(0, 0, 2), s3)

	if tl.Len() != 3 {
		t.Fatalf("len = %d", tl.Len())
	}
	counts := tl.EntryCounts()
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 1 {
		t.Errorf("entry counts = %v", counts)
	}
	first, ok := tl.FirstAppearance(p, big.NewInt(2))
	if !ok || !first.Equal(d.AddDate(0, 0, 1)) {
		t.Errorf("first appearance = %v, %v", first, ok)
	}
	if _, ok := tl.FirstAppearance(p, big.NewInt(99)); ok {
		t.Error("phantom first appearance")
	}
	removed, ok := tl.RemovalTime(p, big.NewInt(1))
	if !ok || !removed.Equal(d.AddDate(0, 0, 2)) {
		t.Errorf("removal = %v, %v", removed, ok)
	}
	if _, ok := tl.RemovalTime(p, big.NewInt(2)); ok {
		t.Error("still-present entry reported removed")
	}
	adds := tl.Additions()
	if len(adds) != 2 || adds[0] != 1 || adds[1] != 0 {
		t.Errorf("additions = %v", adds)
	}
	day0, set0 := tl.At(0)
	if !day0.Equal(d) || set0 != s1 {
		t.Error("At(0)")
	}
	if len(tl.Days()) != 3 {
		t.Error("Days")
	}
}

func TestTimelineOrderEnforced(t *testing.T) {
	tl := NewTimeline()
	d := simtime.Date(2014, time.October, 2)
	tl.Add(d, NewSet(1))
	defer func() {
		if recover() == nil {
			t.Error("out-of-order day accepted")
		}
	}()
	tl.Add(d.AddDate(0, 0, -1), NewSet(2))
}
