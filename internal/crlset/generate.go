package crlset

import (
	"math/big"
	"time"

	"repro/internal/crl"
)

// SourceCRL is one crawled CRL as the generator sees it: the issuing key's
// SPKI hash plus the entries from the most recent crawl.
type SourceCRL struct {
	Parent Parent
	URL    string
	// Public reports whether Google's crawler can see this CRL at all;
	// the generator skips non-public CRLs, and §7.2 finds 10 of 62
	// CRLSet parents come from non-public CRLs Google sees privately.
	Public  bool
	Entries []crl.Entry
}

type serialEntry struct {
	serial []byte // compact big-endian magnitude, aliasing crl.Entry.Serial
}

// GeneratorConfig captures Google's documented CRLSet construction rules
// (§7.1): a hard size cap, a reason-code filter, and dropping CRLs that
// are too large to fit.
type GeneratorConfig struct {
	// MaxBytes caps the marshaled size; MaxBytes (250 KB) when zero.
	MaxBytes int
	// MaxCRLEntries drops any CRL with more entries ("if a CRL has too
	// many entries it will be dropped"); 10,000 when zero.
	MaxCRLEntries int
	// FilterReasons keeps only revocations whose reason code is
	// CRLSet-eligible (no reason, Unspecified, KeyCompromise,
	// CACompromise, AACompromise).
	FilterReasons bool
}

func (c *GeneratorConfig) fillDefaults() {
	if c.MaxBytes <= 0 {
		c.MaxBytes = MaxBytes
	}
	if c.MaxCRLEntries <= 0 {
		c.MaxCRLEntries = 10000
	}
}

// Generate builds one CRLSet snapshot from the crawled CRLs. CRLs are
// considered in deterministic parent order; a CRL that would push the set
// past the size cap is dropped wholesale, like the oversized-CRL rule.
func Generate(cfg GeneratorConfig, sources []SourceCRL, sequence int) *Set {
	cfg.fillDefaults()
	set := NewSet(sequence)

	// Group eligible entries per parent+URL, applying the per-CRL rules.
	type candidate struct {
		parent  Parent
		entries []serialEntry
	}
	byParent := make(map[Parent][]serialEntry)
	for _, src := range sources {
		if !src.Public {
			continue
		}
		if len(src.Entries) > cfg.MaxCRLEntries {
			continue // oversized CRL dropped entirely
		}
		for _, e := range src.Entries {
			if cfg.FilterReasons && !e.Reason.CRLSetEligible() {
				continue
			}
			byParent[src.Parent] = append(byParent[src.Parent], serialEntry{serial: e.Serial})
		}
	}

	// Admit parents in deterministic order until the size cap.
	size := set.Size()
	for _, p := range sortedParents(byParent) {
		entries := byParent[p]
		// Parent block: 32-byte hash + 4-byte count + per-serial
		// (1 + len) bytes.
		add := 36
		for _, e := range entries {
			add += 1 + len(e.serial)
		}
		if size+add > cfg.MaxBytes {
			continue
		}
		for _, e := range entries {
			set.AddSerial(p, e.serial)
		}
		size += add
	}
	return set
}

// Timeline is a day-indexed sequence of CRLSet snapshots, the shape of the
// paper's 300-snapshot corpus.
type Timeline struct {
	days []time.Time
	sets []*Set
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// Add appends a day's snapshot; days must be added in order.
func (tl *Timeline) Add(day time.Time, s *Set) {
	if n := len(tl.days); n > 0 && day.Before(tl.days[n-1]) {
		panic("crlset: timeline days must be in order")
	}
	tl.days = append(tl.days, day)
	tl.sets = append(tl.sets, s)
}

// Len returns the number of snapshots.
func (tl *Timeline) Len() int { return len(tl.days) }

// Days returns the snapshot days in order.
func (tl *Timeline) Days() []time.Time {
	out := make([]time.Time, len(tl.days))
	copy(out, tl.days)
	return out
}

// At returns the snapshot for day i.
func (tl *Timeline) At(i int) (time.Time, *Set) { return tl.days[i], tl.sets[i] }

// EntryCounts returns the per-day entry totals (Figure 8's series).
func (tl *Timeline) EntryCounts() []int {
	out := make([]int, len(tl.sets))
	for i, s := range tl.sets {
		out[i] = s.NumEntries()
	}
	return out
}

// FirstAppearance returns the first day on which (parent, serial) was
// covered.
func (tl *Timeline) FirstAppearance(p Parent, serial *big.Int) (time.Time, bool) {
	for i, s := range tl.sets {
		if s.Covers(p, serial) {
			return tl.days[i], true
		}
	}
	return time.Time{}, false
}

// RemovalTime returns the first day on which (parent, serial) was absent
// after having been present. ok is false if it never appeared or was
// still present on the final day.
func (tl *Timeline) RemovalTime(p Parent, serial *big.Int) (time.Time, bool) {
	appeared := false
	for i, s := range tl.sets {
		covered := s.Covers(p, serial)
		if covered {
			appeared = true
			continue
		}
		if appeared {
			return tl.days[i], true
		}
	}
	return time.Time{}, false
}

// Additions returns, per day index >= 1, how many entries are new relative
// to the previous day's snapshot (Figure 9's CRLSet series).
func (tl *Timeline) Additions() []int {
	out := make([]int, 0, len(tl.sets))
	for i := 1; i < len(tl.sets); i++ {
		prev, cur := tl.sets[i-1], tl.sets[i]
		added := 0
		for _, p := range cur.order {
			old := make(map[string]bool, len(prev.parents[p]))
			for _, serial := range prev.parents[p] {
				old[serial] = true
			}
			for _, serial := range cur.parents[p] {
				if !old[serial] {
					added++
				}
			}
		}
		out = append(out, added)
	}
	return out
}

// Coverage summarizes how much of the CRL universe a CRLSet covers — the
// §7.2 analysis.
type Coverage struct {
	// TotalRevocations counts entries across all crawled CRLs;
	// CoveredRevocations counts those present in the set.
	TotalRevocations   int
	CoveredRevocations int
	// EligibleRevocations counts entries with CRLSet-eligible reasons.
	EligibleRevocations int
	// TotalCRLs and CoveredCRLs count CRLs with >= 1 entry in the set.
	TotalCRLs   int
	CoveredCRLs int
	// PerCoveredCRLAll and PerCoveredCRLEligible are the Figure 7
	// distributions: for each covered CRL, the fraction of its entries
	// (all, and eligible-only) that appear in the set.
	PerCoveredCRLAll      []float64
	PerCoveredCRLEligible []float64
}

// CoverageFraction returns covered/total revocations (the paper's 0.35%).
func (c Coverage) CoverageFraction() float64 {
	if c.TotalRevocations == 0 {
		return 0
	}
	return float64(c.CoveredRevocations) / float64(c.TotalRevocations)
}

// AnalyzeCoverage compares a CRLSet against the full CRL corpus.
func AnalyzeCoverage(set *Set, sources []SourceCRL) Coverage {
	var cov Coverage
	for _, src := range sources {
		cov.TotalCRLs++
		inSet, eligible, eligibleInSet := 0, 0, 0
		for _, e := range src.Entries {
			cov.TotalRevocations++
			if e.Reason.CRLSetEligible() {
				cov.EligibleRevocations++
				eligible++
			}
			if set.CoversSerial(src.Parent, e.Serial) {
				cov.CoveredRevocations++
				inSet++
				if e.Reason.CRLSetEligible() {
					eligibleInSet++
				}
			}
		}
		if inSet > 0 {
			cov.CoveredCRLs++
			if len(src.Entries) > 0 {
				cov.PerCoveredCRLAll = append(cov.PerCoveredCRLAll, float64(inSet)/float64(len(src.Entries)))
			}
			if eligible > 0 {
				cov.PerCoveredCRLEligible = append(cov.PerCoveredCRLEligible, float64(eligibleInSet)/float64(eligible))
			}
		}
	}
	return cov
}
