package crl

import (
	"math/big"
	"math/rand"
	"testing"
)

func mustBig(v int64) *big.Int { return big.NewInt(v) }

// Mutated CRLs must never panic the parser — the crawler parses whatever
// distribution points serve.
func TestParseNeverPanicsOnMutations(t *testing.T) {
	issuer, key := newCA(t)
	var entries []Entry
	for i := int64(1); i <= 30; i++ {
		entries = append(entries, Entry{Serial: sb(i * 11), RevokedAt: thisUpdate, Reason: ReasonUnspecified})
	}
	seed := build(t, issuer, key, entries).Raw
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		data := append([]byte(nil), seed...)
		for flips := rng.Intn(6) + 1; flips > 0; flips-- {
			data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
		}
		if rng.Intn(5) == 0 {
			data = data[:rng.Intn(len(data))]
		}
		if c, err := Parse(data); err == nil {
			c.Contains(mustBig(11))
			c.CurrentAt(thisUpdate)
		}
	}
}

// FuzzParseCRL is differential: any input the legacy big.Int parser and
// the streaming parser disagree on — acceptance or parsed content — is a
// bug, not just a panic.
func FuzzParseCRL(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x30, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		assertParityOn(t, data)
	})
}
