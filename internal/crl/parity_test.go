package crl

// The streaming parser and the incremental encoder must be perfect
// stand-ins for the pre-streaming implementations: same accept/reject
// set, same parsed entries, byte-identical DER. This file carries a
// self-contained copy of the legacy big.Int-based parser and encoder
// (including the legacy der time/integer decoding it relied on) as the
// oracle, and differential tests over a generated corpus, mutations, and
// a Heartbleed-scale list.

import (
	"bytes"
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"time"

	"repro/internal/der"
	"repro/internal/x509x"
)

// --- legacy oracle -------------------------------------------------------

type legacyEntry struct {
	Serial    *big.Int
	RevokedAt time.Time
	Reason    Reason
}

type legacyCRL struct {
	RawTBS     []byte
	Issuer     x509x.Name
	ThisUpdate time.Time
	NextUpdate time.Time
	Entries    []legacyEntry
	Number     *big.Int
}

func legacyIntContent(c []byte) (*big.Int, error) {
	if len(c) == 0 {
		return nil, errors.New("legacy: empty integer")
	}
	if len(c) > 1 {
		if c[0] == 0 && c[1]&0x80 == 0 {
			return nil, errors.New("legacy: non-minimal integer")
		}
		if c[0] == 0xff && c[1]&0x80 != 0 {
			return nil, errors.New("legacy: non-minimal integer")
		}
	}
	out := new(big.Int).SetBytes(c)
	if c[0]&0x80 != 0 {
		mod := new(big.Int).Lsh(big.NewInt(1), uint(len(c)*8))
		out.Sub(out, mod)
	}
	return out, nil
}

func legacyInteger(v der.Value) (*big.Int, error) {
	if v.Class != der.ClassUniversal || v.Tag != der.TagInteger || v.Constructed {
		return nil, errors.New("legacy: not a primitive INTEGER")
	}
	return legacyIntContent(v.Content)
}

func legacyInt64(v der.Value) (int64, error) {
	i, err := legacyInteger(v)
	if err != nil {
		return 0, err
	}
	if !i.IsInt64() {
		return 0, errors.New("legacy: integer out of int64 range")
	}
	return i.Int64(), nil
}

func legacyEnumerated(v der.Value) (int64, error) {
	if v.Class != der.ClassUniversal || v.Tag != der.TagEnumerated || v.Constructed {
		return 0, errors.New("legacy: not a primitive ENUMERATED")
	}
	i, err := legacyIntContent(v.Content)
	if err != nil {
		return 0, err
	}
	if !i.IsInt64() {
		return 0, errors.New("legacy: enumerated out of int64 range")
	}
	return i.Int64(), nil
}

func legacyTime(v der.Value) (time.Time, error) {
	if v.Class != der.ClassUniversal || v.Constructed {
		return time.Time{}, errors.New("legacy: not a time type")
	}
	s := string(v.Content)
	switch v.Tag {
	case der.TagUTCTime:
		t, err := time.Parse("060102150405Z", s)
		if err != nil {
			return time.Time{}, err
		}
		if t.Year() >= 2050 {
			t = t.AddDate(-100, 0, 0)
		}
		return t, nil
	case der.TagGeneralizedTime:
		t, err := time.Parse("20060102150405Z", s)
		if err != nil {
			return time.Time{}, err
		}
		return t, nil
	default:
		return time.Time{}, errors.New("legacy: tag is not a time type")
	}
}

func legacyEncodeEntry(e legacyEntry) ([]byte, error) {
	if e.Serial == nil || e.Serial.Sign() <= 0 {
		return nil, errors.New("legacy: entry needs a positive serial")
	}
	parts := [][]byte{der.Integer(e.Serial), der.Time(e.RevokedAt)}
	if e.Reason != ReasonAbsent {
		reasonExt := der.Sequence(
			der.EncodeOID(x509x.OIDExtCRLReason),
			der.OctetString(der.Enumerated(int64(e.Reason))),
		)
		parts = append(parts, der.Sequence(reasonExt))
	}
	return der.Sequence(parts...), nil
}

// legacyTBS rebuilds the tbsCertList exactly as the pre-streaming Create
// did (one-shot der.Sequence over materialized parts).
func legacyTBS(tmpl *Template, issuer *x509x.Certificate, entries []legacyEntry) ([]byte, error) {
	tbsParts := [][]byte{
		der.Int(1),
		der.Sequence(der.EncodeOID(x509x.OIDSignatureECDSAWithSHA256)),
		issuer.RawSubject,
		der.Time(tmpl.ThisUpdate),
	}
	if !tmpl.NextUpdate.IsZero() {
		tbsParts = append(tbsParts, der.Time(tmpl.NextUpdate))
	}
	if len(entries) > 0 {
		enc := make([][]byte, len(entries))
		for i, e := range entries {
			b, err := legacyEncodeEntry(e)
			if err != nil {
				return nil, err
			}
			enc[i] = b
		}
		tbsParts = append(tbsParts, der.Sequence(enc...))
	}
	if tmpl.Number != nil {
		numExt := der.Sequence(
			der.EncodeOID(x509x.OIDExtCRLNumber),
			der.OctetString(der.Integer(tmpl.Number)),
		)
		tbsParts = append(tbsParts, der.Explicit(0, der.Sequence(numExt)))
	}
	return der.Sequence(tbsParts...), nil
}

func legacyParseAlgID(v der.Value) (der.OID, error) {
	fields, err := v.Sequence()
	if err != nil || len(fields) < 1 {
		return nil, errors.New("legacy: AlgorithmIdentifier")
	}
	return fields[0].OID()
}

func legacyParseExtension(v der.Value) (oid der.OID, critical bool, value []byte, err error) {
	fields, err := v.Sequence()
	if err != nil || len(fields) < 2 || len(fields) > 3 {
		return nil, false, nil, errors.New("legacy: extension")
	}
	if oid, err = fields[0].OID(); err != nil {
		return nil, false, nil, err
	}
	vi := 1
	if len(fields) == 3 {
		if critical, err = fields[1].Bool(); err != nil {
			return nil, false, nil, err
		}
		vi = 2
	}
	if value, err = fields[vi].OctetString(); err != nil {
		return nil, false, nil, err
	}
	return oid, critical, value, nil
}

func legacyParseEntry(v der.Value) (legacyEntry, error) {
	fields, err := v.Sequence()
	if err != nil || len(fields) < 2 {
		return legacyEntry{}, errors.New("legacy: revoked entry")
	}
	e := legacyEntry{Reason: ReasonAbsent}
	if e.Serial, err = legacyInteger(fields[0]); err != nil {
		return legacyEntry{}, err
	}
	if e.RevokedAt, err = legacyTime(fields[1]); err != nil {
		return legacyEntry{}, err
	}
	if len(fields) >= 3 {
		exts, err := fields[2].Sequence()
		if err != nil {
			return legacyEntry{}, err
		}
		for _, ext := range exts {
			oid, critical, value, err := legacyParseExtension(ext)
			if err != nil {
				return legacyEntry{}, err
			}
			if oid.Equal(x509x.OIDExtCRLReason) {
				rv, rest, err := der.Parse(value)
				if err != nil || len(rest) != 0 {
					return legacyEntry{}, errors.New("legacy: reasonCode")
				}
				code, err := legacyEnumerated(rv)
				if err != nil {
					return legacyEntry{}, err
				}
				e.Reason = Reason(code)
			} else if critical {
				return legacyEntry{}, errors.New("legacy: unhandled critical entry extension")
			}
		}
	}
	return e, nil
}

func legacyParseListExtensions(c *legacyCRL, wrapper der.Value) error {
	kids, err := wrapper.Children()
	if err != nil || len(kids) != 1 {
		return errors.New("legacy: extensions wrapper")
	}
	exts, err := kids[0].Sequence()
	if err != nil {
		return err
	}
	for _, ext := range exts {
		oid, critical, value, err := legacyParseExtension(ext)
		if err != nil {
			return err
		}
		switch {
		case oid.Equal(x509x.OIDExtCRLNumber):
			nv, rest, err := der.Parse(value)
			if err != nil || len(rest) != 0 {
				return errors.New("legacy: CRLNumber")
			}
			if c.Number, err = legacyInteger(nv); err != nil {
				return err
			}
		case oid.Equal(x509x.OIDExtAuthorityKeyID):
		default:
			if critical {
				return errors.New("legacy: unhandled critical extension")
			}
		}
	}
	return nil
}

func legacyParse(raw []byte) (*legacyCRL, error) {
	top, rest, err := der.Parse(raw)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, errors.New("legacy: trailing bytes")
	}
	outer, err := top.Sequence()
	if err != nil || len(outer) != 3 {
		return nil, errors.New("legacy: CertificateList must have 3 fields")
	}
	c := &legacyCRL{RawTBS: outer[0].Full}
	alg, err := legacyParseAlgID(outer[1])
	if err != nil {
		return nil, err
	}
	if !alg.Equal(x509x.OIDSignatureECDSAWithSHA256) {
		return nil, errors.New("legacy: unsupported signature algorithm")
	}
	if _, unused, err := outer[2].BitString(); err != nil || unused != 0 {
		return nil, errors.New("legacy: signature bits")
	}
	fields, err := outer[0].Sequence()
	if err != nil {
		return nil, errors.New("legacy: tbsCertList")
	}
	i := 0
	if i < len(fields) && fields[i].Tag == der.TagInteger && fields[i].Class == der.ClassUniversal {
		ver, err := legacyInt64(fields[i])
		if err != nil || ver != 1 {
			return nil, errors.New("legacy: unsupported version")
		}
		i++
	}
	if i >= len(fields) {
		return nil, errors.New("legacy: missing signature algorithm")
	}
	inner, err := legacyParseAlgID(fields[i])
	if err != nil {
		return nil, err
	}
	if !inner.Equal(alg) {
		return nil, errors.New("legacy: inner/outer mismatch")
	}
	i++
	if i >= len(fields) {
		return nil, errors.New("legacy: missing issuer")
	}
	if c.Issuer, err = x509x.ParseName(fields[i]); err != nil {
		return nil, err
	}
	i++
	if i >= len(fields) {
		return nil, errors.New("legacy: missing thisUpdate")
	}
	if c.ThisUpdate, err = legacyTime(fields[i]); err != nil {
		return nil, err
	}
	i++
	if i < len(fields) && fields[i].Class == der.ClassUniversal &&
		(fields[i].Tag == der.TagUTCTime || fields[i].Tag == der.TagGeneralizedTime) {
		if c.NextUpdate, err = legacyTime(fields[i]); err != nil {
			return nil, err
		}
		i++
	}
	if i < len(fields) && fields[i].Class == der.ClassUniversal && fields[i].Tag == der.TagSequence {
		entries, err := fields[i].Sequence()
		if err != nil {
			return nil, err
		}
		c.Entries = make([]legacyEntry, 0, len(entries))
		for _, ev := range entries {
			e, err := legacyParseEntry(ev)
			if err != nil {
				return nil, err
			}
			c.Entries = append(c.Entries, e)
		}
		i++
	}
	if i < len(fields) && fields[i].IsContext(0) {
		if err := legacyParseListExtensions(c, fields[i]); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// --- differential helpers ------------------------------------------------

func compactOf(e legacyEntry) []byte { return e.Serial.Bytes() }

func assertSameCRL(t *testing.T, raw []byte, want *legacyCRL, got *CRL) {
	t.Helper()
	if !bytes.Equal(want.RawTBS, got.RawTBS) {
		t.Fatal("RawTBS differs")
	}
	if !want.ThisUpdate.Equal(got.ThisUpdate) || !want.NextUpdate.Equal(got.NextUpdate) {
		t.Fatalf("validity: legacy [%v %v], streaming [%v %v]",
			want.ThisUpdate, want.NextUpdate, got.ThisUpdate, got.NextUpdate)
	}
	if (want.Number == nil) != (got.Number == nil) ||
		(want.Number != nil && want.Number.Cmp(got.Number) != 0) {
		t.Fatalf("number: legacy %v, streaming %v", want.Number, got.Number)
	}
	if len(want.Entries) != len(got.Entries) {
		t.Fatalf("entries: legacy %d, streaming %d", len(want.Entries), len(got.Entries))
	}
	for i, le := range want.Entries {
		ge := got.Entries[i]
		if !bytes.Equal(compactOf(le), ge.Serial) {
			t.Fatalf("entry %d serial: legacy %x, streaming %x", i, compactOf(le), ge.Serial)
		}
		if !le.RevokedAt.Equal(ge.RevokedAt) || le.Reason != ge.Reason {
			t.Fatalf("entry %d: legacy %+v, streaming %+v", i, le, ge)
		}
	}
	// The two lazy paths must agree with the eager one.
	var visited []Entry
	if err := Visit(raw, func(e Entry) error {
		visited = append(visited, Entry{
			Serial:    append([]byte(nil), e.Serial...),
			RevokedAt: e.RevokedAt,
			Reason:    e.Reason,
		})
		return nil
	}); err != nil {
		t.Fatalf("Visit rejected what Parse accepted: %v", err)
	}
	if len(visited) != len(got.Entries) {
		t.Fatalf("Visit yielded %d entries, Parse %d", len(visited), len(got.Entries))
	}
	it, err := NewIter(raw)
	if err != nil {
		t.Fatalf("NewIter rejected what Parse accepted: %v", err)
	}
	n := 0
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		if !bytes.Equal(e.Serial, visited[n].Serial) || !e.RevokedAt.Equal(visited[n].RevokedAt) || e.Reason != visited[n].Reason {
			t.Fatalf("Iter entry %d disagrees with Visit", n)
		}
		n++
	}
	if it.Err() != nil || n != len(visited) {
		t.Fatalf("Iter: n=%d err=%v", n, it.Err())
	}
}

func toCompactEntries(entries []legacyEntry) []Entry {
	out := make([]Entry, len(entries))
	for i, e := range entries {
		out[i] = Entry{Serial: e.Serial.Bytes(), RevokedAt: e.RevokedAt, Reason: e.Reason}
	}
	return out
}

// parityCorpus returns a spread of entry shapes: 1-byte serials, serials
// with a high bit (sign padding), multi-byte serials, every named reason,
// an out-of-range reason, and entries without a reason extension.
func parityCorpus() [][]legacyEntry {
	base := thisUpdate
	var big160 = new(big.Int).Lsh(big.NewInt(1), 160)
	return [][]legacyEntry{
		nil,
		{{Serial: big.NewInt(1), RevokedAt: base, Reason: ReasonAbsent}},
		{{Serial: big.NewInt(127), RevokedAt: base, Reason: ReasonUnspecified},
			{Serial: big.NewInt(128), RevokedAt: base.Add(-time.Hour), Reason: ReasonKeyCompromise},
			{Serial: big.NewInt(255), RevokedAt: base.Add(-2 * time.Hour), Reason: ReasonCACompromise}},
		{{Serial: big.NewInt(1 << 62), RevokedAt: base, Reason: ReasonAffiliationChanged},
			{Serial: big160, RevokedAt: base, Reason: ReasonSuperseded},
			{Serial: new(big.Int).Sub(big160, big.NewInt(1)), RevokedAt: base, Reason: ReasonCessationOfOperation}},
		{{Serial: big.NewInt(1000), RevokedAt: base, Reason: ReasonCertificateHold},
			{Serial: big.NewInt(1001), RevokedAt: base, Reason: ReasonRemoveFromCRL},
			{Serial: big.NewInt(1002), RevokedAt: base, Reason: ReasonPrivilegeWithdrawn},
			{Serial: big.NewInt(1003), RevokedAt: base, Reason: ReasonAACompromise},
			{Serial: big.NewInt(1004), RevokedAt: base, Reason: Reason(42)}},
		// GeneralizedTime revocation date (year >= 2050).
		{{Serial: big.NewInt(7), RevokedAt: time.Date(2055, 3, 1, 12, 30, 45, 0, time.UTC), Reason: ReasonKeyCompromise}},
	}
}

// --- parity tests --------------------------------------------------------

// TestStreamingEncoderParity: the pooled-builder Create must emit a TBS
// byte-identical to the legacy one-shot encoder, for every corpus shape,
// with and without NextUpdate/Number; and EncodeCache must produce the
// same entriesDER as concatenating legacy per-entry encodings, including
// when extended incrementally.
func TestStreamingEncoderParity(t *testing.T) {
	issuer, key := newCA(t)
	for ci, entries := range parityCorpus() {
		for _, variant := range []struct {
			name string
			tmpl Template
		}{
			{"full", Template{ThisUpdate: thisUpdate, NextUpdate: nextUpdate, Number: big.NewInt(99)}},
			{"noNext", Template{ThisUpdate: thisUpdate, Number: big.NewInt(1)}},
			{"noNumber", Template{ThisUpdate: thisUpdate, NextUpdate: nextUpdate}},
			{"bare", Template{ThisUpdate: thisUpdate}},
		} {
			tmpl := variant.tmpl
			tmpl.Entries = toCompactEntries(entries)
			raw, err := Create(&tmpl, issuer, key)
			if err != nil {
				t.Fatalf("corpus %d %s: Create: %v", ci, variant.name, err)
			}
			got, err := Parse(raw)
			if err != nil {
				t.Fatalf("corpus %d %s: Parse: %v", ci, variant.name, err)
			}
			wantTBS, err := legacyTBS(&tmpl, issuer, entries)
			if err != nil {
				t.Fatalf("corpus %d %s: legacyTBS: %v", ci, variant.name, err)
			}
			if !bytes.Equal(wantTBS, got.RawTBS) {
				t.Fatalf("corpus %d %s: TBS differs from legacy encoder", ci, variant.name)
			}
			if err := got.VerifySignature(issuer); err != nil {
				t.Fatalf("corpus %d %s: signature: %v", ci, variant.name, err)
			}
		}

		// EncodeCache vs concatenated legacy entries, grown one entry at
		// a time.
		var want []byte
		var ec EncodeCache
		compact := toCompactEntries(entries)
		for n := 0; n <= len(entries); n++ {
			gotDER, err := ec.Extend(compact[:n])
			if err != nil {
				t.Fatalf("corpus %d: Extend(%d): %v", ci, n, err)
			}
			if n > 0 {
				enc, err := legacyEncodeEntry(entries[n-1])
				if err != nil {
					t.Fatalf("corpus %d: legacy encode: %v", ci, err)
				}
				want = append(want, enc...)
			}
			if !bytes.Equal(want, gotDER) {
				t.Fatalf("corpus %d: EncodeCache at %d entries differs from legacy", ci, n)
			}
		}
	}
}

// TestStreamingEncoderRejectsBadSerials: both encoders must reject the
// same invalid serials.
func TestStreamingEncoderRejectsBadSerials(t *testing.T) {
	issuer, key := newCA(t)
	for _, bad := range [][]byte{nil, {}, {0}, {0, 0, 0}} {
		_, err := Create(&Template{ThisUpdate: thisUpdate,
			Entries: []Entry{{Serial: bad, RevokedAt: thisUpdate}}}, issuer, key)
		if err == nil {
			t.Errorf("Create accepted serial %x", bad)
		}
		_, lerr := legacyEncodeEntry(legacyEntry{Serial: new(big.Int).SetBytes(bad), RevokedAt: thisUpdate})
		if lerr == nil {
			t.Errorf("legacy accepted serial %x", bad)
		}
	}
}

// TestStreamingParserParityCorpus: every generated CRL parses to the same
// result through the legacy and streaming parsers, through Visit, and
// through Iter.
func TestStreamingParserParityCorpus(t *testing.T) {
	issuer, key := newCA(t)
	for ci, entries := range parityCorpus() {
		raw, err := Create(&Template{ThisUpdate: thisUpdate, NextUpdate: nextUpdate,
			Number: big.NewInt(int64(ci + 1)), Entries: toCompactEntries(entries)}, issuer, key)
		if err != nil {
			t.Fatal(err)
		}
		want, lerr := legacyParse(raw)
		got, gerr := Parse(raw)
		if lerr != nil || gerr != nil {
			t.Fatalf("corpus %d: legacy err %v, streaming err %v", ci, lerr, gerr)
		}
		assertSameCRL(t, raw, want, got)
		// EntrySize must agree with the legacy per-entry encoding length.
		for i, le := range entries {
			enc, err := legacyEncodeEntry(le)
			if err != nil {
				t.Fatal(err)
			}
			if got := EntrySize(toCompactEntries(entries)[i]); got != len(enc) {
				t.Fatalf("corpus %d entry %d: EntrySize %d, legacy %d", ci, i, got, len(enc))
			}
		}
	}
}

// TestStreamingParserParityMutations drives both parsers over thousands of
// bit-flipped and truncated CRLs: the accept/reject decision must match
// exactly, and on accept the parsed entries must match.
func TestStreamingParserParityMutations(t *testing.T) {
	issuer, key := newCA(t)
	var seeds [][]byte
	for ci, entries := range parityCorpus() {
		raw, err := Create(&Template{ThisUpdate: thisUpdate, NextUpdate: nextUpdate,
			Number: big.NewInt(int64(ci + 1)), Entries: toCompactEntries(entries)}, issuer, key)
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, raw)
	}
	rng := rand.New(rand.NewSource(11))
	iters := 4000
	if testing.Short() {
		iters = 500
	}
	for i := 0; i < iters; i++ {
		seed := seeds[rng.Intn(len(seeds))]
		data := append([]byte(nil), seed...)
		for flips := rng.Intn(6) + 1; flips > 0; flips-- {
			data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
		}
		if rng.Intn(5) == 0 {
			data = data[:rng.Intn(len(data))]
		}
		assertParityOn(t, data)
	}
}

// assertParityOn compares the legacy and streaming parsers on one input.
func assertParityOn(t *testing.T, data []byte) {
	t.Helper()
	want, lerr := legacyParse(data)
	got, gerr := Parse(data)
	if (lerr == nil) != (gerr == nil) {
		t.Fatalf("accept/reject mismatch on %x: legacy err %v, streaming err %v", data, lerr, gerr)
	}
	if lerr == nil {
		assertSameCRL(t, data, want, got)
	} else if gerr == nil {
		t.Fatalf("streaming accepted what legacy rejected: %x", data)
	}
}

// TestStreamingParserParityHeartbleedScale checks full equality on a CRL
// the size of GlobalSign's post-Heartbleed mass revocation.
func TestStreamingParserParityHeartbleedScale(t *testing.T) {
	n := 500000
	if testing.Short() {
		n = 20000
	}
	issuer, key := newCA(t)
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{
			Serial:    big.NewInt(int64(i) + 1000000).Bytes(),
			RevokedAt: thisUpdate.Add(-time.Duration(i%48) * time.Hour),
			Reason:    Reason([]Reason{ReasonAbsent, ReasonUnspecified, ReasonKeyCompromise, ReasonSuperseded}[i%4]),
		}
	}
	raw, err := Create(&Template{ThisUpdate: thisUpdate, NextUpdate: nextUpdate,
		Number: big.NewInt(7), Entries: entries}, issuer, key)
	if err != nil {
		t.Fatal(err)
	}
	want, lerr := legacyParse(raw)
	got, gerr := Parse(raw)
	if lerr != nil || gerr != nil {
		t.Fatalf("legacy err %v, streaming err %v", lerr, gerr)
	}
	if len(want.Entries) != n || len(got.Entries) != n {
		t.Fatalf("entry counts: legacy %d, streaming %d", len(want.Entries), len(got.Entries))
	}
	for i := range want.Entries {
		if !bytes.Equal(want.Entries[i].Serial.Bytes(), got.Entries[i].Serial) ||
			!want.Entries[i].RevokedAt.Equal(got.Entries[i].RevokedAt) ||
			want.Entries[i].Reason != got.Entries[i].Reason {
			t.Fatalf("entry %d differs", i)
		}
	}
	if err := got.VerifySignature(issuer); err != nil {
		t.Fatalf("signature: %v", err)
	}
	// And the incremental encoder agrees with the one-shot TBS: re-sign
	// from an EncodeCache extended in two steps and compare TBS bytes.
	var ec EncodeCache
	if _, err := ec.Extend(entries[:n/2]); err != nil {
		t.Fatal(err)
	}
	entriesDER, err := ec.Extend(entries)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &Template{ThisUpdate: thisUpdate, NextUpdate: nextUpdate, Number: big.NewInt(7)}
	raw2, err := CreateEncoded(tmpl, entriesDER, issuer, key)
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := Parse(raw2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reparsed.RawTBS, got.RawTBS) {
		t.Fatal("incrementally encoded TBS differs from one-shot TBS")
	}
}

// TestParseAllocsPerEntry pins the tentpole property: parsing scales with
// O(1) allocations per entry (the entry slice, the shell, and small
// fixed-count allocations only — far below one per entry).
func TestParseAllocsPerEntry(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	issuer, key := newCA(t)
	const n = 2000
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Serial: big.NewInt(int64(i) + 5000).Bytes(),
			RevokedAt: thisUpdate, Reason: ReasonKeyCompromise}
	}
	raw, err := Create(&Template{ThisUpdate: thisUpdate, NextUpdate: nextUpdate,
		Number: big.NewInt(1), Entries: entries}, issuer, key)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := Parse(raw); err != nil {
			t.Fatal(err)
		}
	})
	// Legacy was ~15 allocations per entry; the streaming parser does the
	// entry slice plus a fixed number of shell allocations.
	if allocs > 64 {
		t.Errorf("Parse of %d entries allocated %.0f times; want O(1) total", n, allocs)
	}
	// Visit must not even allocate the entry slice.
	vAllocs := testing.AllocsPerRun(10, func() {
		count := 0
		if err := Visit(raw, func(e Entry) error { count++; return nil }); err != nil {
			t.Fatal(err)
		}
		if count != n {
			t.Fatalf("visited %d", count)
		}
	})
	if vAllocs > 64 {
		t.Errorf("Visit allocated %.0f times; want O(1) total", vAllocs)
	}
}
