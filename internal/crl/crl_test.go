package crl

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"math/big"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/x509x"
)

// sb returns the compact serial magnitude for a small test serial.
func sb(v int64) []byte { return big.NewInt(v).Bytes() }

var (
	thisUpdate = time.Date(2014, 10, 2, 0, 0, 0, 0, time.UTC)
	nextUpdate = time.Date(2014, 10, 3, 0, 0, 0, 0, time.UTC)
)

func newCA(t *testing.T) (*x509x.Certificate, *ecdsa.PrivateKey) {
	t.Helper()
	key, err := x509x.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	tmpl := x509x.NewTemplate(big.NewInt(1), x509x.Name{CommonName: "CRL Test CA", Organization: "Test"},
		time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC), time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
	tmpl.IsCA = true
	tmpl.KeyUsage = x509x.KeyUsageCertSign | x509x.KeyUsageCRLSign
	raw, err := x509x.Create(tmpl, nil, key, &key.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := x509x.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	return cert, key
}

func build(t *testing.T, issuer *x509x.Certificate, key *ecdsa.PrivateKey, entries []Entry) *CRL {
	t.Helper()
	raw, err := Create(&Template{
		ThisUpdate: thisUpdate,
		NextUpdate: nextUpdate,
		Number:     big.NewInt(17),
		Entries:    entries,
	}, issuer, key)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRoundTrip(t *testing.T) {
	issuer, key := newCA(t)
	entries := []Entry{
		{Serial: sb(100), RevokedAt: thisUpdate.Add(-24 * time.Hour), Reason: ReasonKeyCompromise},
		{Serial: sb(200), RevokedAt: thisUpdate.Add(-48 * time.Hour), Reason: ReasonAbsent},
		{Serial: new(big.Int).Lsh(big.NewInt(1), 160).Bytes(), RevokedAt: thisUpdate.Add(-time.Hour), Reason: ReasonCessationOfOperation},
	}
	c := build(t, issuer, key, entries)
	if len(c.Entries) != 3 {
		t.Fatalf("entries = %d", len(c.Entries))
	}
	if c.Entries[0].Reason != ReasonKeyCompromise || c.Entries[1].Reason != ReasonAbsent {
		t.Errorf("reasons = %v, %v", c.Entries[0].Reason, c.Entries[1].Reason)
	}
	if c.Number.Int64() != 17 {
		t.Errorf("CRL number = %v", c.Number)
	}
	if !c.ThisUpdate.Equal(thisUpdate) || !c.NextUpdate.Equal(nextUpdate) {
		t.Errorf("validity [%v, %v]", c.ThisUpdate, c.NextUpdate)
	}
	if c.Issuer.CommonName != "CRL Test CA" {
		t.Errorf("issuer = %v", c.Issuer)
	}
	if err := c.VerifySignature(issuer); err != nil {
		t.Errorf("signature: %v", err)
	}
}

func TestLookupAndContains(t *testing.T) {
	issuer, key := newCA(t)
	var entries []Entry
	for i := 1; i <= 50; i++ {
		entries = append(entries, Entry{Serial: sb(int64(i * 7)), RevokedAt: thisUpdate, Reason: ReasonUnspecified})
	}
	c := build(t, issuer, key, entries)
	e, ok := c.Lookup(big.NewInt(21))
	if !ok || e.SerialBig().Int64() != 21 {
		t.Errorf("Lookup(21) = %+v, %v", e, ok)
	}
	if c.Contains(big.NewInt(22)) {
		t.Error("Contains(22) should be false")
	}
}

func TestEmptyCRL(t *testing.T) {
	issuer, key := newCA(t)
	c := build(t, issuer, key, nil)
	if len(c.Entries) != 0 {
		t.Errorf("entries = %d", len(c.Entries))
	}
	if c.Contains(big.NewInt(1)) {
		t.Error("empty CRL contains something")
	}
	if err := c.VerifySignature(issuer); err != nil {
		t.Errorf("signature: %v", err)
	}
}

func TestCurrentAt(t *testing.T) {
	issuer, key := newCA(t)
	c := build(t, issuer, key, nil)
	if !c.CurrentAt(thisUpdate) || !c.CurrentAt(nextUpdate) {
		t.Error("boundaries should be current")
	}
	if c.CurrentAt(thisUpdate.Add(-time.Second)) || c.CurrentAt(nextUpdate.Add(time.Second)) {
		t.Error("outside window should not be current")
	}
	// No nextUpdate: never expires.
	raw, err := Create(&Template{ThisUpdate: thisUpdate}, issuer, key)
	if err != nil {
		t.Fatal(err)
	}
	open, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !open.CurrentAt(thisUpdate.AddDate(10, 0, 0)) {
		t.Error("CRL without nextUpdate should not expire")
	}
}

func TestSignatureRejectsWrongIssuer(t *testing.T) {
	issuer, key := newCA(t)
	other, _ := newCA(t)
	c := build(t, issuer, key, nil)
	if err := c.VerifySignature(other); err == nil {
		t.Error("accepted CRL signature from wrong issuer")
	}
	// Tamper with an entry: signature must fail.
	c2 := build(t, issuer, key, []Entry{{Serial: sb(5), RevokedAt: thisUpdate, Reason: ReasonAbsent}})
	c2.RawTBS = append([]byte(nil), c2.RawTBS...)
	c2.RawTBS[len(c2.RawTBS)-1] ^= 0x01
	if err := c2.VerifySignature(issuer); err == nil {
		t.Error("accepted tampered TBS")
	}
}

func TestCreateValidation(t *testing.T) {
	issuer, key := newCA(t)
	_, err := Create(&Template{ThisUpdate: nextUpdate, NextUpdate: thisUpdate}, issuer, key)
	if err == nil {
		t.Error("accepted inverted validity")
	}
	_, err = Create(&Template{ThisUpdate: thisUpdate, Entries: []Entry{{Serial: []byte{0}, RevokedAt: thisUpdate}}}, issuer, key)
	if err == nil {
		t.Error("accepted zero serial")
	}
}

func TestStdlibParsesOurCRL(t *testing.T) {
	issuer, key := newCA(t)
	entries := []Entry{
		{Serial: sb(1234), RevokedAt: thisUpdate.Add(-time.Hour), Reason: ReasonKeyCompromise},
		{Serial: sb(5678), RevokedAt: thisUpdate.Add(-2 * time.Hour), Reason: ReasonAbsent},
	}
	c := build(t, issuer, key, entries)
	std, err := x509.ParseRevocationList(c.Raw)
	if err != nil {
		t.Fatalf("stdlib rejected our CRL: %v", err)
	}
	if len(std.RevokedCertificateEntries) != 2 {
		t.Fatalf("stdlib saw %d entries", len(std.RevokedCertificateEntries))
	}
	if std.RevokedCertificateEntries[0].SerialNumber.Int64() != 1234 {
		t.Errorf("stdlib serial = %v", std.RevokedCertificateEntries[0].SerialNumber)
	}
	if std.RevokedCertificateEntries[0].ReasonCode != int(ReasonKeyCompromise) {
		t.Errorf("stdlib reason = %d", std.RevokedCertificateEntries[0].ReasonCode)
	}
	if std.Number.Int64() != 17 {
		t.Errorf("stdlib CRL number = %v", std.Number)
	}
	stdIssuer, err := x509.ParseCertificate(issuer.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := std.CheckSignatureFrom(stdIssuer); err != nil {
		t.Errorf("stdlib signature check failed: %v", err)
	}
}

func TestWeParseStdlibCRL(t *testing.T) {
	key, err := x509x.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	caTmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(9),
		Subject:               pkix.Name{CommonName: "Std CRL CA"},
		NotBefore:             time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:              time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC),
		IsCA:                  true,
		BasicConstraintsValid: true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageCRLSign,
		SignatureAlgorithm:    x509.ECDSAWithSHA256,
	}
	caRaw, err := x509.CreateCertificate(rand.Reader, caTmpl, caTmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	caStd, err := x509.ParseCertificate(caRaw)
	if err != nil {
		t.Fatal(err)
	}
	crlRaw, err := x509.CreateRevocationList(rand.Reader, &x509.RevocationList{
		Number:     big.NewInt(3),
		ThisUpdate: thisUpdate,
		NextUpdate: nextUpdate,
		RevokedCertificateEntries: []x509.RevocationListEntry{
			{SerialNumber: big.NewInt(42), RevocationTime: thisUpdate.Add(-time.Hour), ReasonCode: 1},
			{SerialNumber: big.NewInt(43), RevocationTime: thisUpdate.Add(-time.Hour)},
		},
	}, caStd, key)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Parse(crlRaw)
	if err != nil {
		t.Fatalf("our parser rejected stdlib CRL: %v", err)
	}
	if len(c.Entries) != 2 {
		t.Fatalf("entries = %d", len(c.Entries))
	}
	if c.Entries[0].SerialBig().Int64() != 42 || c.Entries[0].Reason != ReasonKeyCompromise {
		t.Errorf("entry 0 = %+v", c.Entries[0])
	}
	if c.Number.Int64() != 3 {
		t.Errorf("number = %v", c.Number)
	}
	ourCA, err := x509x.Parse(caRaw)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.VerifySignature(ourCA); err != nil {
		t.Errorf("verify stdlib CRL with our code: %v", err)
	}
}

func TestEntrySizeMatchesEncoding(t *testing.T) {
	// The per-entry size drives Figure 5; EntrySize must agree exactly
	// with what Create emits.
	issuer, key := newCA(t)
	entries := []Entry{
		{Serial: sb(1), RevokedAt: thisUpdate, Reason: ReasonAbsent},
		{Serial: new(big.Int).Exp(big.NewInt(10), big.NewInt(48), nil).Bytes(), RevokedAt: thisUpdate, Reason: ReasonKeyCompromise},
	}
	both := build(t, issuer, key, entries)
	// The revokedCertificates SEQUENCE content must be exactly the sum of
	// the per-entry sizes. Re-encode each parsed entry and compare.
	var sum int
	for _, e := range both.Entries {
		sum += EntrySize(e)
	}
	want := EntrySize(entries[0]) + EntrySize(entries[1])
	if sum != want {
		t.Errorf("sum of entry sizes %d, want %d", sum, want)
	}
	// And the whole CRL must shrink by exactly EntrySize when an entry is
	// dropped, modulo DER length-field growth: verify via direct
	// re-creation instead of byte arithmetic.
	raw1, err := Create(&Template{ThisUpdate: thisUpdate, Entries: entries[:1]}, issuer, key)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := Parse(raw1)
	if err != nil {
		t.Fatal(err)
	}
	if got := EntrySize(c1.Entries[0]); got != EntrySize(entries[0]) {
		t.Errorf("round-tripped entry size %d, want %d", got, EntrySize(entries[0]))
	}
}

func TestEntrySizeScale(t *testing.T) {
	// A typical small-serial entry with a reason code should be in the
	// ballpark of the paper's 38-byte average.
	e := Entry{Serial: sb(1 << 62), RevokedAt: thisUpdate, Reason: ReasonUnspecified}
	size := EntrySize(e)
	if size < 25 || size > 50 {
		t.Errorf("EntrySize = %d, expected ~38", size)
	}
	if EntrySize(Entry{Serial: nil, RevokedAt: thisUpdate}) != 0 {
		t.Error("invalid entry should size to 0")
	}
	if EntrySize(Entry{Serial: []byte{0, 0}, RevokedAt: thisUpdate}) != 0 {
		t.Error("zero serial should size to 0")
	}
}

// reasonNames mirrors the RFC 5280 names Reason.String must produce; the
// production path is a switch (no map, no allocation), so the table lives
// here as the parity oracle.
var reasonNames = map[Reason]string{
	ReasonAbsent:               "(absent)",
	ReasonUnspecified:          "unspecified",
	ReasonKeyCompromise:        "keyCompromise",
	ReasonCACompromise:         "cACompromise",
	ReasonAffiliationChanged:   "affiliationChanged",
	ReasonSuperseded:           "superseded",
	ReasonCessationOfOperation: "cessationOfOperation",
	ReasonCertificateHold:      "certificateHold",
	ReasonRemoveFromCRL:        "removeFromCRL",
	ReasonPrivilegeWithdrawn:   "privilegeWithdrawn",
	ReasonAACompromise:         "aACompromise",
}

func TestReasonStrings(t *testing.T) {
	if ReasonKeyCompromise.String() != "keyCompromise" {
		t.Errorf("String = %q", ReasonKeyCompromise)
	}
	if Reason(99).String() != "reason(99)" {
		t.Errorf("unknown reason = %q", Reason(99))
	}
	for r, want := range reasonNames {
		if got := r.String(); got != want {
			t.Errorf("Reason(%d).String() = %q, want %q", int(r), got, want)
		}
	}
}

func TestCRLSetEligible(t *testing.T) {
	eligible := []Reason{ReasonAbsent, ReasonUnspecified, ReasonKeyCompromise, ReasonCACompromise, ReasonAACompromise}
	for _, r := range eligible {
		if !r.CRLSetEligible() {
			t.Errorf("%v should be CRLSet-eligible", r)
		}
	}
	ineligible := []Reason{ReasonAffiliationChanged, ReasonSuperseded, ReasonCessationOfOperation, ReasonCertificateHold, ReasonPrivilegeWithdrawn}
	for _, r := range ineligible {
		if r.CRLSetEligible() {
			t.Errorf("%v should not be CRLSet-eligible", r)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	issuer, key := newCA(t)
	c := build(t, issuer, key, nil)
	for name, b := range map[string][]byte{
		"empty":     {},
		"trailing":  append(append([]byte{}, c.Raw...), 0),
		"truncated": c.Raw[:len(c.Raw)-3],
	} {
		if _, err := Parse(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// Property: every generated entry list round-trips with order, serials,
// and reasons preserved.
func TestEntriesRoundTripProperty(t *testing.T) {
	issuer, key := newCA(t)
	f := func(serials []uint32, reasonsRaw []uint8) bool {
		var entries []Entry
		for i, s := range serials {
			if s == 0 {
				continue
			}
			r := ReasonAbsent
			if i < len(reasonsRaw) {
				switch reasonsRaw[i] % 4 {
				case 0:
					r = ReasonAbsent
				case 1:
					r = ReasonUnspecified
				case 2:
					r = ReasonKeyCompromise
				case 3:
					r = ReasonSuperseded
				}
			}
			entries = append(entries, Entry{Serial: sb(int64(s)), RevokedAt: thisUpdate, Reason: r})
		}
		raw, err := Create(&Template{ThisUpdate: thisUpdate, NextUpdate: nextUpdate, Entries: entries}, issuer, key)
		if err != nil {
			return false
		}
		c, err := Parse(raw)
		if err != nil || len(c.Entries) != len(entries) {
			return false
		}
		for i, e := range entries {
			got := c.Entries[i]
			if !bytes.Equal(got.Serial, e.Serial) || got.Reason != e.Reason || !got.RevokedAt.Equal(e.RevokedAt) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
