// Package crl implements RFC 5280 certificate revocation lists from
// scratch: construction and signing by a CA, strict parsing, signature
// verification, reason codes, and the exact entry-size accounting the
// paper's CRL-cost analyses (Figures 5 and 6) rely on.
//
// The data path is built for Heartbleed-scale lists (GoDaddy's
// post-Heartbleed CRL was ~41 MB, §5.2): Parse materializes entries with
// compact byte-slice serials that alias the raw buffer — no per-entry heap
// allocation — while Visit and Iter stream entries without materializing
// a slice at all, and EncodeCache lets a CA's daily re-sign DER-encode
// only the entries added since the previous signing.
package crl

import (
	"bytes"
	"crypto/ecdsa"
	"errors"
	"fmt"
	"math/big"
	"sync"
	"time"

	"repro/internal/der"
	"repro/internal/x509x"
)

// Reason is a CRL reason code (RFC 5280 §5.3.1). The paper's CRLSet
// analysis distinguishes entries carrying *no* reason-code extension from
// entries with reason Unspecified(0); ReasonAbsent models the former.
type Reason int

// Reason codes.
const (
	ReasonAbsent               Reason = -1
	ReasonUnspecified          Reason = 0
	ReasonKeyCompromise        Reason = 1
	ReasonCACompromise         Reason = 2
	ReasonAffiliationChanged   Reason = 3
	ReasonSuperseded           Reason = 4
	ReasonCessationOfOperation Reason = 5
	ReasonCertificateHold      Reason = 6
	ReasonRemoveFromCRL        Reason = 8
	ReasonPrivilegeWithdrawn   Reason = 9
	ReasonAACompromise         Reason = 10
)

func (r Reason) String() string {
	switch r {
	case ReasonAbsent:
		return "(absent)"
	case ReasonUnspecified:
		return "unspecified"
	case ReasonKeyCompromise:
		return "keyCompromise"
	case ReasonCACompromise:
		return "cACompromise"
	case ReasonAffiliationChanged:
		return "affiliationChanged"
	case ReasonSuperseded:
		return "superseded"
	case ReasonCessationOfOperation:
		return "cessationOfOperation"
	case ReasonCertificateHold:
		return "certificateHold"
	case ReasonRemoveFromCRL:
		return "removeFromCRL"
	case ReasonPrivilegeWithdrawn:
		return "privilegeWithdrawn"
	case ReasonAACompromise:
		return "aACompromise"
	default:
		return fmt.Sprintf("reason(%d)", int(r))
	}
}

// CRLSetEligible reports whether a revocation with this reason code is
// eligible for inclusion in Google's CRLSet: no reason code, Unspecified,
// KeyCompromise, CACompromise, or AACompromise (§7.1).
func (r Reason) CRLSetEligible() bool {
	switch r {
	case ReasonAbsent, ReasonUnspecified, ReasonKeyCompromise, ReasonCACompromise, ReasonAACompromise:
		return true
	}
	return false
}

// Entry is one revoked certificate in a CRL.
type Entry struct {
	// Serial is the serial number's big-endian magnitude with no leading
	// zeros — exactly what big.Int.Bytes produces, and the key every
	// consumer (CRL lookup, revdb, CRLSet, Bloom filters) indexes by.
	// Entries produced by Parse alias the CRL's Raw buffer; do not
	// mutate. The handful of RFC-violating CRLs carrying negative
	// serials collapse to the magnitude here, which is the value the
	// legacy big.Int path exposed to all consumers anyway.
	Serial    []byte
	RevokedAt time.Time
	Reason    Reason
}

// SerialBig returns the serial as a freshly allocated big.Int, for callers
// on the big.Int API (certificate records, OCSP).
func (e Entry) SerialBig() *big.Int { return new(big.Int).SetBytes(e.Serial) }

// CRL is a parsed certificate revocation list.
type CRL struct {
	Raw       []byte
	RawTBS    []byte
	RawIssuer []byte

	Issuer     x509x.Name
	ThisUpdate time.Time
	NextUpdate time.Time // zero when absent
	Number     *big.Int  // nil when absent
	// Entries holds the revoked certificates in CRL order. Treat as
	// read-only; serials alias Raw.
	Entries []Entry

	Signature          []byte
	SignatureAlgorithm der.OID

	// indexOnce guards the lazy bySerial build: parsed CRLs are shared
	// across snapshots (the crawler's parse cache) and goroutines.
	indexOnce sync.Once
	bySerial  map[string]int
}

// NumEntries returns the number of revoked entries.
func (c *CRL) NumEntries() int { return len(c.Entries) }

// EntryAt returns entry i in CRL order.
func (c *CRL) EntryAt(i int) Entry { return c.Entries[i] }

// VisitEntries calls fn for each entry in CRL order until fn returns
// false — iterator-style access without exposing the backing slice.
func (c *CRL) VisitEntries(fn func(Entry) bool) {
	for _, e := range c.Entries {
		if !fn(e) {
			return
		}
	}
}

// Lookup returns the entry for serial, if present.
func (c *CRL) Lookup(serial *big.Int) (Entry, bool) {
	return c.LookupSerial(serial.Bytes())
}

// LookupSerial is Lookup keyed by the compact big-endian serial magnitude
// (what Entry.Serial holds); it does not allocate once the index is
// built, which is what keeps a warm browser-cache membership check off
// the allocator entirely.
func (c *CRL) LookupSerial(serial []byte) (Entry, bool) {
	c.indexOnce.Do(func() {
		c.bySerial = make(map[string]int, len(c.Entries))
		for i, e := range c.Entries {
			c.bySerial[string(e.Serial)] = i
		}
	})
	i, ok := c.bySerial[string(serial)]
	if !ok {
		return Entry{}, false
	}
	return c.Entries[i], true
}

// Contains reports whether serial is revoked by this CRL.
func (c *CRL) Contains(serial *big.Int) bool {
	_, ok := c.Lookup(serial)
	return ok
}

// ContainsSerial is Contains keyed by the compact serial magnitude.
func (c *CRL) ContainsSerial(serial []byte) bool {
	_, ok := c.LookupSerial(serial)
	return ok
}

// CurrentAt reports whether the CRL is within its validity window at t.
// A CRL with no nextUpdate is treated as never expiring.
func (c *CRL) CurrentAt(t time.Time) bool {
	if t.Before(c.ThisUpdate) {
		return false
	}
	return c.NextUpdate.IsZero() || !t.After(c.NextUpdate)
}

// VerifySignature checks the CRL signature against the issuer certificate.
func (c *CRL) VerifySignature(issuer *x509x.Certificate) error {
	if !x509x.NamesEqual(c.RawIssuer, issuer.RawSubject) {
		return fmt.Errorf("crl: issuer %q does not match certificate subject %q", c.Issuer, issuer.Subject)
	}
	return x509x.VerifyDigest(issuer.PublicKey, c.RawTBS, c.Signature)
}

// --- Encoding ---

// Template describes a CRL to be created.
type Template struct {
	ThisUpdate time.Time
	NextUpdate time.Time // zero to omit
	Number     *big.Int  // nil to omit the CRLNumber extension
	Entries    []Entry
}

// Create builds and signs a CRL issued by the given CA certificate.
func Create(tmpl *Template, issuer *x509x.Certificate, key *ecdsa.PrivateKey) ([]byte, error) {
	var entriesDER []byte
	if len(tmpl.Entries) > 0 {
		b := der.GetBuilder()
		defer der.PutBuilder(b)
		for _, e := range tmpl.Entries {
			if err := appendEntry(b, e); err != nil {
				return nil, err
			}
		}
		entriesDER = b.Bytes()
	}
	return CreateEncoded(tmpl, entriesDER, issuer, key)
}

// CreateEncoded is Create for callers that maintain the concatenated DER
// encodings of the revoked entries themselves (see EncodeCache): tmpl
// supplies everything except the entries, entriesDER supplies the entry
// bytes (empty omits the revokedCertificates field), and tmpl.Entries is
// ignored. The output is byte-identical to Create with the equivalent
// entry slice.
func CreateEncoded(tmpl *Template, entriesDER []byte, issuer *x509x.Certificate, key *ecdsa.PrivateKey) ([]byte, error) {
	if !tmpl.NextUpdate.IsZero() && tmpl.NextUpdate.Before(tmpl.ThisUpdate) {
		return nil, fmt.Errorf("crl: nextUpdate %v precedes thisUpdate %v", tmpl.NextUpdate, tmpl.ThisUpdate)
	}
	tbsParts := [][]byte{
		der.Int(1), // version v2
		algorithmIdentifier(),
		issuer.RawSubject,
		der.Time(tmpl.ThisUpdate),
	}
	if !tmpl.NextUpdate.IsZero() {
		tbsParts = append(tbsParts, der.Time(tmpl.NextUpdate))
	}
	if len(entriesDER) > 0 {
		tbsParts = append(tbsParts, der.Sequence(entriesDER))
	}
	if tmpl.Number != nil {
		numExt := der.Sequence(
			der.EncodeOID(x509x.OIDExtCRLNumber),
			der.OctetString(der.Integer(tmpl.Number)),
		)
		tbsParts = append(tbsParts, der.Explicit(0, der.Sequence(numExt)))
	}
	tbs := der.Sequence(tbsParts...)
	sig, err := x509x.SignDigest(key, tbs)
	if err != nil {
		return nil, fmt.Errorf("crl: signing: %v", err)
	}
	return der.Sequence(tbs, algorithmIdentifier(), der.BitString(sig)), nil
}

func algorithmIdentifier() []byte {
	return der.Sequence(der.EncodeOID(x509x.OIDSignatureECDSAWithSHA256))
}

var errBadSerial = errors.New("crl: entry needs a positive serial")

// appendEntry appends one revoked-certificate SEQUENCE to b, byte-
// identical to the historical der.Sequence-based encoder.
func appendEntry(b *der.Builder, e Entry) error {
	mag := e.Serial
	for len(mag) > 0 && mag[0] == 0 {
		mag = mag[1:]
	}
	if len(mag) == 0 {
		return errBadSerial
	}
	b.BeginSequence()
	b.UnsignedInteger(mag)
	b.Time(e.RevokedAt)
	if e.Reason != ReasonAbsent {
		if ri := int(e.Reason); ri >= 0 && ri < len(reasonExtDER) {
			b.Raw(reasonExtDER[ri])
		} else {
			b.Raw(genericReasonExt(e.Reason))
		}
	}
	b.End()
	return nil
}

// genericReasonExt encodes the crlEntryExtensions wrapper holding one
// reasonCode extension.
func genericReasonExt(r Reason) []byte {
	return der.Sequence(der.Sequence(
		der.EncodeOID(x509x.OIDExtCRLReason),
		der.OctetString(der.Enumerated(int64(r))),
	))
}

// reasonExtDER precomputes the extension wrapper for the standard reason
// codes, so encoding an entry allocates nothing.
var reasonExtDER = func() [11][]byte {
	var out [11][]byte
	for r := range out {
		out[r] = genericReasonExt(Reason(r))
	}
	return out
}()

// EncodeCache incrementally maintains the concatenated DER encodings of an
// append-only entry list, so a CA re-signing an N-entry shard daily only
// encodes the entries added since the previous signing.
//
// Extend must always be called with a list that extends (by append only)
// the previous call's list; when the prefix may have changed, Reset first.
// Returned slices stay valid and immutable across later Extend calls —
// growth appends beyond previously returned lengths and Reset drops the
// buffer rather than truncating it — so callers may hand them to signers
// without holding any lock.
type EncodeCache struct {
	count int
	b     der.Builder
}

// Reset empties the cache. The buffer is released, not reused: slices
// returned by earlier Extend calls remain valid.
func (ec *EncodeCache) Reset() { *ec = EncodeCache{} }

// Count returns the number of entries currently encoded.
func (ec *EncodeCache) Count() int { return ec.count }

// Size returns the encoded byte size of the cached entries.
func (ec *EncodeCache) Size() int { return ec.b.Len() }

// Extend appends encodings for entries[Count():] and returns the
// concatenated DER of all entries, suitable for CreateEncoded.
func (ec *EncodeCache) Extend(entries []Entry) ([]byte, error) {
	if ec.count > len(entries) {
		ec.Reset()
	}
	for _, e := range entries[ec.count:] {
		if err := appendEntry(&ec.b, e); err != nil {
			// A partial append would corrupt the prefix invariant.
			ec.Reset()
			return nil, err
		}
	}
	ec.count = len(entries)
	return ec.b.Bytes(), nil
}

// EntrySize returns the exact number of DER bytes the given entry occupies
// in a CRL, computed arithmetically (no encoding). CA serial-number policy
// (some CAs use serials of up to 49 decimal digits) drives per-entry size,
// which is why Figure 5's linear fit shows variance between CAs; the paper
// measures ~38 bytes per entry on average.
func EntrySize(e Entry) int {
	mag := e.Serial
	for len(mag) > 0 && mag[0] == 0 {
		mag = mag[1:]
	}
	if len(mag) == 0 {
		return 0 // invalid entry, mirroring the encoder's rejection
	}
	intLen := len(mag)
	if mag[0]&0x80 != 0 {
		intLen++ // sign pad
	}
	content := tlvSize(intLen) + timeSize(e.RevokedAt)
	if e.Reason != ReasonAbsent {
		if ri := int(e.Reason); ri >= 0 && ri < len(reasonExtDER) {
			content += len(reasonExtDER[ri])
		} else {
			content += len(genericReasonExt(e.Reason))
		}
	}
	return tlvSize(content)
}

// tlvSize returns the encoded size of a TLV with the given content length.
func tlvSize(contentLen int) int {
	switch {
	case contentLen < 0x80:
		return 2 + contentLen
	case contentLen < 0x100:
		return 3 + contentLen
	case contentLen < 0x10000:
		return 4 + contentLen
	case contentLen < 0x1000000:
		return 5 + contentLen
	default:
		return 6 + contentLen
	}
}

// timeSize returns the encoded size of der.Time(t).
func timeSize(t time.Time) int {
	y := t.UTC().Year()
	switch {
	case y >= 1950 && y < 2050:
		return 2 + 13 // UTCTime
	case y >= 0 && y <= 9999:
		return 2 + 15 // GeneralizedTime
	default:
		// Out-of-range years format to a different width; measure.
		return len(der.Time(t))
	}
}

// --- Decoding ---

// rawReasonOID is the full DER encoding of the reasonCode extension OID;
// entry parsing byte-compares against it (DER OID encodings are unique)
// instead of decoding each extension's OID into a fresh slice.
var rawReasonOID = der.EncodeOID(x509x.OIDExtCRLReason)

// Parse decodes a DER CRL. Unknown entry or list extensions are ignored
// unless critical. Entry serials alias raw; parsing allocates O(1) per
// entry (a single slice for the whole list).
func Parse(raw []byte) (*CRL, error) {
	c := &CRL{}
	revoked, has, err := parseShell(raw, c)
	if err != nil {
		return nil, err
	}
	if has {
		n, err := revoked.NumChildren()
		if err != nil {
			return nil, err
		}
		c.Entries = make([]Entry, 0, n)
		cur, _ := revoked.SequenceCursor()
		for cur.More() {
			ev, err := cur.Next()
			if err != nil {
				return nil, err
			}
			e, err := parseEntry(ev)
			if err != nil {
				return nil, err
			}
			c.Entries = append(c.Entries, e)
		}
	}
	return c, nil
}

// Visit streams the revoked entries of a DER CRL to fn in CRL order
// without materializing an entry slice, applying the same validation as
// Parse. A non-nil error from fn stops the walk and is returned. Entry
// serials alias raw and are only valid during the callback.
func Visit(raw []byte, fn func(Entry) error) error {
	var c CRL
	revoked, has, err := parseShell(raw, &c)
	if err != nil {
		return err
	}
	if !has {
		return nil
	}
	cur, err := revoked.SequenceCursor()
	if err != nil {
		return err
	}
	for cur.More() {
		ev, err := cur.Next()
		if err != nil {
			return err
		}
		e, err := parseEntry(ev)
		if err != nil {
			return err
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	return nil
}

// Iter is a pull-style iterator over a raw CRL's entries.
type Iter struct {
	// List carries the CRL's non-entry fields (issuer, validity window,
	// number, signature); its Entries slice is nil.
	List *CRL
	cur  der.Cursor
	err  error
}

// NewIter validates everything but the entry list of a raw CRL and
// returns an iterator over its entries. Entry parse errors surface
// through Err after Next returns false.
func NewIter(raw []byte) (*Iter, error) {
	c := &CRL{}
	revoked, has, err := parseShell(raw, c)
	if err != nil {
		return nil, err
	}
	it := &Iter{List: c}
	if has {
		if it.cur, err = revoked.SequenceCursor(); err != nil {
			return nil, err
		}
	}
	return it, nil
}

// Next returns the next entry, or ok=false when the list is exhausted or
// malformed (check Err). The entry's serial aliases the raw buffer.
func (it *Iter) Next() (Entry, bool) {
	if it.err != nil || !it.cur.More() {
		return Entry{}, false
	}
	ev, err := it.cur.Next()
	if err == nil {
		var e Entry
		if e, err = parseEntry(ev); err == nil {
			return e, true
		}
	}
	it.err = err
	return Entry{}, false
}

// Err returns the entry parse error that terminated iteration, if any.
func (it *Iter) Err() error { return it.err }

// parseShell validates and decodes everything except the revoked-entry
// list, which it returns as an unparsed Value for the caller to walk
// (materializing, streaming, or iterating).
func parseShell(raw []byte, c *CRL) (revoked der.Value, has bool, err error) {
	top, rest, err := der.Parse(raw)
	if err != nil {
		return der.Value{}, false, fmt.Errorf("crl: %v", err)
	}
	if len(rest) != 0 {
		return der.Value{}, false, errors.New("crl: trailing bytes")
	}
	outer, err := top.Sequence()
	if err != nil || len(outer) != 3 {
		return der.Value{}, false, fmt.Errorf("crl: CertificateList must have 3 fields (%v)", err)
	}
	c.Raw, c.RawTBS = top.Full, outer[0].Full

	if c.SignatureAlgorithm, err = parseAlgID(outer[1]); err != nil {
		return der.Value{}, false, err
	}
	if !c.SignatureAlgorithm.Equal(x509x.OIDSignatureECDSAWithSHA256) {
		return der.Value{}, false, fmt.Errorf("crl: unsupported signature algorithm %s", c.SignatureAlgorithm)
	}
	sig, unused, err := outer[2].BitString()
	if err != nil || unused != 0 {
		return der.Value{}, false, fmt.Errorf("crl: signature bits: %v", err)
	}
	c.Signature = sig

	fields, err := outer[0].Sequence()
	if err != nil {
		return der.Value{}, false, fmt.Errorf("crl: tbsCertList: %v", err)
	}
	i := 0
	// Optional version.
	if i < len(fields) && fields[i].Tag == der.TagInteger && fields[i].Class == der.ClassUniversal {
		ver, err := fields[i].Int64()
		if err != nil || ver != 1 {
			return der.Value{}, false, fmt.Errorf("crl: unsupported version %d", ver+1)
		}
		i++
	}
	if i >= len(fields) {
		return der.Value{}, false, errors.New("crl: missing signature algorithm")
	}
	inner, err := parseAlgID(fields[i])
	if err != nil {
		return der.Value{}, false, err
	}
	if !inner.Equal(c.SignatureAlgorithm) {
		return der.Value{}, false, errors.New("crl: inner/outer signature algorithm mismatch")
	}
	i++
	if i >= len(fields) {
		return der.Value{}, false, errors.New("crl: missing issuer")
	}
	c.RawIssuer = fields[i].Full
	if c.Issuer, err = x509x.ParseName(fields[i]); err != nil {
		return der.Value{}, false, err
	}
	i++
	if i >= len(fields) {
		return der.Value{}, false, errors.New("crl: missing thisUpdate")
	}
	if c.ThisUpdate, err = fields[i].Time(); err != nil {
		return der.Value{}, false, err
	}
	i++
	// Optional nextUpdate.
	if i < len(fields) && fields[i].Class == der.ClassUniversal &&
		(fields[i].Tag == der.TagUTCTime || fields[i].Tag == der.TagGeneralizedTime) {
		if c.NextUpdate, err = fields[i].Time(); err != nil {
			return der.Value{}, false, err
		}
		i++
	}
	// Optional revokedCertificates, left to the caller.
	if i < len(fields) && fields[i].Class == der.ClassUniversal && fields[i].Tag == der.TagSequence {
		revoked, has = fields[i], true
		i++
	}
	// Optional [0] crlExtensions.
	if i < len(fields) && fields[i].IsContext(0) {
		if err := c.parseListExtensions(fields[i]); err != nil {
			return der.Value{}, false, err
		}
	}
	return revoked, has, nil
}

func parseAlgID(v der.Value) (der.OID, error) {
	fields, err := v.Sequence()
	if err != nil || len(fields) < 1 {
		return nil, fmt.Errorf("crl: AlgorithmIdentifier: %v", err)
	}
	return fields[0].OID()
}

// parseEntry decodes one revoked-certificate SEQUENCE via the cursor —
// zero allocations for well-formed entries.
func parseEntry(v der.Value) (Entry, error) {
	cur, err := v.SequenceCursor()
	if err != nil {
		return Entry{}, fmt.Errorf("crl: revoked entry: %v", err)
	}
	e := Entry{Reason: ReasonAbsent}
	serialV, err := cur.Next()
	if err != nil {
		return Entry{}, fmt.Errorf("crl: revoked entry: %v", err)
	}
	mag, neg, err := serialV.IntegerBytes()
	if err != nil {
		return Entry{}, err
	}
	if neg {
		// RFC-violating negative serial: fall back through big.Int for
		// the magnitude every consumer keys on.
		i, err := serialV.Integer()
		if err != nil {
			return Entry{}, err
		}
		mag = i.Bytes()
	}
	e.Serial = mag
	if !cur.More() {
		return Entry{}, errors.New("crl: revoked entry: missing revocation time")
	}
	timeV, err := cur.Next()
	if err != nil {
		return Entry{}, fmt.Errorf("crl: revoked entry: %v", err)
	}
	if e.RevokedAt, err = timeV.Time(); err != nil {
		return Entry{}, err
	}
	if cur.More() {
		extsV, err := cur.Next()
		if err != nil {
			return Entry{}, fmt.Errorf("crl: revoked entry: %v", err)
		}
		ecur, err := extsV.SequenceCursor()
		if err != nil {
			return Entry{}, err
		}
		for ecur.More() {
			ev, err := ecur.Next()
			if err != nil {
				return Entry{}, err
			}
			if err := parseEntryExtension(ev, &e); err != nil {
				return Entry{}, err
			}
		}
		// Fields beyond the extensions are ignored but must still be
		// well-formed TLVs, as when the whole entry was ParseAll'd.
		for cur.More() {
			if _, err := cur.Next(); err != nil {
				return Entry{}, err
			}
		}
	}
	return e, nil
}

// parseEntryExtension handles one entry extension: the reasonCode fast
// path byte-compares the OID encoding; anything else is validated and
// ignored unless critical.
func parseEntryExtension(v der.Value, e *Entry) error {
	cur, err := v.SequenceCursor()
	if err != nil {
		return fmt.Errorf("crl: extension: %v", err)
	}
	var f [3]der.Value
	n := 0
	for cur.More() {
		if n == len(f) {
			return errors.New("crl: extension: too many fields")
		}
		if f[n], err = cur.Next(); err != nil {
			return fmt.Errorf("crl: extension: %v", err)
		}
		n++
	}
	if n < 2 {
		return errors.New("crl: extension: too few fields")
	}
	critical := false
	vi := 1
	if n == 3 {
		if critical, err = f[1].Bool(); err != nil {
			return err
		}
		vi = 2
	}
	value, err := f[vi].OctetString()
	if err != nil {
		return err
	}
	if bytes.Equal(f[0].Full, rawReasonOID) {
		rv, rest, err := der.Parse(value)
		if err != nil || len(rest) != 0 {
			return fmt.Errorf("crl: reasonCode: %v", err)
		}
		code, err := rv.Enumerated()
		if err != nil {
			return err
		}
		e.Reason = Reason(code)
		return nil
	}
	// Unknown extension: the OID must still be well-formed (the
	// materializing parser always decoded it), and critical ones are
	// fatal.
	oid, err := f[0].OID()
	if err != nil {
		return err
	}
	if critical {
		return fmt.Errorf("crl: unhandled critical entry extension %s", oid)
	}
	return nil
}

func (c *CRL) parseListExtensions(wrapper der.Value) error {
	kids, err := wrapper.Children()
	if err != nil || len(kids) != 1 {
		return errors.New("crl: extensions wrapper")
	}
	exts, err := kids[0].Sequence()
	if err != nil {
		return err
	}
	for _, ext := range exts {
		oid, critical, value, err := parseExtension(ext)
		if err != nil {
			return err
		}
		switch {
		case oid.Equal(x509x.OIDExtCRLNumber):
			nv, rest, err := der.Parse(value)
			if err != nil || len(rest) != 0 {
				return fmt.Errorf("crl: CRLNumber: %v", err)
			}
			if c.Number, err = nv.Integer(); err != nil {
				return err
			}
		case oid.Equal(x509x.OIDExtAuthorityKeyID):
			// Recognized but not needed: byte-matching on names is used.
		default:
			if critical {
				return fmt.Errorf("crl: unhandled critical extension %s", oid)
			}
		}
	}
	return nil
}

func parseExtension(v der.Value) (oid der.OID, critical bool, value []byte, err error) {
	fields, err := v.Sequence()
	if err != nil || len(fields) < 2 || len(fields) > 3 {
		return nil, false, nil, fmt.Errorf("crl: extension: %v", err)
	}
	if oid, err = fields[0].OID(); err != nil {
		return nil, false, nil, err
	}
	vi := 1
	if len(fields) == 3 {
		if critical, err = fields[1].Bool(); err != nil {
			return nil, false, nil, err
		}
		vi = 2
	}
	if value, err = fields[vi].OctetString(); err != nil {
		return nil, false, nil, err
	}
	return oid, critical, value, nil
}
