// Package crl implements RFC 5280 certificate revocation lists from
// scratch: construction and signing by a CA, strict parsing, signature
// verification, reason codes, and the exact entry-size accounting the
// paper's CRL-cost analyses (Figures 5 and 6) rely on.
package crl

import (
	"crypto/ecdsa"
	"errors"
	"fmt"
	"math/big"
	"sync"
	"time"

	"repro/internal/der"
	"repro/internal/x509x"
)

// Reason is a CRL reason code (RFC 5280 §5.3.1). The paper's CRLSet
// analysis distinguishes entries carrying *no* reason-code extension from
// entries with reason Unspecified(0); ReasonAbsent models the former.
type Reason int

// Reason codes.
const (
	ReasonAbsent               Reason = -1
	ReasonUnspecified          Reason = 0
	ReasonKeyCompromise        Reason = 1
	ReasonCACompromise         Reason = 2
	ReasonAffiliationChanged   Reason = 3
	ReasonSuperseded           Reason = 4
	ReasonCessationOfOperation Reason = 5
	ReasonCertificateHold      Reason = 6
	ReasonRemoveFromCRL        Reason = 8
	ReasonPrivilegeWithdrawn   Reason = 9
	ReasonAACompromise         Reason = 10
)

var reasonNames = map[Reason]string{
	ReasonAbsent:               "(absent)",
	ReasonUnspecified:          "unspecified",
	ReasonKeyCompromise:        "keyCompromise",
	ReasonCACompromise:         "cACompromise",
	ReasonAffiliationChanged:   "affiliationChanged",
	ReasonSuperseded:           "superseded",
	ReasonCessationOfOperation: "cessationOfOperation",
	ReasonCertificateHold:      "certificateHold",
	ReasonRemoveFromCRL:        "removeFromCRL",
	ReasonPrivilegeWithdrawn:   "privilegeWithdrawn",
	ReasonAACompromise:         "aACompromise",
}

func (r Reason) String() string {
	if s, ok := reasonNames[r]; ok {
		return s
	}
	return fmt.Sprintf("reason(%d)", int(r))
}

// CRLSetEligible reports whether a revocation with this reason code is
// eligible for inclusion in Google's CRLSet: no reason code, Unspecified,
// KeyCompromise, CACompromise, or AACompromise (§7.1).
func (r Reason) CRLSetEligible() bool {
	switch r {
	case ReasonAbsent, ReasonUnspecified, ReasonKeyCompromise, ReasonCACompromise, ReasonAACompromise:
		return true
	}
	return false
}

// Entry is one revoked certificate in a CRL.
type Entry struct {
	Serial    *big.Int
	RevokedAt time.Time
	Reason    Reason
}

// CRL is a parsed certificate revocation list.
type CRL struct {
	Raw       []byte
	RawTBS    []byte
	RawIssuer []byte

	Issuer     x509x.Name
	ThisUpdate time.Time
	NextUpdate time.Time // zero when absent
	Number     *big.Int  // nil when absent
	Entries    []Entry

	Signature          []byte
	SignatureAlgorithm der.OID

	// indexOnce guards the lazy bySerial build: parsed CRLs are shared
	// across snapshots (the crawler's parse cache) and goroutines.
	indexOnce sync.Once
	bySerial  map[string]int
}

// Lookup returns the entry for serial, if present.
func (c *CRL) Lookup(serial *big.Int) (Entry, bool) {
	c.indexOnce.Do(func() {
		c.bySerial = make(map[string]int, len(c.Entries))
		for i, e := range c.Entries {
			c.bySerial[string(e.Serial.Bytes())] = i
		}
	})
	i, ok := c.bySerial[string(serial.Bytes())]
	if !ok {
		return Entry{}, false
	}
	return c.Entries[i], true
}

// Contains reports whether serial is revoked by this CRL.
func (c *CRL) Contains(serial *big.Int) bool {
	_, ok := c.Lookup(serial)
	return ok
}

// CurrentAt reports whether the CRL is within its validity window at t.
// A CRL with no nextUpdate is treated as never expiring.
func (c *CRL) CurrentAt(t time.Time) bool {
	if t.Before(c.ThisUpdate) {
		return false
	}
	return c.NextUpdate.IsZero() || !t.After(c.NextUpdate)
}

// VerifySignature checks the CRL signature against the issuer certificate.
func (c *CRL) VerifySignature(issuer *x509x.Certificate) error {
	if !x509x.NamesEqual(c.RawIssuer, issuer.RawSubject) {
		return fmt.Errorf("crl: issuer %q does not match certificate subject %q", c.Issuer, issuer.Subject)
	}
	return x509x.VerifyDigest(issuer.PublicKey, c.RawTBS, c.Signature)
}

// Template describes a CRL to be created.
type Template struct {
	ThisUpdate time.Time
	NextUpdate time.Time // zero to omit
	Number     *big.Int  // nil to omit the CRLNumber extension
	Entries    []Entry
}

// Create builds and signs a CRL issued by the given CA certificate.
func Create(tmpl *Template, issuer *x509x.Certificate, key *ecdsa.PrivateKey) ([]byte, error) {
	if !tmpl.NextUpdate.IsZero() && tmpl.NextUpdate.Before(tmpl.ThisUpdate) {
		return nil, fmt.Errorf("crl: nextUpdate %v precedes thisUpdate %v", tmpl.NextUpdate, tmpl.ThisUpdate)
	}
	tbsParts := [][]byte{
		der.Int(1), // version v2
		algorithmIdentifier(),
		issuer.RawSubject,
		der.Time(tmpl.ThisUpdate),
	}
	if !tmpl.NextUpdate.IsZero() {
		tbsParts = append(tbsParts, der.Time(tmpl.NextUpdate))
	}
	if len(tmpl.Entries) > 0 {
		entries := make([][]byte, len(tmpl.Entries))
		for i, e := range tmpl.Entries {
			enc, err := encodeEntry(e)
			if err != nil {
				return nil, err
			}
			entries[i] = enc
		}
		tbsParts = append(tbsParts, der.Sequence(entries...))
	}
	if tmpl.Number != nil {
		numExt := der.Sequence(
			der.EncodeOID(x509x.OIDExtCRLNumber),
			der.OctetString(der.Integer(tmpl.Number)),
		)
		tbsParts = append(tbsParts, der.Explicit(0, der.Sequence(numExt)))
	}
	tbs := der.Sequence(tbsParts...)
	sig, err := x509x.SignDigest(key, tbs)
	if err != nil {
		return nil, fmt.Errorf("crl: signing: %v", err)
	}
	return der.Sequence(tbs, algorithmIdentifier(), der.BitString(sig)), nil
}

func algorithmIdentifier() []byte {
	return der.Sequence(der.EncodeOID(x509x.OIDSignatureECDSAWithSHA256))
}

func encodeEntry(e Entry) ([]byte, error) {
	if e.Serial == nil || e.Serial.Sign() <= 0 {
		return nil, errors.New("crl: entry needs a positive serial")
	}
	parts := [][]byte{der.Integer(e.Serial), der.Time(e.RevokedAt)}
	if e.Reason != ReasonAbsent {
		reasonExt := der.Sequence(
			der.EncodeOID(x509x.OIDExtCRLReason),
			der.OctetString(der.Enumerated(int64(e.Reason))),
		)
		parts = append(parts, der.Sequence(reasonExt))
	}
	return der.Sequence(parts...), nil
}

// EntrySize returns the exact number of DER bytes the given entry occupies
// in a CRL. CA serial-number policy (some CAs use serials of up to 49
// decimal digits) drives per-entry size, which is why Figure 5's linear fit
// shows variance between CAs; the paper measures ~38 bytes per entry on
// average.
func EntrySize(e Entry) int {
	enc, err := encodeEntry(e)
	if err != nil {
		return 0
	}
	return len(enc)
}

// Parse decodes a DER CRL. Unknown entry or list extensions are ignored
// unless critical.
func Parse(raw []byte) (*CRL, error) {
	top, rest, err := der.Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("crl: %v", err)
	}
	if len(rest) != 0 {
		return nil, errors.New("crl: trailing bytes")
	}
	outer, err := top.Sequence()
	if err != nil || len(outer) != 3 {
		return nil, fmt.Errorf("crl: CertificateList must have 3 fields (%v)", err)
	}
	c := &CRL{Raw: top.Full, RawTBS: outer[0].Full}

	if c.SignatureAlgorithm, err = parseAlgID(outer[1]); err != nil {
		return nil, err
	}
	if !c.SignatureAlgorithm.Equal(x509x.OIDSignatureECDSAWithSHA256) {
		return nil, fmt.Errorf("crl: unsupported signature algorithm %s", c.SignatureAlgorithm)
	}
	sig, unused, err := outer[2].BitString()
	if err != nil || unused != 0 {
		return nil, fmt.Errorf("crl: signature bits: %v", err)
	}
	c.Signature = sig

	fields, err := outer[0].Sequence()
	if err != nil {
		return nil, fmt.Errorf("crl: tbsCertList: %v", err)
	}
	i := 0
	// Optional version.
	if i < len(fields) && fields[i].Tag == der.TagInteger && fields[i].Class == der.ClassUniversal {
		ver, err := fields[i].Int64()
		if err != nil || ver != 1 {
			return nil, fmt.Errorf("crl: unsupported version %d", ver+1)
		}
		i++
	}
	if i >= len(fields) {
		return nil, errors.New("crl: missing signature algorithm")
	}
	inner, err := parseAlgID(fields[i])
	if err != nil {
		return nil, err
	}
	if !inner.Equal(c.SignatureAlgorithm) {
		return nil, errors.New("crl: inner/outer signature algorithm mismatch")
	}
	i++
	if i >= len(fields) {
		return nil, errors.New("crl: missing issuer")
	}
	c.RawIssuer = fields[i].Full
	if c.Issuer, err = x509x.ParseName(fields[i]); err != nil {
		return nil, err
	}
	i++
	if i >= len(fields) {
		return nil, errors.New("crl: missing thisUpdate")
	}
	if c.ThisUpdate, err = fields[i].Time(); err != nil {
		return nil, err
	}
	i++
	// Optional nextUpdate.
	if i < len(fields) && fields[i].Class == der.ClassUniversal &&
		(fields[i].Tag == der.TagUTCTime || fields[i].Tag == der.TagGeneralizedTime) {
		if c.NextUpdate, err = fields[i].Time(); err != nil {
			return nil, err
		}
		i++
	}
	// Optional revokedCertificates.
	if i < len(fields) && fields[i].Class == der.ClassUniversal && fields[i].Tag == der.TagSequence {
		entries, err := fields[i].Sequence()
		if err != nil {
			return nil, err
		}
		c.Entries = make([]Entry, 0, len(entries))
		for _, ev := range entries {
			e, err := parseEntry(ev)
			if err != nil {
				return nil, err
			}
			c.Entries = append(c.Entries, e)
		}
		i++
	}
	// Optional [0] crlExtensions.
	if i < len(fields) && fields[i].IsContext(0) {
		if err := c.parseListExtensions(fields[i]); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func parseAlgID(v der.Value) (der.OID, error) {
	fields, err := v.Sequence()
	if err != nil || len(fields) < 1 {
		return nil, fmt.Errorf("crl: AlgorithmIdentifier: %v", err)
	}
	return fields[0].OID()
}

func parseEntry(v der.Value) (Entry, error) {
	fields, err := v.Sequence()
	if err != nil || len(fields) < 2 {
		return Entry{}, fmt.Errorf("crl: revoked entry: %v", err)
	}
	e := Entry{Reason: ReasonAbsent}
	if e.Serial, err = fields[0].Integer(); err != nil {
		return Entry{}, err
	}
	if e.RevokedAt, err = fields[1].Time(); err != nil {
		return Entry{}, err
	}
	if len(fields) >= 3 {
		exts, err := fields[2].Sequence()
		if err != nil {
			return Entry{}, err
		}
		for _, ext := range exts {
			oid, critical, value, err := parseExtension(ext)
			if err != nil {
				return Entry{}, err
			}
			if oid.Equal(x509x.OIDExtCRLReason) {
				rv, rest, err := der.Parse(value)
				if err != nil || len(rest) != 0 {
					return Entry{}, fmt.Errorf("crl: reasonCode: %v", err)
				}
				code, err := rv.Enumerated()
				if err != nil {
					return Entry{}, err
				}
				e.Reason = Reason(code)
			} else if critical {
				return Entry{}, fmt.Errorf("crl: unhandled critical entry extension %s", oid)
			}
		}
	}
	return e, nil
}

func (c *CRL) parseListExtensions(wrapper der.Value) error {
	kids, err := wrapper.Children()
	if err != nil || len(kids) != 1 {
		return errors.New("crl: extensions wrapper")
	}
	exts, err := kids[0].Sequence()
	if err != nil {
		return err
	}
	for _, ext := range exts {
		oid, critical, value, err := parseExtension(ext)
		if err != nil {
			return err
		}
		switch {
		case oid.Equal(x509x.OIDExtCRLNumber):
			nv, rest, err := der.Parse(value)
			if err != nil || len(rest) != 0 {
				return fmt.Errorf("crl: CRLNumber: %v", err)
			}
			if c.Number, err = nv.Integer(); err != nil {
				return err
			}
		case oid.Equal(x509x.OIDExtAuthorityKeyID):
			// Recognized but not needed: byte-matching on names is used.
		default:
			if critical {
				return fmt.Errorf("crl: unhandled critical extension %s", oid)
			}
		}
	}
	return nil
}

func parseExtension(v der.Value) (oid der.OID, critical bool, value []byte, err error) {
	fields, err := v.Sequence()
	if err != nil || len(fields) < 2 || len(fields) > 3 {
		return nil, false, nil, fmt.Errorf("crl: extension: %v", err)
	}
	if oid, err = fields[0].OID(); err != nil {
		return nil, false, nil, err
	}
	vi := 1
	if len(fields) == 3 {
		if critical, err = fields[1].Bool(); err != nil {
			return nil, false, nil, err
		}
		vi = 2
	}
	if value, err = fields[vi].OctetString(); err != nil {
		return nil, false, nil, err
	}
	return oid, critical, value, nil
}
