//go:build !race

package crl

const raceEnabled = false
