package crawler

import (
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/crl"
	"repro/internal/ocsp"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/x509x"
)

// testWorld wires a CA into a simnet fabric.
type testWorld struct {
	clock     *simtime.Clock
	net       *simnet.Network
	authority *ca.CA
	crawler   *Crawler
}

func newWorld(t *testing.T) *testWorld {
	t.Helper()
	clock := simtime.NewClock(simtime.CrawlStart)
	net := simnet.New()
	authority, err := ca.NewRoot(ca.Config{
		Name:         "CrawlCA",
		NumCRLShards: 2,
		CRLBaseURL:   "http://crl.crawlca.test/crl",
		OCSPBaseURL:  "http://ocsp.crawlca.test/ocsp",
		IncludeCRLDP: true,
		IncludeOCSP:  true,
		Clock:        clock.Now,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Register("crl.crawlca.test", authority.Handler())
	net.Register("ocsp.crawlca.test", authority.Handler())
	return &testWorld{
		clock:     clock,
		net:       net,
		authority: authority,
		crawler: &Crawler{
			Client: net.Client(),
			Now:    clock.Now,
			Verify: map[string]*x509x.Certificate{
				authority.CRLURL(0): authority.Certificate(),
				authority.CRLURL(1): authority.Certificate(),
			},
		},
	}
}

func (w *testWorld) issue(t *testing.T) *ca.Record {
	t.Helper()
	return w.authority.IssueRecord(ca.IssueOptions{
		CommonName: "h.test",
		NotBefore:  w.clock.Now(),
		NotAfter:   w.clock.Now().AddDate(1, 0, 0),
	})
}

func TestCrawlDownloadsAndParses(t *testing.T) {
	w := newWorld(t)
	rec := w.issue(t)
	w.clock.Advance(time.Hour)
	if err := w.authority.Revoke(rec.Serial, w.clock.Now(), crl.ReasonKeyCompromise); err != nil {
		t.Fatal(err)
	}
	urls := []string{w.authority.CRLURL(0), w.authority.CRLURL(1)}
	snap := w.crawler.CrawlCRLs(urls)
	if len(snap.Failures) != 0 {
		t.Fatalf("failures: %v", snap.Failures)
	}
	if len(snap.CRLs) != 2 {
		t.Fatalf("CRLs = %d", len(snap.CRLs))
	}
	if snap.Bytes <= 0 {
		t.Error("no bytes accounted")
	}
	if !snap.CRLs[rec.CRLURL].Contains(rec.Serial) {
		t.Error("revocation missing from crawled CRL")
	}
}

func TestCrawlRecordsFailures(t *testing.T) {
	w := newWorld(t)
	urls := []string{
		w.authority.CRLURL(0),
		"http://nonexistent.test/x.crl",     // NXDOMAIN
		w.authority.CRLURL(0) + "bogus.crl", // 404 shape: /crl/0.crlbogus.crl
	}
	snap := w.crawler.CrawlCRLs(urls)
	if len(snap.CRLs) != 1 {
		t.Errorf("CRLs = %d", len(snap.CRLs))
	}
	if len(snap.Failures) != 2 {
		t.Errorf("failures = %v", snap.Failures)
	}
	// Unresponsive host.
	w.net.SetFailure("crl.crawlca.test", simnet.FailUnresponsive)
	snap = w.crawler.CrawlCRLs([]string{w.authority.CRLURL(0)})
	if len(snap.Failures) != 1 {
		t.Error("unresponsive host should fail")
	}
}

func TestCrawlRejectsBadSignature(t *testing.T) {
	w := newWorld(t)
	// Verify against the wrong issuer.
	other, err := ca.NewRoot(ca.Config{Name: "Other", Clock: w.clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	w.crawler.Verify[w.authority.CRLURL(0)] = other.Certificate()
	snap := w.crawler.CrawlCRLs([]string{w.authority.CRLURL(0)})
	if len(snap.Failures) != 1 {
		t.Error("forged CRL accepted")
	}
}

func TestCheckOCSPOnly(t *testing.T) {
	w := newWorld(t)
	rec := w.issue(t)
	bad := w.issue(t)
	w.clock.Advance(time.Hour)
	if err := w.authority.Revoke(bad.Serial, w.clock.Now(), crl.ReasonUnspecified); err != nil {
		t.Fatal(err)
	}
	results := w.crawler.CheckOCSPOnly([]OCSPTarget{
		{ResponderURL: "http://ocsp.crawlca.test/ocsp", Issuer: w.authority.Certificate(), Serial: rec.Serial},
		{ResponderURL: "http://ocsp.crawlca.test/ocsp", Issuer: w.authority.Certificate(), Serial: bad.Serial},
		{ResponderURL: "http://down.test/ocsp", Issuer: w.authority.Certificate(), Serial: rec.Serial},
	})
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Err != nil || results[0].Response.Status != ocsp.StatusGood {
		t.Errorf("good check: %+v", results[0])
	}
	if results[1].Err != nil || results[1].Response.Status != ocsp.StatusRevoked {
		t.Errorf("revoked check: %+v", results[1])
	}
	if results[2].Err == nil {
		t.Error("unreachable responder should error")
	}
}

func TestArchiveOrderingAndLookup(t *testing.T) {
	a := NewArchive()
	if _, ok := a.Latest(); ok {
		t.Error("empty archive has Latest")
	}
	if _, ok := a.At(simtime.CrawlStart); ok {
		t.Error("empty archive has At")
	}
	d0 := simtime.CrawlStart
	for i := 0; i < 5; i++ {
		a.Add(&Snapshot{Day: d0.AddDate(0, 0, i)})
	}
	if a.Len() != 5 {
		t.Fatalf("len = %d", a.Len())
	}
	snap, ok := a.At(d0.AddDate(0, 0, 2).Add(6 * time.Hour))
	if !ok || !snap.Day.Equal(d0.AddDate(0, 0, 2)) {
		t.Errorf("At = %v", snap.Day)
	}
	if _, ok := a.At(d0.Add(-time.Hour)); ok {
		t.Error("At before first snapshot")
	}
	latest, _ := a.Latest()
	if !latest.Day.Equal(d0.AddDate(0, 0, 4)) {
		t.Errorf("latest = %v", latest.Day)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Add accepted")
		}
	}()
	a.Add(&Snapshot{Day: d0})
}

func TestParallelCrawlMatchesSerial(t *testing.T) {
	w := newWorld(t)
	var recs []*ca.Record
	for i := 0; i < 20; i++ {
		recs = append(recs, w.issue(t))
	}
	w.clock.Advance(time.Hour)
	for i := 0; i < 10; i++ {
		if err := w.authority.Revoke(recs[i].Serial, w.clock.Now(), crl.ReasonUnspecified); err != nil {
			t.Fatal(err)
		}
	}
	urls := []string{
		w.authority.CRLURL(0), w.authority.CRLURL(1),
		"http://nonexistent.test/x.crl",
	}
	serial := w.crawler.CrawlCRLs(urls)

	w.crawler.Parallelism = 8
	parallel := w.crawler.CrawlCRLs(urls)
	if len(parallel.CRLs) != len(serial.CRLs) || len(parallel.Failures) != len(serial.Failures) {
		t.Fatalf("parallel %d/%d vs serial %d/%d",
			len(parallel.CRLs), len(parallel.Failures), len(serial.CRLs), len(serial.Failures))
	}
	for u, c := range serial.CRLs {
		p, ok := parallel.CRLs[u]
		if !ok || len(p.Entries) != len(c.Entries) {
			t.Errorf("parallel crawl differs at %s", u)
		}
	}
	if parallel.Bytes == 0 {
		t.Error("no bytes accounted in parallel crawl")
	}
}
