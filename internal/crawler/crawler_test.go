package crawler

import (
	"math/big"
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/crl"
	"repro/internal/ocsp"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/x509x"
)

// testWorld wires a CA into a simnet fabric.
type testWorld struct {
	clock     *simtime.Clock
	net       *simnet.Network
	authority *ca.CA
	crawler   *Crawler
}

func newWorld(t testing.TB) *testWorld {
	t.Helper()
	clock := simtime.NewClock(simtime.CrawlStart)
	net := simnet.New()
	authority, err := ca.NewRoot(ca.Config{
		Name:              "CrawlCA",
		NumCRLShards:      2,
		CRLBaseURL:        "http://crl.crawlca.test/crl",
		OCSPBaseURL:       "http://ocsp.crawlca.test/ocsp",
		IncludeCRLDP:      true,
		IncludeOCSP:       true,
		ReuseUnchangedCRL: true,
		Clock:             clock.Now,
		Seed:              3,
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Register("crl.crawlca.test", authority.Handler())
	net.Register("ocsp.crawlca.test", authority.Handler())
	return &testWorld{
		clock:     clock,
		net:       net,
		authority: authority,
		crawler: &Crawler{
			Client: net.Client(),
			Now:    clock.Now,
			Verify: map[string]*x509x.Certificate{
				authority.CRLURL(0): authority.Certificate(),
				authority.CRLURL(1): authority.Certificate(),
			},
		},
	}
}

func (w *testWorld) issue(t testing.TB) *ca.Record {
	t.Helper()
	return w.authority.IssueRecord(ca.IssueOptions{
		CommonName: "h.test",
		NotBefore:  w.clock.Now(),
		NotAfter:   w.clock.Now().AddDate(1, 0, 0),
	})
}

func TestCrawlDownloadsAndParses(t *testing.T) {
	w := newWorld(t)
	rec := w.issue(t)
	w.clock.Advance(time.Hour)
	if err := w.authority.Revoke(rec.Serial, w.clock.Now(), crl.ReasonKeyCompromise); err != nil {
		t.Fatal(err)
	}
	urls := []string{w.authority.CRLURL(0), w.authority.CRLURL(1)}
	snap := w.crawler.CrawlCRLs(urls)
	if len(snap.Failures) != 0 {
		t.Fatalf("failures: %v", snap.Failures)
	}
	if len(snap.CRLs) != 2 {
		t.Fatalf("CRLs = %d", len(snap.CRLs))
	}
	if snap.Bytes <= 0 {
		t.Error("no bytes accounted")
	}
	if !snap.CRLs[rec.CRLURL].Contains(rec.Serial) {
		t.Error("revocation missing from crawled CRL")
	}
}

func TestCrawlRecordsFailures(t *testing.T) {
	w := newWorld(t)
	urls := []string{
		w.authority.CRLURL(0),
		"http://nonexistent.test/x.crl",     // NXDOMAIN
		w.authority.CRLURL(0) + "bogus.crl", // 404 shape: /crl/0.crlbogus.crl
	}
	snap := w.crawler.CrawlCRLs(urls)
	if len(snap.CRLs) != 1 {
		t.Errorf("CRLs = %d", len(snap.CRLs))
	}
	if len(snap.Failures) != 2 {
		t.Errorf("failures = %v", snap.Failures)
	}
	// Unresponsive host.
	w.net.SetFailure("crl.crawlca.test", simnet.FailUnresponsive)
	snap = w.crawler.CrawlCRLs([]string{w.authority.CRLURL(0)})
	if len(snap.Failures) != 1 {
		t.Error("unresponsive host should fail")
	}
}

func TestCrawlRejectsBadSignature(t *testing.T) {
	w := newWorld(t)
	// Verify against the wrong issuer.
	other, err := ca.NewRoot(ca.Config{Name: "Other", Clock: w.clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	w.crawler.Verify[w.authority.CRLURL(0)] = other.Certificate()
	snap := w.crawler.CrawlCRLs([]string{w.authority.CRLURL(0)})
	if len(snap.Failures) != 1 {
		t.Error("forged CRL accepted")
	}
}

func TestCheckOCSPOnly(t *testing.T) {
	w := newWorld(t)
	rec := w.issue(t)
	bad := w.issue(t)
	w.clock.Advance(time.Hour)
	if err := w.authority.Revoke(bad.Serial, w.clock.Now(), crl.ReasonUnspecified); err != nil {
		t.Fatal(err)
	}
	results := w.crawler.CheckOCSPOnly([]OCSPTarget{
		{ResponderURL: "http://ocsp.crawlca.test/ocsp", Issuer: w.authority.Certificate(), Serial: rec.Serial},
		{ResponderURL: "http://ocsp.crawlca.test/ocsp", Issuer: w.authority.Certificate(), Serial: bad.Serial},
		{ResponderURL: "http://down.test/ocsp", Issuer: w.authority.Certificate(), Serial: rec.Serial},
	})
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Err != nil || results[0].Response.Status != ocsp.StatusGood {
		t.Errorf("good check: %+v", results[0])
	}
	if results[1].Err != nil || results[1].Response.Status != ocsp.StatusRevoked {
		t.Errorf("revoked check: %+v", results[1])
	}
	if results[2].Err == nil {
		t.Error("unreachable responder should error")
	}
}

func TestArchiveOrderingAndLookup(t *testing.T) {
	a := NewArchive()
	if _, ok := a.Latest(); ok {
		t.Error("empty archive has Latest")
	}
	if _, ok := a.At(simtime.CrawlStart); ok {
		t.Error("empty archive has At")
	}
	d0 := simtime.CrawlStart
	for i := 0; i < 5; i++ {
		a.Add(&Snapshot{Day: d0.AddDate(0, 0, i)})
	}
	if a.Len() != 5 {
		t.Fatalf("len = %d", a.Len())
	}
	snap, ok := a.At(d0.AddDate(0, 0, 2).Add(6 * time.Hour))
	if !ok || !snap.Day.Equal(d0.AddDate(0, 0, 2)) {
		t.Errorf("At = %v", snap.Day)
	}
	if _, ok := a.At(d0.Add(-time.Hour)); ok {
		t.Error("At before first snapshot")
	}
	latest, _ := a.Latest()
	if !latest.Day.Equal(d0.AddDate(0, 0, 4)) {
		t.Errorf("latest = %v", latest.Day)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Add accepted")
		}
	}()
	a.Add(&Snapshot{Day: d0})
}

func TestParallelCrawlMatchesSerial(t *testing.T) {
	w := newWorld(t)
	var recs []*ca.Record
	for i := 0; i < 20; i++ {
		recs = append(recs, w.issue(t))
	}
	w.clock.Advance(time.Hour)
	for i := 0; i < 10; i++ {
		if err := w.authority.Revoke(recs[i].Serial, w.clock.Now(), crl.ReasonUnspecified); err != nil {
			t.Fatal(err)
		}
	}
	urls := []string{
		w.authority.CRLURL(0), w.authority.CRLURL(1),
		"http://nonexistent.test/x.crl",
	}
	serial := w.crawler.CrawlCRLs(urls)

	w.crawler.Parallelism = 8
	parallel := w.crawler.CrawlCRLs(urls)
	if len(parallel.CRLs) != len(serial.CRLs) || len(parallel.Failures) != len(serial.Failures) {
		t.Fatalf("parallel %d/%d vs serial %d/%d",
			len(parallel.CRLs), len(parallel.Failures), len(serial.CRLs), len(serial.Failures))
	}
	for u, c := range serial.CRLs {
		p, ok := parallel.CRLs[u]
		if !ok || len(p.Entries) != len(c.Entries) {
			t.Errorf("parallel crawl differs at %s", u)
		}
	}
	if parallel.Bytes == 0 {
		t.Error("no bytes accounted in parallel crawl")
	}
}

func TestParseCacheHitsAcrossCrawls(t *testing.T) {
	w := newWorld(t)
	rec := w.issue(t)
	w.clock.Advance(time.Hour)
	if err := w.authority.Revoke(rec.Serial, w.clock.Now(), crl.ReasonKeyCompromise); err != nil {
		t.Fatal(err)
	}
	urls := []string{w.authority.CRLURL(0), w.authority.CRLURL(1)}
	first := w.crawler.CrawlCRLs(urls)
	if w.crawler.ParseCacheHits != 0 {
		t.Fatalf("cold crawl hit the cache %d times", w.crawler.ParseCacheHits)
	}
	second := w.crawler.CrawlCRLs(urls)
	if w.crawler.ParseCacheHits != 2 {
		t.Fatalf("warm crawl: %d cache hits, want 2", w.crawler.ParseCacheHits)
	}
	// Pointer identity across snapshots is part of the cache contract:
	// revdb's delta ingestion keys on it.
	for _, u := range urls {
		if first.CRLs[u] != second.CRLs[u] {
			t.Errorf("%s: unchanged body re-parsed to a new object", u)
		}
	}

	// A content change on one shard invalidates only that shard. Advance
	// past the CRL validity window so the CA's handler re-signs; the
	// unchanged shard still reuses its previous DER (ReuseUnchangedCRL)
	// and stays a parse-cache hit.
	rec2 := w.issue(t)
	w.clock.Advance(25 * time.Hour)
	if err := w.authority.Revoke(rec2.Serial, w.clock.Now(), crl.ReasonUnspecified); err != nil {
		t.Fatal(err)
	}
	third := w.crawler.CrawlCRLs(urls)
	if w.crawler.ParseCacheHits != 3 {
		t.Errorf("after one shard changed: %d cache hits, want 3", w.crawler.ParseCacheHits)
	}
	if third.CRLs[rec2.CRLURL] == second.CRLs[rec2.CRLURL] {
		t.Error("changed shard served the stale parsed CRL")
	}
	if !third.CRLs[rec2.CRLURL].Contains(rec2.Serial) {
		t.Error("new revocation missing after cache invalidation")
	}
}

func TestCheckOCSPOnlyParallelPreservesOrder(t *testing.T) {
	w := newWorld(t)
	var targets []OCSPTarget
	var revoked []bool
	for i := 0; i < 16; i++ {
		rec := w.issue(t)
		targets = append(targets, OCSPTarget{
			ResponderURL: "http://ocsp.crawlca.test/ocsp",
			Issuer:       w.authority.Certificate(),
			Serial:       rec.Serial,
		})
		revoked = append(revoked, i%3 == 0)
	}
	w.clock.Advance(time.Hour)
	for i, rec := range targets {
		if revoked[i] {
			if err := w.authority.Revoke(rec.Serial, w.clock.Now(), crl.ReasonUnspecified); err != nil {
				t.Fatal(err)
			}
		}
	}
	// One unreachable responder in the middle of the batch.
	targets = append(targets[:8:8], append([]OCSPTarget{{
		ResponderURL: "http://down.test/ocsp",
		Issuer:       w.authority.Certificate(),
		Serial:       targets[0].Serial,
	}}, targets[8:]...)...)
	revoked = append(revoked[:8:8], append([]bool{false}, revoked[8:]...)...)

	w.crawler.Parallelism = 8
	results := w.crawler.CheckOCSPOnly(targets)
	if len(results) != len(targets) {
		t.Fatalf("results = %d, want %d", len(results), len(targets))
	}
	for i, res := range results {
		if res.Target.Serial.Cmp(targets[i].Serial) != 0 || res.Target.ResponderURL != targets[i].ResponderURL {
			t.Fatalf("result %d out of order: got %v", i, res.Target)
		}
		if targets[i].ResponderURL == "http://down.test/ocsp" {
			if res.Err == nil {
				t.Errorf("result %d: unreachable responder did not error", i)
			}
			continue
		}
		if res.Err != nil {
			t.Errorf("result %d: %v", i, res.Err)
			continue
		}
		want := ocsp.StatusGood
		if revoked[i] {
			want = ocsp.StatusRevoked
		}
		if res.Response.Status != want {
			t.Errorf("result %d: status %v, want %v", i, res.Response.Status, want)
		}
	}
}

// BenchmarkCrawlCRLsWarm measures the steady-state daily crawl: every CRL
// body is unchanged from the previous day, so each fetch is a parse-cache
// hit and the CA serves its cached DER encoding.
func BenchmarkCrawlCRLsWarm(b *testing.B) {
	w := newWorld(b)
	for i := 0; i < 200; i++ {
		rec := w.issue(b)
		if i%2 == 0 {
			if err := w.authority.Revoke(rec.Serial, w.clock.Now().Add(time.Minute), crl.ReasonUnspecified); err != nil {
				b.Fatal(err)
			}
		}
	}
	w.clock.Advance(time.Hour)
	urls := []string{w.authority.CRLURL(0), w.authority.CRLURL(1)}
	w.crawler.CrawlCRLs(urls) // warm the caches
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := w.crawler.CrawlCRLs(urls)
		if len(snap.Failures) != 0 {
			b.Fatalf("failures: %v", snap.Failures)
		}
	}
}

// BenchmarkCrawlCRLsCold measures the same crawl with the parse cache
// disabled by clearing it each iteration: every body is re-parsed and
// re-verified.
func BenchmarkCrawlCRLsCold(b *testing.B) {
	w := newWorld(b)
	for i := 0; i < 200; i++ {
		rec := w.issue(b)
		if i%2 == 0 {
			if err := w.authority.Revoke(rec.Serial, w.clock.Now().Add(time.Minute), crl.ReasonUnspecified); err != nil {
				b.Fatal(err)
			}
		}
	}
	w.clock.Advance(time.Hour)
	urls := []string{w.authority.CRLURL(0), w.authority.CRLURL(1)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.crawler.parseCache = nil
		snap := w.crawler.CrawlCRLs(urls)
		if len(snap.Failures) != 0 {
			b.Fatalf("failures: %v", snap.Failures)
		}
	}
}

// TestCheckOCSPOnlyBatched: with OCSPBatchSize set, targets sharing a
// responder+issuer ride in multi-certificate requests, results still map
// back by input index, and the wire sees ceil(n/size) requests.
func TestCheckOCSPOnlyBatched(t *testing.T) {
	w := newWorld(t)
	var targets []OCSPTarget
	var revoked []bool
	for i := 0; i < 5; i++ {
		rec := w.issue(t)
		targets = append(targets, OCSPTarget{
			ResponderURL: "http://ocsp.crawlca.test/ocsp",
			Issuer:       w.authority.Certificate(),
			Serial:       rec.Serial,
		})
		revoked = append(revoked, i%2 == 1)
	}
	w.clock.Advance(time.Hour)
	for i := range targets {
		if revoked[i] {
			if err := w.authority.Revoke(targets[i].Serial, w.clock.Now(), crl.ReasonSuperseded); err != nil {
				t.Fatal(err)
			}
		}
	}
	w.net.ResetStats()
	w.crawler.OCSPBatchSize = 2
	results := w.crawler.CheckOCSPOnly(targets)
	if got := w.net.TotalStats().Requests; got != 3 {
		t.Errorf("wire requests = %d, want 3 (batches of 2,2,1)", got)
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("result %d: %v", i, res.Err)
		}
		if res.Target.Serial.Cmp(targets[i].Serial) != 0 {
			t.Fatalf("result %d out of order", i)
		}
		want := ocsp.StatusGood
		if revoked[i] {
			want = ocsp.StatusRevoked
		}
		if res.Response.Status != want {
			t.Errorf("result %d: status %v, want %v", i, res.Response.Status, want)
		}
	}
}

// TestCheckOCSPOnlyBatchedParallel runs the batched path through the
// worker pool with mixed responders, asserting order is preserved and a
// batch-level failure reaches every member of the failed batch only.
func TestCheckOCSPOnlyBatchedParallel(t *testing.T) {
	w := newWorld(t)
	var targets []OCSPTarget
	for i := 0; i < 9; i++ {
		rec := w.issue(t)
		url := "http://ocsp.crawlca.test/ocsp"
		if i%4 == 3 {
			url = "http://down.test/ocsp"
		}
		targets = append(targets, OCSPTarget{
			ResponderURL: url,
			Issuer:       w.authority.Certificate(),
			Serial:       rec.Serial,
		})
	}
	w.crawler.OCSPBatchSize = 3
	w.crawler.Parallelism = 4
	results := w.crawler.CheckOCSPOnly(targets)
	for i, res := range results {
		if res.Target.Serial.Cmp(targets[i].Serial) != 0 {
			t.Fatalf("result %d out of order", i)
		}
		if targets[i].ResponderURL == "http://down.test/ocsp" {
			if res.Err == nil {
				t.Errorf("result %d: expected batch error for dead responder", i)
			}
		} else if res.Err != nil {
			t.Errorf("result %d: %v", i, res.Err)
		}
	}
}

func TestOCSPBatchesGrouping(t *testing.T) {
	w := newWorld(t)
	issuer := w.authority.Certificate()
	mk := func(url string, serial int64) OCSPTarget {
		return OCSPTarget{ResponderURL: url, Issuer: issuer, Serial: big.NewInt(serial)}
	}
	targets := []OCSPTarget{
		mk("http://a/ocsp", 1), // batch 0
		mk("http://b/ocsp", 2), // batch 1
		mk("http://a/ocsp", 3), // batch 0 (fills it at size 2)
		mk("http://a/ocsp", 4), // batch 2 (a's first batch is full)
		mk("http://b/ocsp", 5), // batch 1
	}
	c := &Crawler{OCSPBatchSize: 2}
	got := c.ocspBatches(targets)
	want := [][]int{{0, 2}, {1, 4}, {3}}
	if len(got) != len(want) {
		t.Fatalf("batches = %v, want %v", got, want)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("batch %d = %v, want %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("batch %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
	// Size 0/1 degenerates to one batch per target.
	c.OCSPBatchSize = 0
	if got := c.ocspBatches(targets); len(got) != len(targets) {
		t.Fatalf("unbatched: %v", got)
	}
}
