// Package crawler implements the study's revocation-data collector: a
// daily crawl that downloads every known CRL (2,800 distinct URLs in the
// paper, §3.2) and records per-day snapshots, plus targeted OCSP queries
// for the 642 certificates that carry only an OCSP responder.
//
// The crawler is transport-agnostic: point it at a simnet client and the
// virtual clock for simulation, or at http.DefaultClient for the real
// internet. It degrades gracefully against an unreliable substrate:
// failed fetches are retried with exponential backoff and deterministic
// jitter, each attempt carries a timeout budget, failures are classified
// by layer (transport, HTTP status, read, parse, verify), and — when
// enabled — the last good copy of a CRL is served stale rather than
// dropping the URL from the snapshot.
package crawler

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/crl"
	"repro/internal/faultnet"
	"repro/internal/ocsp"
	"repro/internal/x509x"
)

// FailureClass attributes a fetch failure to the layer that produced it,
// so availability experiments can distinguish "the responder is down"
// from "the responder answered garbage" (§5).
type FailureClass int

// Failure classes.
const (
	// ClassTransport: the HTTP exchange itself failed (connection error,
	// timeout, DNS).
	ClassTransport FailureClass = iota
	// ClassHTTPStatus: the server answered with a non-200 status.
	ClassHTTPStatus
	// ClassRead: the body ended early or could not be read.
	ClassRead
	// ClassParse: the body was not a parseable CRL (or OCSP response).
	ClassParse
	// ClassVerify: the CRL parsed but its signature did not verify
	// against the pinned issuer.
	ClassVerify
)

func (c FailureClass) String() string {
	switch c {
	case ClassTransport:
		return "transport"
	case ClassHTTPStatus:
		return "http-status"
	case ClassRead:
		return "read"
	case ClassParse:
		return "parse"
	case ClassVerify:
		return "verify"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// FetchError is a classified fetch failure.
type FetchError struct {
	URL   string
	Class FailureClass
	// Code is the HTTP status for ClassHTTPStatus failures, 0 otherwise.
	Code int
	Err  error
}

func (e *FetchError) Error() string {
	return fmt.Sprintf("crawler: %s: %s: %v", e.URL, e.Class, e.Err)
}

func (e *FetchError) Unwrap() error { return e.Err }

// FetchStats aggregates the crawler's degradation accounting. All fields
// are cumulative across crawls; read a copy via Crawler.Stats.
type FetchStats struct {
	// Attempts counts individual CRL fetch attempts (including retries).
	Attempts int64
	// Retries counts attempts after the first for a given URL and crawl.
	Retries int64
	// Successes counts fetches that produced a verified CRL.
	Successes int64
	// GaveUp counts fetches that exhausted their retry budget.
	GaveUp int64
	// StaleServed counts crawl slots filled from the last good copy
	// after a fetch gave up (ServeStale).
	StaleServed int64
	// BackoffTotal is the cumulative (virtual) backoff delay scheduled
	// between retries.
	BackoffTotal time.Duration

	// Per-class CRL failure counts (each failed attempt counts once).
	TransportErrors int64
	HTTPErrors      int64
	ReadErrors      int64
	ParseErrors     int64
	VerifyErrors    int64

	// OCSP-only check accounting. Transport failures ("the responder is
	// unreachable") are attributed separately from well-formed OCSP
	// error responses ("the responder is up but declined") and HTTP
	// front-end errors.
	OCSPAttempts        int64
	OCSPRetries         int64
	OCSPTransportErrors int64
	OCSPHTTPErrors      int64
	OCSPResponderErrors int64
	OCSPOtherErrors     int64
}

// Snapshot is the outcome of one crawl day.
type Snapshot struct {
	Day time.Time
	// CRLs maps distribution-point URL to the parsed CRL.
	CRLs map[string]*crl.CRL
	// Stale marks URLs whose CRL slot was filled from the last good
	// fetch of an earlier crawl because every attempt this crawl failed.
	Stale map[string]bool
	// Failures maps URL to the error that prevented its download.
	Failures map[string]error
	// Bytes is the total body size downloaded.
	Bytes int64
}

// Crawler downloads revocation data.
type Crawler struct {
	// Client performs the HTTP requests; http.DefaultClient when nil.
	Client *http.Client
	// Now supplies crawl timestamps; time.Now when nil.
	Now func() time.Time
	// MaxCRLBytes caps a single CRL download (default 128 MiB — the
	// paper saw CRLs up to 76 MB).
	MaxCRLBytes int64
	// Verify, when set, maps a CRL URL to the issuer certificate whose
	// signature the CRL must carry; unverifiable CRLs count as failures.
	Verify map[string]*x509x.Certificate
	// Parallelism bounds concurrent downloads (the paper's crawler hit
	// 2,800 CRLs per day). 1 when zero or negative.
	Parallelism int
	// OCSPBatchSize bounds how many certificates ride in one OCSP request
	// on the OCSP-only check path — RFC 6960 allows a request to carry
	// multiple Request entries, and batching amortizes the HTTP and
	// signature-verification round trip. 0 or 1 means one request per
	// certificate.
	OCSPBatchSize int

	// Timeout bounds each fetch attempt. It is applied both as a real
	// context deadline and as a faultnet virtual-time budget, so a hung
	// responder costs the crawl at most Timeout (and, under simulation,
	// no real time at all). 0 means unbounded.
	Timeout time.Duration
	// Retries is how many additional attempts follow a retryable
	// failure (transport, read, 5xx, parse, verify). 0 means one
	// attempt. Permanent failures (HTTP 4xx) are not retried.
	Retries int
	// Backoff is the base delay before the first retry; it doubles per
	// retry with deterministic per-URL jitter. Default 100 ms. The delay
	// is recorded in FetchStats (and slept through Sleep when set).
	Backoff time.Duration
	// Sleep, when set, is called with each backoff delay. Leave nil in
	// simulations: backoff then costs virtual bookkeeping only.
	Sleep func(time.Duration)
	// ServeStale fills a failed URL's snapshot slot with the last good
	// parse from an earlier crawl, marking it in Snapshot.Stale. This
	// mirrors clients that keep using a cached CRL until its
	// nextUpdate passes.
	ServeStale bool

	// cacheMu guards the content-addressed parse cache: most CRLs are
	// unchanged from one daily crawl to the next, so an identical body
	// is returned as the identical *crl.CRL without re-parsing or
	// re-verifying. Pointer identity across snapshots is part of the
	// contract — downstream delta ingestion relies on it.
	cacheMu    sync.Mutex
	parseCache map[[sha256.Size]byte]*parsedCRL
	// lastGood maps URL to its most recent successfully fetched CRL,
	// preserving parse-cache pointer identity for stale serving.
	lastGood map[string]*crl.CRL
	// ParseCacheHits counts fetches served from the parse cache. It is
	// updated under the crawler's internal lock; read it only between
	// crawls.
	ParseCacheHits int64

	statsMu sync.Mutex
	stats   FetchStats
}

// parsedCRL is one parse-cache slot. verifiedBy records the issuer
// certificate the body's signature was last checked against, so a cached
// body is never reused to satisfy a stricter verification requirement.
type parsedCRL struct {
	crl        *crl.CRL
	verifiedBy *x509x.Certificate
}

func (c *Crawler) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

func (c *Crawler) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

// Stats returns a copy of the crawler's cumulative degradation stats.
func (c *Crawler) Stats() FetchStats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.stats
}

func (c *Crawler) bump(f func(*FetchStats)) {
	c.statsMu.Lock()
	f(&c.stats)
	c.statsMu.Unlock()
}

// attemptCtx returns the per-attempt context: a real deadline plus a
// faultnet virtual-time budget when Timeout is set.
func (c *Crawler) attemptCtx() (context.Context, context.CancelFunc) {
	ctx := context.Background()
	if c.Timeout <= 0 {
		return ctx, func() {}
	}
	ctx = faultnet.WithBudget(ctx, c.Timeout)
	return context.WithTimeout(ctx, c.Timeout)
}

// backoffDelay is the deterministic delay before retry number n (n ≥ 1)
// of url: Backoff·2^(n-1) plus up to one Backoff of per-(url, n) jitter.
func (c *Crawler) backoffDelay(url string, n int) time.Duration {
	base := c.Backoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	d := base << uint(n-1)
	h := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", url, n)))
	jitter := time.Duration(binary.BigEndian.Uint64(h[:8]) % uint64(base))
	return d + jitter
}

func (c *Crawler) backOff(url string, n int) {
	d := c.backoffDelay(url, n)
	c.bump(func(s *FetchStats) {
		s.Retries++
		s.BackoffTotal += d
	})
	if c.Sleep != nil {
		c.Sleep(d)
	}
}

// CrawlCRLs downloads and parses every URL, returning one snapshot.
// Downloads run with the configured parallelism; the snapshot is
// assembled under a lock, so results are complete regardless of order.
func (c *Crawler) CrawlCRLs(urls []string) *Snapshot {
	snap := &Snapshot{
		Day:      c.now(),
		CRLs:     make(map[string]*crl.CRL, len(urls)),
		Stale:    make(map[string]bool),
		Failures: make(map[string]error),
	}
	var mu sync.Mutex
	record := func(u string, parsed *crl.CRL, n int64, err error) {
		mu.Lock()
		defer mu.Unlock()
		snap.Bytes += n
		if err == nil {
			snap.CRLs[u] = parsed
			return
		}
		if c.ServeStale {
			c.cacheMu.Lock()
			stale := c.lastGood[u]
			c.cacheMu.Unlock()
			if stale != nil {
				snap.CRLs[u] = stale
				snap.Stale[u] = true
				c.bump(func(s *FetchStats) { s.StaleServed++ })
				return
			}
		}
		snap.Failures[u] = err
	}
	workers := c.Parallelism
	if workers <= 1 {
		for _, u := range urls {
			parsed, n, err := c.fetchOne(u)
			record(u, parsed, n, err)
		}
		return snap
	}
	var wg sync.WaitGroup
	work := make(chan string)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range work {
				parsed, n, err := c.fetchOne(u)
				record(u, parsed, n, err)
			}
		}()
	}
	for _, u := range urls {
		work <- u
	}
	close(work)
	wg.Wait()
	return snap
}

// fetchOne downloads url with the retry/backoff policy, returning the
// parsed CRL (success updates the stale-serving copy) or the final
// classified error once the retry budget is spent.
func (c *Crawler) fetchOne(u string) (*crl.CRL, int64, error) {
	attempts := c.Retries + 1
	if attempts < 1 {
		attempts = 1
	}
	var total int64
	var last *FetchError
	for i := 0; i < attempts; i++ {
		if i > 0 {
			c.backOff(u, i)
		}
		c.bump(func(s *FetchStats) { s.Attempts++ })
		parsed, n, ferr := c.fetchAttempt(u)
		total += n
		if ferr == nil {
			c.bump(func(s *FetchStats) { s.Successes++ })
			c.cacheMu.Lock()
			if c.lastGood == nil {
				c.lastGood = make(map[string]*crl.CRL)
			}
			c.lastGood[u] = parsed
			c.cacheMu.Unlock()
			return parsed, total, nil
		}
		last = ferr
		c.bump(func(s *FetchStats) {
			switch ferr.Class {
			case ClassTransport:
				s.TransportErrors++
			case ClassHTTPStatus:
				s.HTTPErrors++
			case ClassRead:
				s.ReadErrors++
			case ClassParse:
				s.ParseErrors++
			case ClassVerify:
				s.VerifyErrors++
			}
		})
		if !retryableClass(ferr) {
			break
		}
	}
	c.bump(func(s *FetchStats) { s.GaveUp++ })
	return nil, total, last
}

// retryableClass reports whether another attempt could plausibly
// succeed. Transport, read, parse, and verify failures are transient in
// an unreliable-network model (corruption in flight); HTTP failures are
// retried only for 5xx — a 404 is authoritative.
func retryableClass(e *FetchError) bool {
	if e.Class != ClassHTTPStatus {
		return true
	}
	return e.Code >= 500
}

// fetchAttempt performs one download attempt and classifies its failure.
func (c *Crawler) fetchAttempt(u string) (*crl.CRL, int64, *FetchError) {
	ctx, cancel := c.attemptCtx()
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, 0, &FetchError{URL: u, Class: ClassTransport, Err: err}
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, 0, &FetchError{URL: u, Class: ClassTransport, Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, &FetchError{URL: u, Class: ClassHTTPStatus, Code: resp.StatusCode, Err: fmt.Errorf("HTTP %d", resp.StatusCode)}
	}
	limit := c.MaxCRLBytes
	if limit <= 0 {
		limit = 128 << 20
	}
	var body []byte
	if n := resp.ContentLength; n > 0 && n <= limit {
		// Presize the read: CRLs run to tens of megabytes, and letting
		// io.ReadAll grow its buffer doubles the copy traffic.
		body = make([]byte, n)
		if m, err := io.ReadFull(resp.Body, body); err != nil {
			return nil, int64(m), &FetchError{URL: u, Class: ClassRead, Err: err}
		}
	} else if body, err = io.ReadAll(io.LimitReader(resp.Body, limit)); err != nil {
		return nil, int64(len(body)), &FetchError{URL: u, Class: ClassRead, Err: err}
	}
	issuer := c.Verify[u]
	sum := sha256.Sum256(body)
	c.cacheMu.Lock()
	if hit, ok := c.parseCache[sum]; ok && (issuer == nil || hit.verifiedBy == issuer) {
		c.ParseCacheHits++
		c.cacheMu.Unlock()
		return hit.crl, int64(len(body)), nil
	}
	c.cacheMu.Unlock()
	parsed, err := crl.Parse(body)
	if err != nil {
		return nil, int64(len(body)), &FetchError{URL: u, Class: ClassParse, Err: err}
	}
	if issuer != nil {
		if err := parsed.VerifySignature(issuer); err != nil {
			return nil, int64(len(body)), &FetchError{URL: u, Class: ClassVerify, Err: err}
		}
	}
	c.cacheMu.Lock()
	if c.parseCache == nil {
		c.parseCache = make(map[[sha256.Size]byte]*parsedCRL)
	}
	c.parseCache[sum] = &parsedCRL{crl: parsed, verifiedBy: issuer}
	c.cacheMu.Unlock()
	return parsed, int64(len(body)), nil
}

// OCSPTarget identifies one certificate to check by OCSP (used for
// certificates with no CRL distribution point, §3.2).
type OCSPTarget struct {
	ResponderURL string
	Issuer       *x509x.Certificate
	Serial       *big.Int
}

// OCSPResult is the outcome of one OCSP-only check.
type OCSPResult struct {
	Target   OCSPTarget
	Response ocsp.SingleResponse
	Err      error
}

// checkOCSPBatch performs one batched OCSP exchange with the retry
// policy, attributing each failed attempt to the layer that produced it.
func (c *Crawler) checkOCSPBatch(client *ocsp.Client, url string, issuer *x509x.Certificate, serials []*big.Int) ([]ocsp.SingleResponse, error) {
	attempts := c.Retries + 1
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			c.bump(func(s *FetchStats) { s.OCSPRetries++ })
			d := c.backoffDelay(url, i)
			c.bump(func(s *FetchStats) { s.BackoffTotal += d })
			if c.Sleep != nil {
				c.Sleep(d)
			}
		}
		c.bump(func(s *FetchStats) { s.OCSPAttempts++ })
		ctx, cancel := c.attemptCtx()
		srs, err := client.CheckBatchContext(ctx, url, issuer, serials)
		cancel()
		if err == nil {
			return srs, nil
		}
		lastErr = err
		var (
			te *ocsp.TransportError
			se *ocsp.StatusError
			re *ocsp.ResponderError
		)
		retry := true
		switch {
		case errors.As(err, &te):
			c.bump(func(s *FetchStats) { s.OCSPTransportErrors++ })
		case errors.As(err, &se):
			c.bump(func(s *FetchStats) { s.OCSPHTTPErrors++ })
			retry = se.Code >= 500
		case errors.As(err, &re):
			// The responder answered OCSP, just not usefully — this is
			// an application-layer refusal, not an availability failure.
			c.bump(func(s *FetchStats) { s.OCSPResponderErrors++ })
			retry = re.Status == ocsp.RespTryLater || re.Status == ocsp.RespInternalError
		default:
			// Parse or signature failures: possibly in-flight
			// corruption, worth retrying.
			c.bump(func(s *FetchStats) { s.OCSPOtherErrors++ })
		}
		if !retry {
			break
		}
	}
	return nil, lastErr
}

// CheckOCSPOnly queries the responder for each OCSP-only certificate.
// With OCSPBatchSize > 1, targets sharing a responder and issuer are
// grouped into multi-certificate requests. Queries run with the
// configured parallelism across responders, but batches for the same
// responder URL run sequentially in input order: the fault injector's
// schedule is a pure function of (endpoint, day, attempt number), so
// letting same-endpoint requests race for attempt numbers would make
// which request draws an injected fault scheduling-dependent. Results
// are returned in input order regardless.
func (c *Crawler) CheckOCSPOnly(targets []OCSPTarget) []OCSPResult {
	client := &ocsp.Client{HTTP: c.client()}
	out := make([]OCSPResult, len(targets))
	batches := c.ocspBatches(targets)
	check := func(batch []int) {
		first := targets[batch[0]]
		serials := make([]*big.Int, len(batch))
		for j, i := range batch {
			serials[j] = targets[i].Serial
		}
		srs, err := c.checkOCSPBatch(client, first.ResponderURL, first.Issuer, serials)
		for j, i := range batch {
			if err != nil {
				out[i] = OCSPResult{Target: targets[i], Err: err}
			} else {
				out[i] = OCSPResult{Target: targets[i], Response: srs[j]}
			}
		}
	}
	// Group batch indices by responder URL, preserving first-appearance
	// order within each group.
	var groups [][][]int
	groupOf := make(map[string]int)
	for _, batch := range batches {
		url := targets[batch[0]].ResponderURL
		gi, ok := groupOf[url]
		if !ok {
			groups = append(groups, nil)
			gi = len(groups) - 1
			groupOf[url] = gi
		}
		groups[gi] = append(groups[gi], batch)
	}
	checkGroup := func(group [][]int) {
		for _, batch := range group {
			check(batch)
		}
	}
	workers := c.Parallelism
	if workers <= 1 || len(groups) <= 1 {
		for _, group := range groups {
			checkGroup(group)
		}
		return out
	}
	var wg sync.WaitGroup
	work := make(chan [][]int)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for group := range work {
				checkGroup(group)
			}
		}()
	}
	for _, group := range groups {
		work <- group
	}
	close(work)
	wg.Wait()
	return out
}

// ocspBatches groups target indices into per-(responder, issuer) batches
// of at most OCSPBatchSize, preserving first-appearance order within each
// batch so results map back by index.
func (c *Crawler) ocspBatches(targets []OCSPTarget) [][]int {
	size := c.OCSPBatchSize
	if size <= 1 {
		batches := make([][]int, len(targets))
		for i := range targets {
			batches[i] = []int{i}
		}
		return batches
	}
	type groupKey struct {
		url    string
		issuer *x509x.Certificate
	}
	var batches [][]int
	open := make(map[groupKey]int) // group → index of its still-filling batch
	for i, t := range targets {
		k := groupKey{t.ResponderURL, t.Issuer}
		bi, ok := open[k]
		if !ok || len(batches[bi]) >= size {
			batches = append(batches, make([]int, 0, size))
			bi = len(batches) - 1
			open[k] = bi
		}
		batches[bi] = append(batches[bi], i)
	}
	return batches
}

// Archive stores crawl snapshots in day order and answers the questions
// the longitudinal analyses ask of them.
type Archive struct {
	mu    sync.Mutex
	snaps []*Snapshot
}

// NewArchive returns an empty archive.
func NewArchive() *Archive { return &Archive{} }

// Add appends a snapshot; snapshots must arrive in chronological order.
func (a *Archive) Add(s *Snapshot) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if n := len(a.snaps); n > 0 && s.Day.Before(a.snaps[n-1].Day) {
		panic("crawler: snapshots must be added in order")
	}
	a.snaps = append(a.snaps, s)
}

// Len returns the number of stored snapshots.
func (a *Archive) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.snaps)
}

// Snapshots returns the stored snapshots in day order.
func (a *Archive) Snapshots() []*Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*Snapshot, len(a.snaps))
	copy(out, a.snaps)
	return out
}

// At returns the most recent snapshot at or before t.
func (a *Archive) At(t time.Time) (*Snapshot, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	i := sort.Search(len(a.snaps), func(i int) bool { return a.snaps[i].Day.After(t) })
	if i == 0 {
		return nil, false
	}
	return a.snaps[i-1], true
}

// Latest returns the most recent snapshot.
func (a *Archive) Latest() (*Snapshot, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.snaps) == 0 {
		return nil, false
	}
	return a.snaps[len(a.snaps)-1], true
}
