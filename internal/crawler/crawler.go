// Package crawler implements the study's revocation-data collector: a
// daily crawl that downloads every known CRL (2,800 distinct URLs in the
// paper, §3.2) and records per-day snapshots, plus targeted OCSP queries
// for the 642 certificates that carry only an OCSP responder.
//
// The crawler is transport-agnostic: point it at a simnet client and the
// virtual clock for simulation, or at http.DefaultClient for the real
// internet.
package crawler

import (
	"crypto/sha256"
	"fmt"
	"io"
	"math/big"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/crl"
	"repro/internal/ocsp"
	"repro/internal/x509x"
)

// Snapshot is the outcome of one crawl day.
type Snapshot struct {
	Day time.Time
	// CRLs maps distribution-point URL to the parsed CRL.
	CRLs map[string]*crl.CRL
	// Failures maps URL to the error that prevented its download.
	Failures map[string]error
	// Bytes is the total body size downloaded.
	Bytes int64
}

// Crawler downloads revocation data.
type Crawler struct {
	// Client performs the HTTP requests; http.DefaultClient when nil.
	Client *http.Client
	// Now supplies crawl timestamps; time.Now when nil.
	Now func() time.Time
	// MaxCRLBytes caps a single CRL download (default 128 MiB — the
	// paper saw CRLs up to 76 MB).
	MaxCRLBytes int64
	// Verify, when set, maps a CRL URL to the issuer certificate whose
	// signature the CRL must carry; unverifiable CRLs count as failures.
	Verify map[string]*x509x.Certificate
	// Parallelism bounds concurrent downloads (the paper's crawler hit
	// 2,800 CRLs per day). 1 when zero or negative.
	Parallelism int
	// OCSPBatchSize bounds how many certificates ride in one OCSP request
	// on the OCSP-only check path — RFC 6960 allows a request to carry
	// multiple Request entries, and batching amortizes the HTTP and
	// signature-verification round trip. 0 or 1 means one request per
	// certificate.
	OCSPBatchSize int

	// cacheMu guards the content-addressed parse cache: most CRLs are
	// unchanged from one daily crawl to the next, so an identical body
	// is returned as the identical *crl.CRL without re-parsing or
	// re-verifying. Pointer identity across snapshots is part of the
	// contract — downstream delta ingestion relies on it.
	cacheMu    sync.Mutex
	parseCache map[[sha256.Size]byte]*parsedCRL
	// ParseCacheHits counts fetches served from the parse cache. It is
	// updated under the crawler's internal lock; read it only between
	// crawls.
	ParseCacheHits int64
}

// parsedCRL is one parse-cache slot. verifiedBy records the issuer
// certificate the body's signature was last checked against, so a cached
// body is never reused to satisfy a stricter verification requirement.
type parsedCRL struct {
	crl        *crl.CRL
	verifiedBy *x509x.Certificate
}

func (c *Crawler) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

func (c *Crawler) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

// CrawlCRLs downloads and parses every URL, returning one snapshot.
// Downloads run with the configured parallelism; the snapshot is
// assembled under a lock, so results are complete regardless of order.
func (c *Crawler) CrawlCRLs(urls []string) *Snapshot {
	snap := &Snapshot{
		Day:      c.now(),
		CRLs:     make(map[string]*crl.CRL, len(urls)),
		Failures: make(map[string]error),
	}
	workers := c.Parallelism
	if workers <= 1 {
		for _, u := range urls {
			parsed, n, err := c.fetchOne(u)
			snap.Bytes += n
			if err != nil {
				snap.Failures[u] = err
				continue
			}
			snap.CRLs[u] = parsed
		}
		return snap
	}
	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		work = make(chan string)
	)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range work {
				parsed, n, err := c.fetchOne(u)
				mu.Lock()
				snap.Bytes += n
				if err != nil {
					snap.Failures[u] = err
				} else {
					snap.CRLs[u] = parsed
				}
				mu.Unlock()
			}
		}()
	}
	for _, u := range urls {
		work <- u
	}
	close(work)
	wg.Wait()
	return snap
}

func (c *Crawler) fetchOne(u string) (*crl.CRL, int64, error) {
	resp, err := c.client().Get(u)
	if err != nil {
		return nil, 0, fmt.Errorf("crawler: %s: %w", u, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("crawler: %s: HTTP %d", u, resp.StatusCode)
	}
	limit := c.MaxCRLBytes
	if limit <= 0 {
		limit = 128 << 20
	}
	var body []byte
	if n := resp.ContentLength; n > 0 && n <= limit {
		// Presize the read: CRLs run to tens of megabytes, and letting
		// io.ReadAll grow its buffer doubles the copy traffic.
		body = make([]byte, n)
		if m, err := io.ReadFull(resp.Body, body); err != nil {
			return nil, int64(m), fmt.Errorf("crawler: %s: read: %w", u, err)
		}
	} else if body, err = io.ReadAll(io.LimitReader(resp.Body, limit)); err != nil {
		return nil, int64(len(body)), fmt.Errorf("crawler: %s: read: %w", u, err)
	}
	issuer := c.Verify[u]
	sum := sha256.Sum256(body)
	c.cacheMu.Lock()
	if hit, ok := c.parseCache[sum]; ok && (issuer == nil || hit.verifiedBy == issuer) {
		c.ParseCacheHits++
		c.cacheMu.Unlock()
		return hit.crl, int64(len(body)), nil
	}
	c.cacheMu.Unlock()
	parsed, err := crl.Parse(body)
	if err != nil {
		return nil, int64(len(body)), fmt.Errorf("crawler: %s: %w", u, err)
	}
	if issuer != nil {
		if err := parsed.VerifySignature(issuer); err != nil {
			return nil, int64(len(body)), fmt.Errorf("crawler: %s: %w", u, err)
		}
	}
	c.cacheMu.Lock()
	if c.parseCache == nil {
		c.parseCache = make(map[[sha256.Size]byte]*parsedCRL)
	}
	c.parseCache[sum] = &parsedCRL{crl: parsed, verifiedBy: issuer}
	c.cacheMu.Unlock()
	return parsed, int64(len(body)), nil
}

// OCSPTarget identifies one certificate to check by OCSP (used for
// certificates with no CRL distribution point, §3.2).
type OCSPTarget struct {
	ResponderURL string
	Issuer       *x509x.Certificate
	Serial       *big.Int
}

// OCSPResult is the outcome of one OCSP-only check.
type OCSPResult struct {
	Target   OCSPTarget
	Response ocsp.SingleResponse
	Err      error
}

// CheckOCSPOnly queries the responder for each OCSP-only certificate.
// With OCSPBatchSize > 1, targets sharing a responder and issuer are
// grouped into multi-certificate requests. Queries run with the
// configured parallelism; results are returned in input order regardless.
func (c *Crawler) CheckOCSPOnly(targets []OCSPTarget) []OCSPResult {
	client := &ocsp.Client{HTTP: c.client()}
	out := make([]OCSPResult, len(targets))
	batches := c.ocspBatches(targets)
	check := func(batch []int) {
		if len(batch) == 1 {
			i := batch[0]
			t := targets[i]
			sr, err := client.Check(t.ResponderURL, t.Issuer, t.Serial)
			out[i] = OCSPResult{Target: t, Response: sr, Err: err}
			return
		}
		first := targets[batch[0]]
		serials := make([]*big.Int, len(batch))
		for j, i := range batch {
			serials[j] = targets[i].Serial
		}
		srs, err := client.CheckBatch(first.ResponderURL, first.Issuer, serials)
		for j, i := range batch {
			if err != nil {
				out[i] = OCSPResult{Target: targets[i], Err: err}
			} else {
				out[i] = OCSPResult{Target: targets[i], Response: srs[j]}
			}
		}
	}
	workers := c.Parallelism
	if workers <= 1 || len(batches) <= 1 {
		for _, batch := range batches {
			check(batch)
		}
		return out
	}
	var wg sync.WaitGroup
	work := make(chan []int)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for batch := range work {
				check(batch)
			}
		}()
	}
	for _, batch := range batches {
		work <- batch
	}
	close(work)
	wg.Wait()
	return out
}

// ocspBatches groups target indices into per-(responder, issuer) batches
// of at most OCSPBatchSize, preserving first-appearance order within each
// batch so results map back by index.
func (c *Crawler) ocspBatches(targets []OCSPTarget) [][]int {
	size := c.OCSPBatchSize
	if size <= 1 {
		batches := make([][]int, len(targets))
		for i := range targets {
			batches[i] = []int{i}
		}
		return batches
	}
	type groupKey struct {
		url    string
		issuer *x509x.Certificate
	}
	var batches [][]int
	open := make(map[groupKey]int) // group → index of its still-filling batch
	for i, t := range targets {
		k := groupKey{t.ResponderURL, t.Issuer}
		bi, ok := open[k]
		if !ok || len(batches[bi]) >= size {
			batches = append(batches, make([]int, 0, size))
			bi = len(batches) - 1
			open[k] = bi
		}
		batches[bi] = append(batches[bi], i)
	}
	return batches
}

// Archive stores crawl snapshots in day order and answers the questions
// the longitudinal analyses ask of them.
type Archive struct {
	mu    sync.Mutex
	snaps []*Snapshot
}

// NewArchive returns an empty archive.
func NewArchive() *Archive { return &Archive{} }

// Add appends a snapshot; snapshots must arrive in chronological order.
func (a *Archive) Add(s *Snapshot) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if n := len(a.snaps); n > 0 && s.Day.Before(a.snaps[n-1].Day) {
		panic("crawler: snapshots must be added in order")
	}
	a.snaps = append(a.snaps, s)
}

// Len returns the number of stored snapshots.
func (a *Archive) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.snaps)
}

// Snapshots returns the stored snapshots in day order.
func (a *Archive) Snapshots() []*Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*Snapshot, len(a.snaps))
	copy(out, a.snaps)
	return out
}

// At returns the most recent snapshot at or before t.
func (a *Archive) At(t time.Time) (*Snapshot, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	i := sort.Search(len(a.snaps), func(i int) bool { return a.snaps[i].Day.After(t) })
	if i == 0 {
		return nil, false
	}
	return a.snaps[i-1], true
}

// Latest returns the most recent snapshot.
func (a *Archive) Latest() (*Snapshot, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.snaps) == 0 {
		return nil, false
	}
	return a.snaps[len(a.snaps)-1], true
}
