package crawler

import (
	"testing"
	"time"
)

// TestBackoffDeterministicJitter: retry delays are a pure function of
// (URL, attempt) — doubled per attempt, with per-URL jitter so a fleet
// of crawlers does not thunder in phase.
func TestBackoffDeterministicJitter(t *testing.T) {
	c := &Crawler{Backoff: 100 * time.Millisecond}
	a1 := c.backoffDelay("http://crl.a.test/0.crl", 1)
	if a1 != c.backoffDelay("http://crl.a.test/0.crl", 1) {
		t.Fatal("backoff not deterministic")
	}
	if a2 := c.backoffDelay("http://crl.a.test/0.crl", 2); a2 <= a1 {
		t.Fatalf("attempt 2 delay %v not above attempt 1 %v", a2, a1)
	}
	if b1 := c.backoffDelay("http://crl.b.test/0.crl", 1); b1 == a1 {
		t.Fatal("distinct URLs share identical jitter")
	}
	lo, hi := 100*time.Millisecond, 200*time.Millisecond
	if a1 < lo || a1 > hi {
		t.Fatalf("first retry delay %v outside [%v, %v]", a1, lo, hi)
	}
}
