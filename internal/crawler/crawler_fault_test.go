// Fault-injection coverage for the crawler's degradation paths. This is
// an external test package so it can close the loop through revdb
// (which itself imports crawler).
package crawler_test

import (
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/crawler"
	"repro/internal/crl"
	"repro/internal/faultnet"
	"repro/internal/ocsp"
	"repro/internal/revdb"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/x509x"
)

// faultWorld wires a CA into a simnet fabric with a fault injector
// between the crawler and the network.
type faultWorld struct {
	clock     *simtime.Clock
	net       *simnet.Network
	authority *ca.CA
	injector  *faultnet.Injector
	crawler   *crawler.Crawler
}

func newFaultWorld(t testing.TB, cfg faultnet.Config) *faultWorld {
	t.Helper()
	clock := simtime.NewClock(simtime.CrawlStart)
	net := simnet.New()
	authority, err := ca.NewRoot(ca.Config{
		Name:              "FaultCA",
		NumCRLShards:      2,
		CRLBaseURL:        "http://crl.faultca.test/crl",
		OCSPBaseURL:       "http://ocsp.faultca.test/ocsp",
		IncludeCRLDP:      true,
		IncludeOCSP:       true,
		ReuseUnchangedCRL: true,
		Clock:             clock.Now,
		Seed:              3,
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Register("crl.faultca.test", authority.Handler())
	net.Register("ocsp.faultca.test", authority.Handler())
	cfg.Now = clock.Now
	inj := faultnet.New(net, cfg)
	return &faultWorld{
		clock:     clock,
		net:       net,
		authority: authority,
		injector:  inj,
		crawler: &crawler.Crawler{
			Client: inj.Client(),
			Now:    clock.Now,
			Verify: map[string]*x509x.Certificate{
				authority.CRLURL(0): authority.Certificate(),
				authority.CRLURL(1): authority.Certificate(),
			},
		},
	}
}

func (w *faultWorld) issue(t testing.TB) *ca.Record {
	t.Helper()
	return w.authority.IssueRecord(ca.IssueOptions{
		CommonName: "h.test",
		NotBefore:  w.clock.Now(),
		NotAfter:   w.clock.Now().AddDate(1, 0, 0),
	})
}

// TestCrawlerConvergesUnderTransportFaults is the headline degradation
// guarantee: a crawler behind 20% per-attempt transport failure, with
// retries and stale serving enabled, builds the same revocation database
// as a fault-free crawler watching the same CA — once the faults clear.
func TestCrawlerConvergesUnderTransportFaults(t *testing.T) {
	w := newFaultWorld(t, faultnet.Config{Seed: 20150331, ConnErrorProb: 0.20})
	w.crawler.Timeout = 2 * time.Second
	w.crawler.Retries = 3
	w.crawler.ServeStale = true

	clean := &crawler.Crawler{Client: w.net.Client(), Now: w.clock.Now, Verify: w.crawler.Verify}

	var recs []*ca.Record
	for i := 0; i < 12; i++ {
		recs = append(recs, w.issue(t))
	}
	urls := []string{w.authority.CRLURL(0), w.authority.CRLURL(1)}
	dbFaulty, dbClean := revdb.New(), revdb.New()

	// Ten crawl days; a revocation lands every other day, then two quiet
	// tail days during which the faulted crawler can catch up on
	// anything it served stale.
	for day := 0; day < 10; day++ {
		if day%2 == 0 && day/2 < len(recs) {
			rec := recs[day/2]
			if err := w.authority.Revoke(rec.Serial, w.clock.Now(), crl.ReasonKeyCompromise); err != nil {
				t.Fatal(err)
			}
		}
		w.clock.Advance(25 * time.Hour) // let the day's CRL expire and regenerate
		dbFaulty.IngestSnapshot(w.crawler.CrawlCRLs(urls))
		dbClean.IngestSnapshot(clean.CrawlCRLs(urls))
	}
	w.injector.SetEnabled(false)
	for day := 0; day < 2; day++ {
		w.clock.Advance(25 * time.Hour)
		dbFaulty.IngestSnapshot(w.crawler.CrawlCRLs(urls))
		dbClean.IngestSnapshot(clean.CrawlCRLs(urls))
	}

	st := w.crawler.Stats()
	if st.TransportErrors == 0 {
		t.Fatal("fault injector never fired; test proves nothing")
	}
	if st.Retries == 0 {
		t.Fatal("no retries recorded under 20% transport failure")
	}

	sig := func(db *revdb.DB) []string {
		var out []string
		for _, e := range db.Entries() {
			out = append(out, fmt.Sprintf("%s|%v|%s|%d", e.CRLURL, e.Serial, e.RevokedAt.UTC(), e.Reason))
		}
		return out
	}
	got, want := sig(dbFaulty), sig(dbClean)
	if len(got) != len(want) {
		t.Fatalf("faulted revdb has %d entries, clean has %d\nstats: %+v", len(got), len(want), st)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("revdb entry %d diverged:\nfaulted: %s\nclean:   %s", i, got[i], want[i])
		}
	}
	if len(got) != 5 {
		t.Fatalf("expected 5 revocations observed, got %d", len(got))
	}
}

// TestCrawlTimeoutBoundsHungEndpoint covers the satellite requirement:
// a never-responding endpoint cannot hang a crawl round once a timeout
// budget is set — the hang resolves as a classified transport failure in
// bounded real time.
func TestCrawlTimeoutBoundsHungEndpoint(t *testing.T) {
	w := newFaultWorld(t, faultnet.Config{Seed: 5})
	w.injector.ForceFault("crl.faultca.test", faultnet.FaultHang)
	w.crawler.Timeout = 2 * time.Second

	start := time.Now()
	snap := w.crawler.CrawlCRLs([]string{w.authority.CRLURL(0)})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("crawl blocked %v on a hung endpoint", elapsed)
	}
	err := snap.Failures[w.authority.CRLURL(0)]
	if err == nil {
		t.Fatal("hung endpoint did not fail")
	}
	var fe *crawler.FetchError
	if !errors.As(err, &fe) || fe.Class != crawler.ClassTransport {
		t.Fatalf("err = %v, want ClassTransport FetchError", err)
	}
	var ne *faultnet.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want a timeout at the fault layer", err)
	}
	if st := w.crawler.Stats(); st.TransportErrors == 0 || st.GaveUp == 0 {
		t.Fatalf("stats = %+v, want transport errors and a give-up", st)
	}
}

// TestOCSPTimeoutBoundsHungResponder: same budget guarantee on the
// OCSP-only path.
func TestOCSPTimeoutBoundsHungResponder(t *testing.T) {
	w := newFaultWorld(t, faultnet.Config{Seed: 5})
	w.injector.ForceFault("ocsp.faultca.test", faultnet.FaultHang)
	w.crawler.Timeout = 2 * time.Second
	rec := w.issue(t)

	start := time.Now()
	res := w.crawler.CheckOCSPOnly([]crawler.OCSPTarget{{
		ResponderURL: rec.OCSPURL,
		Issuer:       w.authority.Certificate(),
		Serial:       rec.Serial,
	}})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("OCSP check blocked %v on a hung responder", elapsed)
	}
	var te *ocsp.TransportError
	if res[0].Err == nil || !errors.As(res[0].Err, &te) {
		t.Fatalf("err = %v, want *ocsp.TransportError", res[0].Err)
	}
	if st := w.crawler.Stats(); st.OCSPTransportErrors == 0 {
		t.Fatalf("stats = %+v, want OCSP transport errors", st)
	}
}

// TestFailureClassAttribution drives one failure of each class through
// the crawler and checks it lands in the matching counter.
func TestFailureClassAttribution(t *testing.T) {
	cases := []struct {
		name  string
		fault faultnet.Fault
		class crawler.FailureClass
		count func(crawler.FetchStats) int64
	}{
		{"transport", faultnet.FaultConnError, crawler.ClassTransport,
			func(s crawler.FetchStats) int64 { return s.TransportErrors }},
		{"http-status", faultnet.FaultHTTP500, crawler.ClassHTTPStatus,
			func(s crawler.FetchStats) int64 { return s.HTTPErrors }},
		{"read", faultnet.FaultTruncate, crawler.ClassRead,
			func(s crawler.FetchStats) int64 { return s.ReadErrors }},
		{"parse-or-verify", faultnet.FaultCorrupt, crawler.ClassParse,
			func(s crawler.FetchStats) int64 { return s.ParseErrors + s.VerifyErrors }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := newFaultWorld(t, faultnet.Config{Seed: 5})
			w.injector.ForceFault("crl.faultca.test", tc.fault)
			w.crawler.Timeout = time.Second
			snap := w.crawler.CrawlCRLs([]string{w.authority.CRLURL(0)})
			err := snap.Failures[w.authority.CRLURL(0)]
			if err == nil {
				t.Fatalf("fault %v did not fail the fetch", tc.fault)
			}
			var fe *crawler.FetchError
			if !errors.As(err, &fe) {
				t.Fatalf("err = %v, want FetchError", err)
			}
			if tc.name != "parse-or-verify" && fe.Class != tc.class {
				t.Fatalf("class = %v, want %v (err %v)", fe.Class, tc.class, err)
			}
			if tc.count(w.crawler.Stats()) == 0 {
				t.Fatalf("fault %v not attributed; stats %+v", tc.fault, w.crawler.Stats())
			}
		})
	}
}

// TestOCSPResponderErrorVsTransportAttribution is the first satellite:
// an OCSP error response (the responder is up, answering "unauthorized")
// must not be confused with an unreachable responder.
func TestOCSPResponderErrorVsTransportAttribution(t *testing.T) {
	w := newFaultWorld(t, faultnet.Config{Seed: 5})
	rec := w.issue(t)
	// Replace the OCSP host with one that always answers a well-formed
	// error response.
	w.net.Register("ocsp.faultca.test", http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/ocsp-response")
		rw.Write(ocsp.ErrorResponseDER(ocsp.RespUnauthorized))
	}))
	target := crawler.OCSPTarget{ResponderURL: rec.OCSPURL, Issuer: w.authority.Certificate(), Serial: rec.Serial}

	res := w.crawler.CheckOCSPOnly([]crawler.OCSPTarget{target})
	var re *ocsp.ResponderError
	if res[0].Err == nil || !errors.As(res[0].Err, &re) {
		t.Fatalf("err = %v, want *ocsp.ResponderError", res[0].Err)
	}
	if re.Status != ocsp.RespUnauthorized {
		t.Fatalf("status = %v", re.Status)
	}
	st := w.crawler.Stats()
	if st.OCSPResponderErrors != 1 || st.OCSPTransportErrors != 0 {
		t.Fatalf("responder error misattributed: %+v", st)
	}
}

// TestStaleServingPreservesPointerIdentity: a stale-served CRL is the
// same object a previous crawl produced, so revdb's delta fast path
// still applies.
func TestStaleServingPreservesPointerIdentity(t *testing.T) {
	w := newFaultWorld(t, faultnet.Config{Seed: 5})
	w.crawler.ServeStale = true
	w.crawler.Timeout = time.Second
	url := w.authority.CRLURL(0)

	first := w.crawler.CrawlCRLs([]string{url})
	if len(first.CRLs) != 1 {
		t.Fatalf("bootstrap crawl failed: %v", first.Failures)
	}
	w.clock.Advance(time.Hour)
	w.injector.ForceFault("crl.faultca.test", faultnet.FaultConnError)
	second := w.crawler.CrawlCRLs([]string{url})
	if !second.Stale[url] {
		t.Fatalf("outage crawl not marked stale: failures %v", second.Failures)
	}
	if second.CRLs[url] != first.CRLs[url] {
		t.Fatal("stale serve returned a different *crl.CRL object")
	}
	if st := w.crawler.Stats(); st.StaleServed != 1 {
		t.Fatalf("StaleServed = %d, want 1", st.StaleServed)
	}
	// Recovery: once the fault clears, the fresh copy replaces the
	// stale one.
	w.injector.ClearFault("crl.faultca.test")
	third := w.crawler.CrawlCRLs([]string{url})
	if third.Stale[url] {
		t.Fatal("recovered crawl still marked stale")
	}
}
