// Package simnet provides a simulated internet for the measurement
// pipeline: an in-process HTTP fabric that routes requests to registered
// virtual hosts (CA CRL servers, OCSP responders) without sockets, plus a
// latency/bandwidth cost model so experiments can account for what
// revocation checking would cost real clients (§5).
//
// The fabric plugs into net/http as a RoundTripper, so the CRL crawler and
// OCSP clients run the same code against the simulation as against the real
// network; only the http.Client differs.
package simnet

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/hist"
)

// CostModel converts transfer sizes into client-perceived latency.
type CostModel struct {
	// RTT is the per-request round-trip overhead (connection + request).
	RTT time.Duration
	// Bandwidth is the downstream rate in bytes per second.
	Bandwidth float64
	// OriginRTT, when positive, is the extra edge-to-origin round trip
	// charged to responses a CDN tier forwarded to its origin (those
	// stamped "X-Cache: MISS"). It is what makes CDN hit and origin
	// miss latencies separable in the modelled service-time histograms;
	// the default of zero preserves the pre-scenario cost accounting.
	OriginRTT time.Duration
}

// DefaultCostModel approximates a 2015 broadband client: 40 ms RTT and
// 10 Mbit/s downstream. OCSP lookups land near the ~250 ms the paper
// quotes once TCP and HTTP round trips are counted (§5.2).
var DefaultCostModel = CostModel{RTT: 40 * time.Millisecond, Bandwidth: 10e6 / 8}

// Cost returns the modelled time to fetch size bytes.
func (m CostModel) Cost(size int) time.Duration {
	if m.Bandwidth <= 0 {
		return m.RTT
	}
	return m.RTT + time.Duration(float64(size)/m.Bandwidth*float64(time.Second))
}

// HostError describes a failure to reach a virtual host.
type HostError struct {
	Host string
	Mode FailureMode
}

func (e *HostError) Error() string {
	return fmt.Sprintf("simnet: host %q: %v", e.Host, e.Mode)
}

// FailureMode enumerates the injectable failures, matching the test-suite
// dimensions of §6.1: non-existent DNS names, unresponsive servers, and
// HTTP errors (the last is produced by handlers, not the fabric).
type FailureMode int

// Failure modes.
const (
	// FailNone means the host is reachable.
	FailNone FailureMode = iota
	// FailNXDomain simulates a DNS name that does not resolve.
	FailNXDomain
	// FailUnresponsive simulates a host that accepts nothing (client
	// times out).
	FailUnresponsive
)

func (m FailureMode) String() string {
	switch m {
	case FailNone:
		return "reachable"
	case FailNXDomain:
		return "nxdomain"
	case FailUnresponsive:
		return "unresponsive"
	default:
		return fmt.Sprintf("failure(%d)", int(m))
	}
}

// Stats aggregates transfer accounting.
type Stats struct {
	Requests      int
	BytesReceived int64
	// ModelledTime is the total client-perceived latency under the
	// network's cost model.
	ModelledTime time.Duration
	// Latency summarizes the per-request modelled service time (the
	// same CostModel-derived virtual durations ModelledTime sums), so
	// callers see the distribution, not just the total. It is a pure
	// function of the byte stream: deterministic across runs and
	// worker counts.
	Latency hist.Summary
}

// hostRecord pairs one host's transfer counters with its service-time
// histogram shard.
type hostRecord struct {
	stats Stats
	lat   hist.Recorder
}

// Network is the in-process HTTP fabric. It implements http.RoundTripper.
type Network struct {
	Cost CostModel

	mu       sync.Mutex
	handlers map[string]http.Handler
	failures map[string]FailureMode
	total    Stats
	perHost  map[string]*hostRecord
	// lat is the all-hosts service-time histogram; latHit/latMiss split
	// the requests a CDN tier answered (X-Cache: HIT) from those it
	// forwarded to the origin (X-Cache: MISS).
	lat     hist.Recorder
	latHit  hist.Recorder
	latMiss hist.Recorder
	// streamSum is an order-independent sum of per-request hashes over
	// (method, host, status, CDN disposition) — deliberately excluding
	// response bytes, whose randomized ECDSA signatures make sizes
	// non-deterministic across runs. Two request streams with the same
	// multiset of requests sum identically no matter how they raced.
	streamSum uint64
}

// New returns an empty network with the default cost model.
func New() *Network {
	return &Network{
		Cost:     DefaultCostModel,
		handlers: make(map[string]http.Handler),
		failures: make(map[string]FailureMode),
		perHost:  make(map[string]*hostRecord),
	}
}

// Register attaches a handler to a virtual host name ("crl.godaddy.test").
// Registering a host again replaces its handler.
func (n *Network) Register(host string, h http.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[host] = h
}

// Handler returns the handler registered for host, or nil. The scenario
// engine uses it to expose a virtual host over a real localhost listener
// without re-plumbing the serving stack.
func (n *Network) Handler(host string) http.Handler {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.handlers[host]
}

// Hosts returns every registered virtual host name, in no particular
// order.
func (n *Network) Hosts() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	hosts := make([]string, 0, len(n.handlers))
	for h := range n.handlers {
		hosts = append(hosts, h)
	}
	return hosts
}

// SetFailure injects (or clears, with FailNone) a failure mode for host.
func (n *Network) SetFailure(host string, mode FailureMode) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.failures[host] = mode
}

// Client returns an *http.Client routed through the fabric.
func (n *Network) Client() *http.Client {
	return &http.Client{Transport: n}
}

// RoundTrip implements http.RoundTripper by dispatching to the registered
// handler for the request's host. A request whose context is already
// done fails with the context's error, mirroring net/http's transport.
func (n *Network) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := req.Context().Err(); err != nil {
		return nil, err
	}
	host := req.URL.Hostname()
	n.mu.Lock()
	mode := n.failures[host]
	handler, known := n.handlers[host]
	n.mu.Unlock()

	if mode != FailNone {
		return nil, &HostError{Host: host, Mode: mode}
	}
	if !known {
		return nil, &HostError{Host: host, Mode: FailNXDomain}
	}

	rec := &recorder{}
	handler.ServeHTTP(rec, req)
	if rec.code == 0 {
		rec.code = http.StatusOK
	}
	header := rec.header
	if header == nil {
		header = http.Header{}
	}
	resp := &http.Response{
		Status:        strconv.Itoa(rec.code) + " " + http.StatusText(rec.code),
		StatusCode:    rec.code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        header,
		Body:          io.NopCloser(bytes.NewReader(rec.body)),
		ContentLength: int64(len(rec.body)),
		Request:       req,
	}

	size := len(rec.body)
	cdn := header.Get("X-Cache") // set by the CDN tier, absent otherwise
	cost := n.Cost.Cost(size)
	if cdn == "MISS" {
		cost += n.Cost.OriginRTT
	}
	n.mu.Lock()
	n.total.Requests++
	n.total.BytesReceived += int64(size)
	n.total.ModelledTime += cost
	n.streamSum += requestHash(req.Method, host, rec.code, cdn)
	n.lat.Record(cost)
	switch cdn {
	case "HIT":
		n.latHit.Record(cost)
	case "MISS":
		n.latMiss.Record(cost)
	}
	hs := n.perHost[host]
	if hs == nil {
		hs = &hostRecord{}
		n.perHost[host] = hs
	}
	hs.stats.Requests++
	hs.stats.BytesReceived += int64(size)
	hs.stats.ModelledTime += cost
	hs.lat.Record(cost)
	n.mu.Unlock()
	return resp, nil
}

// requestHash fingerprints one request's deterministic identity.
func requestHash(method, host string, status int, cdn string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(method))
	h.Write([]byte{0})
	h.Write([]byte(host))
	h.Write([]byte{0})
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], uint64(status))
	h.Write(w[:])
	h.Write([]byte(cdn))
	return h.Sum64()
}

// StreamDigest returns the cumulative request-stream fingerprint: an
// order-independent sum of per-request hashes over (method, host,
// status, CDN disposition). Deltas of this value fingerprint a phase's
// request multiset; the scenario engine uses them for determinism
// checks, since — unlike service times — they are independent of
// response sizes (and therefore of randomized signature lengths).
func (n *Network) StreamDigest() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.streamSum
}

// TotalStats returns aggregate transfer statistics, including the
// modelled service-time distribution summary.
func (n *Network) TotalStats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := n.total
	out.Latency = n.lat.Snapshot().Summary()
	return out
}

// HostStats returns transfer statistics for one host.
func (n *Network) HostStats(host string) Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if hs := n.perHost[host]; hs != nil {
		out := hs.stats
		out.Latency = hs.lat.Snapshot().Summary()
		return out
	}
	return Stats{}
}

// LatencySnapshot returns the full service-time histogram over every
// request the fabric carried. The snapshot is mergeable and deltable
// (Snapshot.Sub), which is how the scenario engine attributes virtual
// service time to phases.
func (n *Network) LatencySnapshot() *hist.Snapshot {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lat.Snapshot()
}

// HostLatencySnapshot returns one host's service-time histogram (empty
// snapshot for an unknown host).
func (n *Network) HostLatencySnapshot(host string) *hist.Snapshot {
	n.mu.Lock()
	defer n.mu.Unlock()
	if hs := n.perHost[host]; hs != nil {
		return hs.lat.Snapshot()
	}
	return &hist.Snapshot{}
}

// CDNLatencySnapshots returns the service-time histograms of requests a
// CDN tier served from cache (hit) versus forwarded to its origin
// (miss). Requests that never traversed a CDN appear in neither.
func (n *Network) CDNLatencySnapshots() (hit, miss *hist.Snapshot) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.latHit.Snapshot(), n.latMiss.Snapshot()
}

// recorder is a minimal in-memory http.ResponseWriter. It replaces
// httptest.NewRecorder on the fabric's hot path: no header snapshotting,
// no bytes.Buffer, and the body is presized from the handler's
// Content-Length header when one is set before the first Write.
type recorder struct {
	code   int
	header http.Header
	body   []byte
}

func (r *recorder) Header() http.Header {
	if r.header == nil {
		r.header = make(http.Header, 4)
	}
	return r.header
}

func (r *recorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
}

func (r *recorder) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	if r.body == nil {
		if cl := r.header.Get("Content-Length"); cl != "" {
			if n, err := strconv.Atoi(cl); err == nil && n >= len(p) {
				r.body = make([]byte, 0, n)
			}
		}
	}
	r.body = append(r.body, p...)
	return len(p), nil
}

// ResetStats zeroes all accounting, histograms included.
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.total = Stats{}
	n.perHost = make(map[string]*hostRecord)
	n.streamSum = 0
	n.lat.Reset()
	n.latHit.Reset()
	n.latMiss.Reset()
}
