// Package simnet provides a simulated internet for the measurement
// pipeline: an in-process HTTP fabric that routes requests to registered
// virtual hosts (CA CRL servers, OCSP responders) without sockets, plus a
// latency/bandwidth cost model so experiments can account for what
// revocation checking would cost real clients (§5).
//
// The fabric plugs into net/http as a RoundTripper, so the CRL crawler and
// OCSP clients run the same code against the simulation as against the real
// network; only the http.Client differs.
package simnet

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// CostModel converts transfer sizes into client-perceived latency.
type CostModel struct {
	// RTT is the per-request round-trip overhead (connection + request).
	RTT time.Duration
	// Bandwidth is the downstream rate in bytes per second.
	Bandwidth float64
}

// DefaultCostModel approximates a 2015 broadband client: 40 ms RTT and
// 10 Mbit/s downstream. OCSP lookups land near the ~250 ms the paper
// quotes once TCP and HTTP round trips are counted (§5.2).
var DefaultCostModel = CostModel{RTT: 40 * time.Millisecond, Bandwidth: 10e6 / 8}

// Cost returns the modelled time to fetch size bytes.
func (m CostModel) Cost(size int) time.Duration {
	if m.Bandwidth <= 0 {
		return m.RTT
	}
	return m.RTT + time.Duration(float64(size)/m.Bandwidth*float64(time.Second))
}

// HostError describes a failure to reach a virtual host.
type HostError struct {
	Host string
	Mode FailureMode
}

func (e *HostError) Error() string {
	return fmt.Sprintf("simnet: host %q: %v", e.Host, e.Mode)
}

// FailureMode enumerates the injectable failures, matching the test-suite
// dimensions of §6.1: non-existent DNS names, unresponsive servers, and
// HTTP errors (the last is produced by handlers, not the fabric).
type FailureMode int

// Failure modes.
const (
	// FailNone means the host is reachable.
	FailNone FailureMode = iota
	// FailNXDomain simulates a DNS name that does not resolve.
	FailNXDomain
	// FailUnresponsive simulates a host that accepts nothing (client
	// times out).
	FailUnresponsive
)

func (m FailureMode) String() string {
	switch m {
	case FailNone:
		return "reachable"
	case FailNXDomain:
		return "nxdomain"
	case FailUnresponsive:
		return "unresponsive"
	default:
		return fmt.Sprintf("failure(%d)", int(m))
	}
}

// Stats aggregates transfer accounting.
type Stats struct {
	Requests      int
	BytesReceived int64
	// ModelledTime is the total client-perceived latency under the
	// network's cost model.
	ModelledTime time.Duration
}

// Network is the in-process HTTP fabric. It implements http.RoundTripper.
type Network struct {
	Cost CostModel

	mu       sync.Mutex
	handlers map[string]http.Handler
	failures map[string]FailureMode
	total    Stats
	perHost  map[string]*Stats
}

// New returns an empty network with the default cost model.
func New() *Network {
	return &Network{
		Cost:     DefaultCostModel,
		handlers: make(map[string]http.Handler),
		failures: make(map[string]FailureMode),
		perHost:  make(map[string]*Stats),
	}
}

// Register attaches a handler to a virtual host name ("crl.godaddy.test").
// Registering a host again replaces its handler.
func (n *Network) Register(host string, h http.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[host] = h
}

// SetFailure injects (or clears, with FailNone) a failure mode for host.
func (n *Network) SetFailure(host string, mode FailureMode) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.failures[host] = mode
}

// Client returns an *http.Client routed through the fabric.
func (n *Network) Client() *http.Client {
	return &http.Client{Transport: n}
}

// RoundTrip implements http.RoundTripper by dispatching to the registered
// handler for the request's host. A request whose context is already
// done fails with the context's error, mirroring net/http's transport.
func (n *Network) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := req.Context().Err(); err != nil {
		return nil, err
	}
	host := req.URL.Hostname()
	n.mu.Lock()
	mode := n.failures[host]
	handler, known := n.handlers[host]
	n.mu.Unlock()

	if mode != FailNone {
		return nil, &HostError{Host: host, Mode: mode}
	}
	if !known {
		return nil, &HostError{Host: host, Mode: FailNXDomain}
	}

	rec := &recorder{}
	handler.ServeHTTP(rec, req)
	if rec.code == 0 {
		rec.code = http.StatusOK
	}
	header := rec.header
	if header == nil {
		header = http.Header{}
	}
	resp := &http.Response{
		Status:        strconv.Itoa(rec.code) + " " + http.StatusText(rec.code),
		StatusCode:    rec.code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        header,
		Body:          io.NopCloser(bytes.NewReader(rec.body)),
		ContentLength: int64(len(rec.body)),
		Request:       req,
	}

	size := len(rec.body)
	n.mu.Lock()
	n.total.Requests++
	n.total.BytesReceived += int64(size)
	n.total.ModelledTime += n.Cost.Cost(size)
	hs := n.perHost[host]
	if hs == nil {
		hs = &Stats{}
		n.perHost[host] = hs
	}
	hs.Requests++
	hs.BytesReceived += int64(size)
	hs.ModelledTime += n.Cost.Cost(size)
	n.mu.Unlock()
	return resp, nil
}

// TotalStats returns aggregate transfer statistics.
func (n *Network) TotalStats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.total
}

// HostStats returns transfer statistics for one host.
func (n *Network) HostStats(host string) Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if hs := n.perHost[host]; hs != nil {
		return *hs
	}
	return Stats{}
}

// recorder is a minimal in-memory http.ResponseWriter. It replaces
// httptest.NewRecorder on the fabric's hot path: no header snapshotting,
// no bytes.Buffer, and the body is presized from the handler's
// Content-Length header when one is set before the first Write.
type recorder struct {
	code   int
	header http.Header
	body   []byte
}

func (r *recorder) Header() http.Header {
	if r.header == nil {
		r.header = make(http.Header, 4)
	}
	return r.header
}

func (r *recorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
}

func (r *recorder) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	if r.body == nil {
		if cl := r.header.Get("Content-Length"); cl != "" {
			if n, err := strconv.Atoi(cl); err == nil && n >= len(p) {
				r.body = make([]byte, 0, n)
			}
		}
	}
	r.body = append(r.body, p...)
	return len(p), nil
}

// ResetStats zeroes all accounting.
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.total = Stats{}
	n.perHost = make(map[string]*Stats)
}
