package simnet

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"
)

func helloHandler(body string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, body)
	})
}

func TestRoutingByHost(t *testing.T) {
	n := New()
	n.Register("crl.a.test", helloHandler("alpha"))
	n.Register("crl.b.test", helloHandler("beta"))
	client := n.Client()

	for host, want := range map[string]string{"crl.a.test": "alpha", "crl.b.test": "beta"} {
		resp, err := client.Get("http://" + host + "/x.crl")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != want {
			t.Errorf("%s body = %q", host, body)
		}
	}
}

func TestUnknownHostIsNXDomain(t *testing.T) {
	n := New()
	_, err := n.Client().Get("http://nowhere.test/")
	if err == nil {
		t.Fatal("unknown host resolved")
	}
	var he *HostError
	if !errors.As(err, &he) || he.Mode != FailNXDomain {
		t.Fatalf("error = %v", err)
	}
}

func TestFailureInjection(t *testing.T) {
	n := New()
	n.Register("ocsp.test", helloHandler("ok"))
	n.SetFailure("ocsp.test", FailUnresponsive)
	_, err := n.Client().Get("http://ocsp.test/")
	var he *HostError
	if !errors.As(err, &he) || he.Mode != FailUnresponsive {
		t.Fatalf("error = %v", err)
	}
	n.SetFailure("ocsp.test", FailNone)
	resp, err := n.Client().Get("http://ocsp.test/")
	if err != nil {
		t.Fatalf("after clearing failure: %v", err)
	}
	resp.Body.Close()
}

func TestHandlerStatusCodesPassThrough(t *testing.T) {
	n := New()
	n.Register("crl.test", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	resp, err := n.Client().Get("http://crl.test/missing.crl")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestStatsAccounting(t *testing.T) {
	n := New()
	n.Cost = CostModel{RTT: 100 * time.Millisecond, Bandwidth: 1000} // 1 KB/s
	n.Register("big.test", helloHandler(string(make([]byte, 500))))
	client := n.Client()
	for i := 0; i < 3; i++ {
		resp, err := client.Get("http://big.test/")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	total := n.TotalStats()
	if total.Requests != 3 || total.BytesReceived != 1500 {
		t.Errorf("total = %+v", total)
	}
	// Each request: 100ms RTT + 500B at 1000 B/s = 600ms; three = 1.8s.
	if total.ModelledTime != 1800*time.Millisecond {
		t.Errorf("modelled time = %v", total.ModelledTime)
	}
	hs := n.HostStats("big.test")
	if hs.Requests != 3 {
		t.Errorf("host stats = %+v", hs)
	}
	if n.HostStats("other.test").Requests != 0 {
		t.Error("phantom host stats")
	}
	n.ResetStats()
	if n.TotalStats().Requests != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestCostModel(t *testing.T) {
	m := CostModel{RTT: 40 * time.Millisecond, Bandwidth: 1e6}
	if got := m.Cost(0); got != 40*time.Millisecond {
		t.Errorf("Cost(0) = %v", got)
	}
	if got := m.Cost(1e6); got != 1040*time.Millisecond {
		t.Errorf("Cost(1MB) = %v", got)
	}
	free := CostModel{RTT: time.Second}
	if free.Cost(1<<30) != time.Second {
		t.Error("zero bandwidth should cost only RTT")
	}
	// The 76 MB Apple CRL (§5.2) takes over a minute at 10 Mbit/s.
	if DefaultCostModel.Cost(76<<20) < time.Minute {
		t.Error("76MB CRL should cost over a minute at default bandwidth")
	}
}

func TestRegisterReplacesHandler(t *testing.T) {
	n := New()
	n.Register("x.test", helloHandler("one"))
	n.Register("x.test", helloHandler("two"))
	resp, err := n.Client().Get("http://x.test/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "two" {
		t.Errorf("body = %q", body)
	}
}
