package simnet

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"
)

func helloHandler(body string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, body)
	})
}

func TestRoutingByHost(t *testing.T) {
	n := New()
	n.Register("crl.a.test", helloHandler("alpha"))
	n.Register("crl.b.test", helloHandler("beta"))
	client := n.Client()

	for host, want := range map[string]string{"crl.a.test": "alpha", "crl.b.test": "beta"} {
		resp, err := client.Get("http://" + host + "/x.crl")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != want {
			t.Errorf("%s body = %q", host, body)
		}
	}
}

func TestUnknownHostIsNXDomain(t *testing.T) {
	n := New()
	_, err := n.Client().Get("http://nowhere.test/")
	if err == nil {
		t.Fatal("unknown host resolved")
	}
	var he *HostError
	if !errors.As(err, &he) || he.Mode != FailNXDomain {
		t.Fatalf("error = %v", err)
	}
}

func TestFailureInjection(t *testing.T) {
	n := New()
	n.Register("ocsp.test", helloHandler("ok"))
	n.SetFailure("ocsp.test", FailUnresponsive)
	_, err := n.Client().Get("http://ocsp.test/")
	var he *HostError
	if !errors.As(err, &he) || he.Mode != FailUnresponsive {
		t.Fatalf("error = %v", err)
	}
	n.SetFailure("ocsp.test", FailNone)
	resp, err := n.Client().Get("http://ocsp.test/")
	if err != nil {
		t.Fatalf("after clearing failure: %v", err)
	}
	resp.Body.Close()
}

func TestHandlerStatusCodesPassThrough(t *testing.T) {
	n := New()
	n.Register("crl.test", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	resp, err := n.Client().Get("http://crl.test/missing.crl")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestStatsAccounting(t *testing.T) {
	n := New()
	n.Cost = CostModel{RTT: 100 * time.Millisecond, Bandwidth: 1000} // 1 KB/s
	n.Register("big.test", helloHandler(string(make([]byte, 500))))
	client := n.Client()
	for i := 0; i < 3; i++ {
		resp, err := client.Get("http://big.test/")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	total := n.TotalStats()
	if total.Requests != 3 || total.BytesReceived != 1500 {
		t.Errorf("total = %+v", total)
	}
	// Each request: 100ms RTT + 500B at 1000 B/s = 600ms; three = 1.8s.
	if total.ModelledTime != 1800*time.Millisecond {
		t.Errorf("modelled time = %v", total.ModelledTime)
	}
	hs := n.HostStats("big.test")
	if hs.Requests != 3 {
		t.Errorf("host stats = %+v", hs)
	}
	if n.HostStats("other.test").Requests != 0 {
		t.Error("phantom host stats")
	}
	n.ResetStats()
	if n.TotalStats().Requests != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestServiceTimeCapture(t *testing.T) {
	n := New()
	n.Cost = CostModel{RTT: 100 * time.Millisecond, Bandwidth: 1000} // 1 KB/s
	n.Register("small.test", helloHandler(string(make([]byte, 100))))
	n.Register("big.test", helloHandler(string(make([]byte, 900))))
	client := n.Client()
	for _, host := range []string{"small.test", "small.test", "big.test"} {
		resp, err := client.Get("http://" + host + "/")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// small: 100ms + 100B/1000Bps = 200ms; big: 100ms + 900ms = 1s.
	total := n.TotalStats()
	if total.Latency.Count != 3 {
		t.Fatalf("latency count = %d", total.Latency.Count)
	}
	if total.Latency.MaxNs != int64(time.Second) {
		t.Errorf("latency max = %v", time.Duration(total.Latency.MaxNs))
	}
	if got := time.Duration(total.Latency.P50Ns); got > 200*time.Millisecond || got < 195*time.Millisecond {
		t.Errorf("p50 = %v, want ~200ms (lower bucket bound)", got)
	}
	small := n.HostStats("small.test")
	if small.Latency.Count != 2 || time.Duration(small.Latency.MaxNs) != 200*time.Millisecond {
		t.Errorf("small host latency = %+v", small.Latency)
	}
	// The sum of per-request service times must be exactly ModelledTime.
	snap := n.LatencySnapshot()
	if time.Duration(snap.Sum) != total.ModelledTime {
		t.Errorf("histogram sum %v != modelled time %v", time.Duration(snap.Sum), total.ModelledTime)
	}
	n.ResetStats()
	if n.TotalStats().Latency.Count != 0 {
		t.Error("ResetStats kept latency samples")
	}
}

func TestCDNHitMissLatencySeparation(t *testing.T) {
	clock := time.Date(2015, time.March, 1, 0, 0, 0, 0, time.UTC)
	origin := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Cache-Control", "max-age=3600")
		w.Write(make([]byte, 1000))
	})
	cdn := NewCDN(origin, func() time.Time { return clock })
	n := New()
	n.Cost = CostModel{RTT: 10 * time.Millisecond, Bandwidth: 1e6, OriginRTT: 50 * time.Millisecond}
	n.Register("cdn.test", cdn)
	client := n.Client()
	for i := 0; i < 4; i++ {
		resp, err := client.Get("http://cdn.test/shard.crl")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	hit, miss := n.CDNLatencySnapshots()
	if miss.Count != 1 || hit.Count != 3 {
		t.Fatalf("hit/miss counts = %d/%d, want 3/1", hit.Count, miss.Count)
	}
	// base cost: 10ms + 1000B at 1MB/s (1ms) = 11ms; miss adds 50ms OriginRTT.
	if miss.Max <= hit.Max {
		t.Errorf("origin miss (%v) should be slower than CDN hit (%v)",
			time.Duration(miss.Max), time.Duration(hit.Max))
	}
	if want := 61 * time.Millisecond; time.Duration(miss.Max) != want {
		t.Errorf("miss service time = %v, want %v", time.Duration(miss.Max), want)
	}
	if want := 11 * time.Millisecond; time.Duration(hit.Max) != want {
		t.Errorf("hit service time = %v, want %v", time.Duration(hit.Max), want)
	}
	// ModelledTime includes the origin penalty exactly once.
	if want := 4*11*time.Millisecond + 50*time.Millisecond; n.TotalStats().ModelledTime != want {
		t.Errorf("modelled time = %v, want %v", n.TotalStats().ModelledTime, want)
	}
}

func TestCostModel(t *testing.T) {
	m := CostModel{RTT: 40 * time.Millisecond, Bandwidth: 1e6}
	if got := m.Cost(0); got != 40*time.Millisecond {
		t.Errorf("Cost(0) = %v", got)
	}
	if got := m.Cost(1e6); got != 1040*time.Millisecond {
		t.Errorf("Cost(1MB) = %v", got)
	}
	free := CostModel{RTT: time.Second}
	if free.Cost(1<<30) != time.Second {
		t.Error("zero bandwidth should cost only RTT")
	}
	// The 76 MB Apple CRL (§5.2) takes over a minute at 10 Mbit/s.
	if DefaultCostModel.Cost(76<<20) < time.Minute {
		t.Error("76MB CRL should cost over a minute at default bandwidth")
	}
}

func TestRegisterReplacesHandler(t *testing.T) {
	n := New()
	n.Register("x.test", helloHandler("one"))
	n.Register("x.test", helloHandler("two"))
	resp, err := n.Client().Get("http://x.test/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "two" {
		t.Errorf("body = %q", body)
	}
}
