package simnet

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/simtime"
)

// cdnOrigin is a counting origin that serves a versioned body with a
// configurable Cache-Control header.
type cdnOrigin struct {
	calls        atomic.Int64
	cacheControl string
	etag         string
}

func (o *cdnOrigin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := o.calls.Add(1)
	if o.cacheControl != "" {
		w.Header().Set("Cache-Control", o.cacheControl)
	}
	if o.etag != "" {
		w.Header().Set("ETag", o.etag)
	}
	w.Header().Set("Content-Type", "text/plain")
	io.WriteString(w, "v"+strconv.FormatInt(n, 10))
}

func cdnGet(t *testing.T, cdn *CDN, path string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	cdn.ServeHTTP(rec, req)
	return rec
}

func TestCDNCachesUntilExpiry(t *testing.T) {
	clock := simtime.NewClock(simtime.CrawlStart)
	origin := &cdnOrigin{cacheControl: "max-age=3600,public"}
	cdn := NewCDN(origin, clock.Now)

	first := cdnGet(t, cdn, "/ocsp/abc", nil)
	if first.Body.String() != "v1" || first.Header().Get("X-Cache") != "MISS" {
		t.Fatalf("first: body=%q x-cache=%q", first.Body.String(), first.Header().Get("X-Cache"))
	}

	// Within the hour: replayed, origin untouched, Age advances.
	clock.Advance(30 * time.Minute)
	second := cdnGet(t, cdn, "/ocsp/abc", nil)
	if second.Body.String() != "v1" || second.Header().Get("X-Cache") != "HIT" {
		t.Fatalf("second: body=%q x-cache=%q", second.Body.String(), second.Header().Get("X-Cache"))
	}
	if age := second.Header().Get("Age"); age != "1800" {
		t.Errorf("Age = %q, want 1800", age)
	}
	if origin.calls.Load() != 1 {
		t.Fatalf("origin calls = %d", origin.calls.Load())
	}

	// Past expiry: refetched.
	clock.Advance(31 * time.Minute)
	third := cdnGet(t, cdn, "/ocsp/abc", nil)
	if third.Body.String() != "v2" || third.Header().Get("X-Cache") != "MISS" {
		t.Fatalf("third: body=%q x-cache=%q", third.Body.String(), third.Header().Get("X-Cache"))
	}

	st := cdn.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
	if got := st.HitRatio(); got < 0.33 || got > 0.34 {
		t.Errorf("hit ratio = %v", got)
	}
}

func TestCDNDistinctURLsDistinctEntries(t *testing.T) {
	clock := simtime.NewClock(simtime.CrawlStart)
	origin := &cdnOrigin{cacheControl: "max-age=60"}
	cdn := NewCDN(origin, clock.Now)
	cdnGet(t, cdn, "/a", nil)
	cdnGet(t, cdn, "/b", nil)
	if origin.calls.Load() != 2 {
		t.Errorf("origin calls = %d, want per-URL entries", origin.calls.Load())
	}
	cdnGet(t, cdn, "/a", nil)
	if origin.calls.Load() != 2 {
		t.Error("cached /a refetched")
	}
}

func TestCDNPOSTBypasses(t *testing.T) {
	clock := simtime.NewClock(simtime.CrawlStart)
	origin := &cdnOrigin{cacheControl: "max-age=3600"}
	cdn := NewCDN(origin, clock.Now)
	for i := 0; i < 2; i++ {
		req := httptest.NewRequest(http.MethodPost, "/ocsp", strings.NewReader("body"))
		rec := httptest.NewRecorder()
		cdn.ServeHTTP(rec, req)
	}
	if origin.calls.Load() != 2 {
		t.Errorf("origin calls = %d: POST must never be served from cache", origin.calls.Load())
	}
	if st := cdn.Stats(); st.Bypasses != 2 || st.Hits != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCDNUncacheableNotStored(t *testing.T) {
	clock := simtime.NewClock(simtime.CrawlStart)
	for _, cc := range []string{"", "no-store", "no-cache", "private, max-age=60", "max-age=0"} {
		origin := &cdnOrigin{cacheControl: cc}
		cdn := NewCDN(origin, clock.Now)
		cdnGet(t, cdn, "/x", nil)
		cdnGet(t, cdn, "/x", nil)
		if origin.calls.Load() != 2 {
			t.Errorf("Cache-Control=%q: origin calls = %d, want 2 (uncacheable)", cc, origin.calls.Load())
		}
	}
}

func TestCDNExpiresFallback(t *testing.T) {
	clock := simtime.NewClock(simtime.CrawlStart)
	var origin http.HandlerFunc = func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Expires", clock.Now().Add(time.Hour).UTC().Format(http.TimeFormat))
		io.WriteString(w, "ok")
	}
	cdn := NewCDN(origin, clock.Now)
	cdnGet(t, cdn, "/crl/0.crl", nil)
	clock.Advance(30 * time.Minute)
	rec := cdnGet(t, cdn, "/crl/0.crl", nil)
	if rec.Header().Get("X-Cache") != "HIT" {
		t.Error("Expires-only response not cached")
	}
	clock.Advance(31 * time.Minute)
	rec = cdnGet(t, cdn, "/crl/0.crl", nil)
	if rec.Header().Get("X-Cache") != "MISS" {
		t.Error("entry outlived Expires")
	}
}

func TestCDNConditionalRevalidation(t *testing.T) {
	clock := simtime.NewClock(simtime.CrawlStart)
	origin := &cdnOrigin{cacheControl: "max-age=3600", etag: `"abc123"`}
	cdn := NewCDN(origin, clock.Now)

	// A first conditional request must still fill the cache with a full
	// body (the conditional is stripped before hitting the origin).
	first := cdnGet(t, cdn, "/r", map[string]string{"If-None-Match": `"abc123"`})
	if first.Code != http.StatusOK || first.Body.Len() == 0 {
		t.Fatalf("miss with conditional: code=%d len=%d", first.Code, first.Body.Len())
	}

	// A matching conditional on a warm entry revalidates with 304.
	second := cdnGet(t, cdn, "/r", map[string]string{"If-None-Match": `"abc123"`})
	if second.Code != http.StatusNotModified || second.Body.Len() != 0 {
		t.Fatalf("revalidation: code=%d len=%d", second.Code, second.Body.Len())
	}
	// A non-matching conditional gets the full cached body.
	third := cdnGet(t, cdn, "/r", map[string]string{"If-None-Match": `"other"`})
	if third.Code != http.StatusOK || third.Body.String() != "v1" {
		t.Fatalf("mismatch: code=%d body=%q", third.Code, third.Body.String())
	}
	st := cdn.Stats()
	if st.NotModified != 1 || st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if origin.calls.Load() != 1 {
		t.Errorf("origin calls = %d", origin.calls.Load())
	}
}

func TestCDNFlush(t *testing.T) {
	clock := simtime.NewClock(simtime.CrawlStart)
	origin := &cdnOrigin{cacheControl: "max-age=3600"}
	cdn := NewCDN(origin, clock.Now)
	cdnGet(t, cdn, "/x", nil)
	cdn.Flush()
	cdnGet(t, cdn, "/x", nil)
	if origin.calls.Load() != 2 {
		t.Error("flush did not drop the entry")
	}
}

// TestCDNOverOCSPResponder is the integration the load model cares
// about: fronting the CA's caching responder with the CDN tier yields
// cache hits governed by the responder's advertised max-age.
func TestCDNOverOCSPResponder(t *testing.T) {
	clock := simtime.NewClock(simtime.CrawlStart)
	net := New()
	// The recorder-based CDN needs an http.Handler origin; use a plain
	// handler that emits a cacheable body.
	hits := atomic.Int64{}
	origin := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Cache-Control", "max-age=120,public")
		io.WriteString(w, "der-bytes")
	})
	cdn := NewCDN(origin, clock.Now)
	net.Register("ocsp.cdn.test", cdn)
	client := net.Client()
	for i := 0; i < 5; i++ {
		resp, err := client.Get("http://ocsp.cdn.test/ocsp/req")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if hits.Load() != 1 {
		t.Errorf("origin hits = %d, want 1 (4 CDN hits)", hits.Load())
	}
	if ratio := cdn.Stats().HitRatio(); ratio != 0.8 {
		t.Errorf("hit ratio = %v, want 0.8", ratio)
	}
}
