package simnet

import (
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// CDN is an http.Handler modelling the CDN cache tier real CAs put in
// front of their OCSP responders and CRL servers (§2.2, §5): GET
// responses are stored for the freshness lifetime their Cache-Control
// max-age / Expires headers declare and replayed without touching the
// origin, conditional requests revalidate against the stored ETag, and
// everything else passes through. Hit/miss counters expose the cache
// economics the paper attributes to pre-produced responses.
//
// The model is deliberately a single shared cache (one "edge"); per-POP
// effects are out of scope. Vary is ignored — the origin handlers here
// never produce content-negotiated responses.
type CDN struct {
	// Origin receives misses and non-GET traffic.
	Origin http.Handler
	// Now supplies cache time; time.Now when nil. The simulation points
	// this at the virtual clock so entries expire in simulated time.
	Now func() time.Time

	mu      sync.Mutex
	entries map[string]*cdnEntry
	stats   CDNStats
}

// CDNStats counts cache outcomes.
type CDNStats struct {
	// Hits are GETs served from cache, including 304 revalidations.
	Hits int64
	// Misses are GETs forwarded to the origin (no entry, or expired).
	Misses int64
	// Bypasses are non-GET requests, always forwarded.
	Bypasses int64
	// NotModified counts the subset of Hits answered 304 via ETag.
	NotModified int64
}

// HitRatio returns Hits / (Hits + Misses), or 0 with no GET traffic.
func (s CDNStats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

type cdnEntry struct {
	status  int
	header  http.Header
	body    []byte
	stored  time.Time
	expires time.Time
}

// NewCDN returns an empty cache in front of origin. now may be nil.
func NewCDN(origin http.Handler, now func() time.Time) *CDN {
	return &CDN{Origin: origin, Now: now, entries: make(map[string]*cdnEntry)}
}

func (c *CDN) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

// Stats returns a snapshot of the cache counters.
func (c *CDN) Stats() CDNStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ServeHTTP implements http.Handler.
func (c *CDN) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		c.mu.Lock()
		c.stats.Bypasses++
		c.mu.Unlock()
		c.Origin.ServeHTTP(w, r)
		return
	}
	key := r.URL.String()
	now := c.now()
	c.mu.Lock()
	e := c.entries[key]
	if e != nil && now.Before(e.expires) {
		c.stats.Hits++
		c.mu.Unlock()
		c.serve(w, r, e, now, true)
		return
	}
	c.stats.Misses++
	c.mu.Unlock()

	// Fetch from origin with conditionals stripped, so the cache always
	// stores a full response even when the client sent If-None-Match.
	fwd := r
	if r.Header.Get("If-None-Match") != "" || r.Header.Get("If-Modified-Since") != "" {
		fwd = r.Clone(r.Context())
		fwd.Header.Del("If-None-Match")
		fwd.Header.Del("If-Modified-Since")
	}
	rec := &recorder{}
	c.Origin.ServeHTTP(rec, fwd)
	if rec.code == 0 {
		rec.code = http.StatusOK
	}
	header := rec.header
	if header == nil {
		header = http.Header{}
	}
	e = &cdnEntry{status: rec.code, header: header, body: rec.body, stored: now}
	if rec.code == http.StatusOK {
		if ttl, ok := freshnessLifetime(header, now); ok && ttl > 0 {
			e.expires = now.Add(ttl)
			c.mu.Lock()
			c.entries[key] = e
			c.mu.Unlock()
		}
	}
	c.serve(w, r, e, now, false)
}

// serve replays a stored (or just-fetched) response, answering 304 when
// the client's validator matches a cache hit.
func (c *CDN) serve(w http.ResponseWriter, r *http.Request, e *cdnEntry, now time.Time, hit bool) {
	h := w.Header()
	for k, vs := range e.header {
		h[k] = append(h[k], vs...)
	}
	if hit {
		h.Set("X-Cache", "HIT")
		h.Set("Age", strconv.FormatInt(int64(now.Sub(e.stored)/time.Second), 10))
		if etag := e.header.Get("ETag"); etag != "" && r.Header.Get("If-None-Match") == etag {
			c.mu.Lock()
			c.stats.NotModified++
			c.mu.Unlock()
			w.WriteHeader(http.StatusNotModified)
			return
		}
	} else {
		h.Set("X-Cache", "MISS")
	}
	w.WriteHeader(e.status)
	w.Write(e.body)
}

// Flush drops every cached entry (an operator purge).
func (c *CDN) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*cdnEntry)
}

// freshnessLifetime derives how long a response may be served from cache:
// Cache-Control max-age wins over Expires (RFC 9111 §4.2.1), and
// no-store / no-cache / private forbid caching outright.
func freshnessLifetime(h http.Header, now time.Time) (time.Duration, bool) {
	if cc := h.Get("Cache-Control"); cc != "" {
		maxAge, haveMaxAge := time.Duration(0), false
		for _, part := range strings.Split(cc, ",") {
			part = strings.TrimSpace(part)
			switch {
			case part == "no-store" || part == "no-cache" || part == "private":
				return 0, false
			case strings.HasPrefix(part, "max-age="):
				if secs, err := strconv.Atoi(part[len("max-age="):]); err == nil {
					maxAge, haveMaxAge = time.Duration(secs)*time.Second, true
				}
			}
		}
		if haveMaxAge {
			return maxAge, true
		}
	}
	if exp := h.Get("Expires"); exp != "" {
		if t, err := http.ParseTime(exp); err == nil {
			return t.Sub(now), true
		}
	}
	return 0, false
}
