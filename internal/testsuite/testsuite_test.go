package testsuite

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/browser"
)

var (
	suiteOnce sync.Once
	suite     *Suite
	suiteErr  error
)

func sharedSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = Build(Generate())
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suite
}

func TestGenerateShape(t *testing.T) {
	cases := Generate()
	// 24 baseline + 60 revoked + 120 unavailable + 20 unknown-status +
	// 20 fallback + 6 stapling — the same dimensions as the paper's
	// 244-configuration suite (§6.1), with the CRL-fallback probes the
	// Table 2 "Try CRL on failure" row needs broken out explicitly.
	if len(cases) != 250 {
		t.Fatalf("suite has %d cases, want 250", len(cases))
	}
	seen := map[string]bool{}
	byCondition := map[Condition]int{}
	for _, c := range cases {
		if seen[c.ID] {
			t.Errorf("duplicate case ID %s", c.ID)
		}
		seen[c.ID] = true
		byCondition[c.Condition]++
		if c.Intermediates < 0 || c.Intermediates > 3 {
			t.Errorf("%s: bad chain length", c.ID)
		}
		if c.Condition != CondGood && c.Target < 0 {
			t.Errorf("%s: missing target", c.ID)
		}
		if c.Target > c.Intermediates {
			t.Errorf("%s: target %d outside chain", c.ID, c.Target)
		}
	}
	want := map[Condition]int{
		CondGood: 24, CondRevoked: 60, CondUnavailable: 120,
		CondUnknownStatus: 20, CondFallbackRevoked: 20, CondStaple: 6,
	}
	for cond, n := range want {
		if byCondition[cond] != n {
			t.Errorf("%v cases = %d, want %d", cond, byCondition[cond], n)
		}
	}
}

func TestBuiltChainsAreWellFormed(t *testing.T) {
	s := sharedSuite(t)
	for _, c := range s.Cases {
		env := s.Envs[c.ID]
		if len(env.Chain) != c.Intermediates+2 {
			t.Fatalf("%s: chain length %d, want %d", c.ID, len(env.Chain), c.Intermediates+2)
		}
		// Signatures link each element to the next.
		for i := 0; i < len(env.Chain)-1; i++ {
			if err := env.Chain[i].CheckSignatureFrom(env.Chain[i+1]); err != nil {
				t.Fatalf("%s: link %d: %v", c.ID, i, err)
			}
		}
		if env.Chain[0].IsEV() != c.EV {
			t.Errorf("%s: EV mismatch", c.ID)
		}
		hasCRL := len(env.Chain[0].CRLDistributionPoints) > 0
		hasOCSP := len(env.Chain[0].OCSPServers) > 0
		switch c.Protocol {
		case ProtoCRL:
			if !hasCRL || hasOCSP {
				t.Errorf("%s: leaf pointers crl=%t ocsp=%t", c.ID, hasCRL, hasOCSP)
			}
		case ProtoOCSP:
			if hasCRL || !hasOCSP {
				t.Errorf("%s: leaf pointers crl=%t ocsp=%t", c.ID, hasCRL, hasOCSP)
			}
		case ProtoBoth:
			if !hasCRL || !hasOCSP {
				t.Errorf("%s: leaf pointers crl=%t ocsp=%t", c.ID, hasCRL, hasOCSP)
			}
		}
		if c.Condition == CondStaple && len(env.Staple) == 0 {
			t.Errorf("%s: missing staple", c.ID)
		}
	}
}

func TestHardenedPassesEverything(t *testing.T) {
	s := sharedSuite(t)
	m, err := s.Matrix([]*browser.Profile{browser.Hardened()})
	if err != nil {
		t.Fatal(err)
	}
	for ri, row := range m.Rows {
		if got := m.Cells[ri][0]; got != CellPass {
			t.Errorf("Hardened %q = %s, want %s", row.Label, got, CellPass)
		}
	}
}

func TestGoodChainsAcceptedByEveryone(t *testing.T) {
	s := sharedSuite(t)
	for _, p := range browser.All() {
		rep, err := s.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range s.Cases {
			if c.Condition != CondGood {
				continue
			}
			if rep.Outcomes[c.ID] != browser.OutcomeAccept {
				t.Errorf("%s rejected good chain %s", p.Name, c.ID)
			}
		}
	}
}

// expectedTable2 is the paper's Table 2, column by column, with "l/w"
// cells resolved by the per-OS profile split and the unmeasurable Linux
// "–" cells replaced by this model's documented behaviour (accept).
// Column order matches browser.All().
var expectedTable2 = map[string][15]Cell{
	//                               ChOSX ChWin ChLin FF40  O12  O31osx O31wl Safari IE79 IE10 IE11 iOS  Stock AChr IEM
	"CRL int1 revoked":       {"ev", "Y", "ev", "N", "Y", "Y", "Y", "Y", "Y", "Y", "Y", "N", "N", "N", "N"},
	"CRL int1 unavailable":   {"ev", "Y", "N", "N", "N", "Y", "Y", "Y", "Y", "Y", "Y", "N", "N", "N", "N"},
	"CRL int2+ revoked":      {"ev", "ev", "ev", "N", "Y", "Y", "Y", "Y", "Y", "Y", "Y", "N", "N", "N", "N"},
	"CRL int2+ unavailable":  {"N", "N", "N", "N", "N", "N", "N", "N", "N", "N", "N", "N", "N", "N", "N"},
	"CRL leaf revoked":       {"ev", "ev", "ev", "N", "Y", "Y", "Y", "Y", "Y", "Y", "Y", "N", "N", "N", "N"},
	"CRL leaf unavailable":   {"N", "N", "N", "N", "N", "N", "N", "N", "N", "a", "Y", "N", "N", "N", "N"},
	"OCSP int1 revoked":      {"ev", "ev", "ev", "ev", "N", "Y", "Y", "Y", "Y", "Y", "Y", "N", "N", "N", "N"},
	"OCSP int1 unavailable":  {"N", "N", "N", "N", "N", "N", "Y", "N", "Y", "Y", "Y", "N", "N", "N", "N"},
	"OCSP int2+ revoked":     {"ev", "ev", "ev", "ev", "N", "Y", "Y", "Y", "Y", "Y", "Y", "N", "N", "N", "N"},
	"OCSP int2+ unavailable": {"N", "N", "N", "N", "N", "N", "N", "N", "N", "N", "N", "N", "N", "N", "N"},
	"OCSP leaf revoked":      {"ev", "ev", "ev", "Y", "Y", "Y", "Y", "Y", "Y", "Y", "Y", "N", "N", "N", "N"},
	"OCSP leaf unavailable":  {"N", "N", "N", "N", "N", "N", "N", "N", "N", "a", "Y", "N", "N", "N", "N"},
	"Reject unknown status":  {"N", "N", "N", "Y", "Y", "N", "N", "N", "N", "N", "N", "-", "-", "-", "-"},
	"Try CRL on failure":     {"ev", "ev", "N", "N", "N", "N", "Y", "Y", "Y", "Y", "Y", "-", "-", "-", "-"},
	"Request OCSP staple":    {"Y", "Y", "Y", "Y", "Y", "Y", "Y", "N", "Y", "Y", "Y", "N", "i", "i", "N"},
	"Respect revoked staple": {"N", "Y", "N", "Y", "Y", "N", "Y", "-", "Y", "Y", "Y", "-", "-", "-", "-"},
}

func TestMatrixReproducesTable2(t *testing.T) {
	s := sharedSuite(t)
	profiles := browser.All()
	m, err := s.Matrix(profiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Rows) != 16 {
		t.Fatalf("rows = %d", len(m.Rows))
	}
	for ri, row := range m.Rows {
		want, ok := expectedTable2[row.Label]
		if !ok {
			t.Errorf("no expectation for row %q", row.Label)
			continue
		}
		for ci, p := range profiles {
			if got := m.Cells[ri][ci]; got != want[ci] {
				t.Errorf("row %q, %s: got %q, want %q", row.Label, p.Name, got, want[ci])
			}
		}
	}
}

func TestMatrixFindAndRender(t *testing.T) {
	s := sharedSuite(t)
	m, err := s.Matrix([]*browser.Profile{browser.Firefox40(), browser.MobileSafari()})
	if err != nil {
		t.Fatal(err)
	}
	cell, ok := m.Find("OCSP leaf revoked", "Firefox 40")
	if !ok || cell != CellPass {
		t.Errorf("Find = %q, %v", cell, ok)
	}
	if _, ok := m.Find("no such row", "Firefox 40"); ok {
		t.Error("Find invented a row")
	}
	out := m.Render()
	if !strings.Contains(out, "Firefox 40") || !strings.Contains(out, "OCSP leaf revoked") {
		t.Error("Render missing content")
	}
}

func TestSortedCaseIDsDeterministic(t *testing.T) {
	s := sharedSuite(t)
	a := s.SortedCaseIDs()
	b := s.SortedCaseIDs()
	if len(a) != len(s.Cases) {
		t.Fatalf("ids = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatal("not sorted")
		}
	}
}
