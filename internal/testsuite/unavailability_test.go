package testsuite

import (
	"testing"

	"repro/internal/browser"
)

// expectedUnavailableOutcome derives, from a profile's declared
// soft/hard-fail flags alone, what the engine must decide when the
// target element's revocation infrastructure is unreachable. This is an
// independent re-statement of the §6.2 policy — if profiles.go and the
// engine ever drift apart, the table below disagrees with the measured
// outcome and the test names the cell.
func expectedUnavailableOutcome(p *browser.Profile, c *Case) browser.Outcome {
	crlTab, ocspTab := p.CRL, p.OCSP
	if c.EV && p.EV != nil {
		crlTab, ocspTab = p.EV.CRL, p.EV.OCSP
	}
	var pos browser.Position
	switch {
	case c.Target == 0:
		pos = browser.PosLeaf
	case c.Target == 1:
		pos = browser.PosInt1
	default:
		pos = browser.PosIntDeep
	}
	// §6.3: with no intermediates, the leaf inherits Int1's
	// unavailability behaviour for profiles that declare it.
	if c.Target == 0 && c.Intermediates == 0 && p.TreatLeafAsInt1 {
		pos = browser.PosInt1
	}
	var beh browser.Behavior
	if c.Protocol == ProtoCRL {
		beh = crlTab[pos]
	} else {
		beh = ocspTab[pos]
	}
	// Unavailability cases are single-protocol, so OnlyIfSoleProtocol
	// never suppresses the check and CRL fallback has nowhere to go.
	if !beh.Check {
		return browser.OutcomeAccept // never fetched: nothing to miss
	}
	switch {
	case beh.RejectUnavailable:
		return browser.OutcomeReject // hard fail
	case beh.WarnUnavailable:
		return browser.OutcomeWarn
	default:
		return browser.OutcomeAccept // soft fail — §2.3's criticism
	}
}

// TestUnavailabilityMatrixMatchesProfileFlags runs every browser profile
// against every injected-unavailability case (all chain lengths, both
// protocols, all three failure modes, DV and EV) and checks the measured
// outcome against the flag-derived expectation.
func TestUnavailabilityMatrixMatchesProfileFlags(t *testing.T) {
	var cases []*Case
	for _, c := range Generate() {
		if c.Condition == CondUnavailable {
			cases = append(cases, c)
		}
	}
	if len(cases) != 120 {
		t.Fatalf("expected 120 unavailability cases, generator produced %d", len(cases))
	}
	s, err := Build(cases)
	if err != nil {
		t.Fatal(err)
	}

	profiles := browser.All()
	if len(profiles) != 15 {
		t.Fatalf("expected 15 profiles, got %d", len(profiles))
	}
	softFailAccepts, hardFailRejects := 0, 0
	for _, p := range profiles {
		rep, err := s.Run(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for _, c := range cases {
			want := expectedUnavailableOutcome(p, c)
			got, ok := rep.Outcomes[c.ID]
			if !ok {
				t.Fatalf("%s: case %s missing from report", p.Name, c.ID)
			}
			if got != want {
				t.Errorf("%s / %s: outcome %v, profile flags imply %v", p.Name, c.ID, got, want)
			}
			switch want {
			case browser.OutcomeAccept:
				softFailAccepts++
			case browser.OutcomeReject:
				hardFailRejects++
			}
		}
	}
	// Sanity on the derivation itself: the study's headline is that both
	// behaviours exist in the wild — all-soft or all-hard would mean the
	// expectation function collapsed.
	if softFailAccepts == 0 || hardFailRejects == 0 {
		t.Fatalf("degenerate expectations: %d soft accepts, %d hard rejects", softFailAccepts, hardFailRejects)
	}
}
