package testsuite

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/browser"
	"repro/internal/cascade"
)

// freshCascade builds a suite-wide cascade that is valid at the suite
// clock's current time.
func freshCascade(t *testing.T, s *Suite) *cascade.Filter {
	t.Helper()
	f, err := s.BuildCascade(cascade.BuildConfig{
		Epoch:   1,
		BuiltAt: s.Clock.Now(),
		MaxAge:  48 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestCascadeMatrixOffline runs the full 250-case battery against a
// hard-fail profile carrying a fresh suite-wide cascade. The cascade is
// authoritative for every chain the suite presents, so the expected
// outcome of every case collapses to its ground truth — revoked element
// anywhere means Reject, otherwise Accept — with zero network requests.
// In particular the responder-down cases (nxdomain / 404 / unresponsive)
// are all answered: the offline artifact does not care that the
// infrastructure it replaces is broken.
func TestCascadeMatrixOffline(t *testing.T) {
	s := sharedSuite(t)
	f := freshCascade(t, s)

	before := s.Net.TotalStats().Requests
	rep, err := s.RunCascade(browser.Hardened(), f)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Net.TotalStats().Requests - before; got != 0 {
		t.Errorf("cascade run made %d network requests, want 0", got)
	}

	unavailableAnswered := 0
	for _, c := range s.Cases {
		want := browser.OutcomeAccept
		if RevokedElement(c) >= 0 {
			want = browser.OutcomeReject
		}
		got, ok := rep.Outcomes[c.ID]
		if !ok {
			t.Fatalf("case %s missing from report", c.ID)
		}
		if got != want {
			t.Errorf("%s: outcome %v, ground truth implies %v", c.ID, got, want)
		}
		if c.Condition == CondUnavailable && got == browser.OutcomeAccept {
			unavailableAnswered++
		}
	}
	if unavailableAnswered == 0 {
		t.Error("no responder-down case was answered offline")
	}
}

// TestCascadeStaleFallsBackToNetwork installs a cascade whose snapshot
// has outlived its max-age: the engine must skip it entirely, so every
// case's outcome must match the plain no-cascade run of the same
// profile, for a hard-fail, a soft-fail, and an EV-split profile alike.
func TestCascadeStaleFallsBackToNetwork(t *testing.T) {
	s := sharedSuite(t)
	stale, err := s.BuildCascade(cascade.BuildConfig{
		Epoch:   1,
		BuiltAt: s.Clock.Now().Add(-72 * time.Hour),
		MaxAge:  24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stale.FreshAt(s.Clock.Now()) {
		t.Fatal("test cascade is not actually stale")
	}

	profiles := []*browser.Profile{browser.Hardened()}
	for _, p := range browser.All()[:2] {
		profiles = append(profiles, p)
	}
	for _, p := range profiles {
		base, err := s.Run(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		got, err := s.RunCascade(p, stale)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for _, c := range s.Cases {
			if got.Outcomes[c.ID] != base.Outcomes[c.ID] {
				t.Errorf("%s / %s: stale-cascade outcome %v, baseline %v",
					p.Name, c.ID, got.Outcomes[c.ID], base.Outcomes[c.ID])
			}
		}
	}
}

// TestCascadeMatrixDeterministic pins both layers of determinism: the
// suite-wide cascade encodes to identical bytes on every build, and two
// cascade-enabled runs of the full battery produce identical outcome
// maps.
func TestCascadeMatrixDeterministic(t *testing.T) {
	s := sharedSuite(t)
	a := freshCascade(t, s)
	b := freshCascade(t, s)
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("suite cascade builds are not byte-identical")
	}

	rep1, err := s.RunCascade(browser.Hardened(), a)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := s.RunCascade(browser.Hardened(), b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep1.Outcomes) != len(rep2.Outcomes) {
		t.Fatalf("outcome counts differ: %d vs %d", len(rep1.Outcomes), len(rep2.Outcomes))
	}
	for id, o := range rep1.Outcomes {
		if rep2.Outcomes[id] != o {
			t.Errorf("%s: run 1 %v, run 2 %v", id, o, rep2.Outcomes[id])
		}
	}
}
