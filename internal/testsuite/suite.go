// Package testsuite implements the paper's browser test suite (§6.1–6.2):
// a generated battery of certificate-chain configurations — chain lengths
// of 0–3 intermediates, CRL/OCSP/both revocation pointers, EV and DV
// leaves, revoked elements at every chain position, four kinds of
// unavailable revocation infrastructure, and OCSP-stapling scenarios —
// each served by dedicated per-test endpoints, plus a runner that
// evaluates browser profiles against every case and renders the Table 2
// matrix.
//
// Where the paper gave each test a unique DNS name served by a dedicated
// Nginx instance, this suite gives each test's CAs unique virtual hosts on
// a simnet fabric; the checking client performs the same HTTP fetches
// either way.
package testsuite

import (
	"crypto/ecdsa"
	"fmt"
	"net/http"
	"time"

	"repro/internal/ca"
	"repro/internal/crl"
	"repro/internal/faultnet"
	"repro/internal/ocsp"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/x509x"
)

// Protocol selects which revocation pointers the chain's certificates
// carry.
type Protocol int

// Protocols.
const (
	ProtoCRL Protocol = iota
	ProtoOCSP
	ProtoBoth
)

func (p Protocol) String() string {
	switch p {
	case ProtoCRL:
		return "crl"
	case ProtoOCSP:
		return "ocsp"
	case ProtoBoth:
		return "both"
	default:
		return "?"
	}
}

// Condition is what the test does to the chain.
type Condition int

// Conditions.
const (
	// CondGood leaves everything valid.
	CondGood Condition = iota
	// CondRevoked revokes the target element.
	CondRevoked
	// CondUnavailable makes the target element's revocation
	// infrastructure unreachable (per Failure).
	CondUnavailable
	// CondUnknownStatus makes the target's OCSP responder answer
	// "unknown".
	CondUnknownStatus
	// CondFallbackRevoked revokes the target on a both-protocol chain
	// and breaks its OCSP responder, so only CRL fallback can catch it.
	CondFallbackRevoked
	// CondStaple serves a staple (per Staple) with the leaf's OCSP
	// responder firewalled.
	CondStaple
)

func (c Condition) String() string {
	switch c {
	case CondGood:
		return "good"
	case CondRevoked:
		return "revoked"
	case CondUnavailable:
		return "unavailable"
	case CondUnknownStatus:
		return "unknown-status"
	case CondFallbackRevoked:
		return "fallback-revoked"
	case CondStaple:
		return "staple"
	default:
		return "?"
	}
}

// Failure enumerates the paper's unavailability modes (§6.1): the
// revocation server's DNS name does not exist, the server returns HTTP
// 404, or the server does not respond.
type Failure int

// Failures.
const (
	FailNXDomain Failure = iota
	FailHTTP404
	FailUnresponsive
)

func (f Failure) String() string {
	return [...]string{"nxdomain", "http404", "unresponsive"}[f]
}

// Case is one test configuration.
type Case struct {
	ID            string
	Intermediates int // 0..3
	Protocol      Protocol
	EV            bool
	Condition     Condition
	// Target is the chain index affected (0 = leaf, 1 = first
	// intermediate, ...); -1 when no element is targeted.
	Target  int
	Failure Failure
	// StapleStatus applies to CondStaple cases.
	StapleStatus ocsp.Status
}

// Generate enumerates the full suite.
func Generate() []*Case {
	var cases []*Case
	add := func(c *Case) {
		c.ID = caseID(c)
		cases = append(cases, c)
	}
	lengths := []int{0, 1, 2, 3}
	protos := []Protocol{ProtoCRL, ProtoOCSP, ProtoBoth}
	evs := []bool{false, true}

	// Baseline: everything good.
	for _, l := range lengths {
		for _, p := range protos {
			for _, ev := range evs {
				add(&Case{Intermediates: l, Protocol: p, EV: ev, Condition: CondGood, Target: -1})
			}
		}
	}
	// Revoked element at every position.
	for _, l := range lengths {
		for target := 0; target <= l; target++ {
			for _, p := range protos {
				for _, ev := range evs {
					add(&Case{Intermediates: l, Protocol: p, EV: ev, Condition: CondRevoked, Target: target})
				}
			}
		}
	}
	// Unavailable revocation infrastructure, three failure modes, for
	// single-protocol chains.
	for _, l := range lengths {
		for target := 0; target <= l; target++ {
			for _, p := range []Protocol{ProtoCRL, ProtoOCSP} {
				for _, f := range []Failure{FailNXDomain, FailHTTP404, FailUnresponsive} {
					for _, ev := range evs {
						add(&Case{Intermediates: l, Protocol: p, EV: ev, Condition: CondUnavailable, Target: target, Failure: f})
					}
				}
			}
		}
	}
	// OCSP responders answering "unknown".
	for _, l := range lengths {
		for target := 0; target <= l; target++ {
			for _, ev := range evs {
				add(&Case{Intermediates: l, Protocol: ProtoOCSP, EV: ev, Condition: CondUnknownStatus, Target: target})
			}
		}
	}
	// CRL fallback: both-protocol chains, OCSP dead, element revoked.
	for _, l := range lengths {
		for target := 0; target <= l; target++ {
			for _, ev := range evs {
				add(&Case{Intermediates: l, Protocol: ProtoBoth, EV: ev, Condition: CondFallbackRevoked, Target: target, Failure: FailUnresponsive})
			}
		}
	}
	// Stapling: good/revoked/unknown staples with the responder
	// firewalled, on a one-intermediate chain.
	for _, st := range []ocsp.Status{ocsp.StatusGood, ocsp.StatusRevoked, ocsp.StatusUnknown} {
		for _, ev := range evs {
			add(&Case{Intermediates: 1, Protocol: ProtoOCSP, EV: ev, Condition: CondStaple, Target: 0, StapleStatus: st})
		}
	}
	return cases
}

func caseID(c *Case) string {
	id := fmt.Sprintf("%s-%dint-%s", c.Protocol, c.Intermediates, c.Condition)
	if c.Target >= 0 {
		id += fmt.Sprintf("-t%d", c.Target)
	}
	if c.Condition == CondUnavailable {
		id += "-" + c.Failure.String()
	}
	if c.Condition == CondStaple {
		id += "-" + c.StapleStatus.String()
	}
	if c.EV {
		id += "-ev"
	}
	return id
}

// Env is one built test case: the chain to present and the staple (if
// any), wired into the suite's network fabric.
type Env struct {
	Case   *Case
	Chain  []*x509x.Certificate // leaf-first, ending at the root
	Staple []byte
}

// Suite is a fully built test battery.
type Suite struct {
	Cases []*Case
	Envs  map[string]*Env // by case ID
	Net   *simnet.Network
	Clock *simtime.Clock
	// Faults wraps Net; the unavailability cases are expressed as
	// injected faults (connection errors for NXDOMAIN, hangs for
	// unresponsive hosts) rather than hand-set fabric flags, so the
	// browser engine exercises the same degradation paths a chaos run
	// does.
	Faults *faultnet.Injector
}

// Client returns the HTTP client evaluations must use: the network
// fabric seen through the suite's fault injector.
func (s *Suite) Client() *http.Client { return s.Faults.Client() }

// Build constructs the PKI and network for every case. A single leaf key
// is shared across cases (key material is irrelevant to revocation
// behaviour and generating hundreds is pure waste).
func Build(cases []*Case) (*Suite, error) {
	clock := simtime.NewClock(simtime.Date(2015, time.March, 1))
	s := &Suite{
		Cases: cases,
		Envs:  make(map[string]*Env, len(cases)),
		Net:   simnet.New(),
		Clock: clock,
	}
	s.Faults = faultnet.New(s.Net, faultnet.Config{Seed: 0x7e57, Now: clock.Now})
	leafKey, err := x509x.GenerateKey()
	if err != nil {
		return nil, err
	}
	for i, c := range cases {
		env, err := s.buildCase(i, c, leafKey)
		if err != nil {
			return nil, fmt.Errorf("testsuite: case %s: %w", c.ID, err)
		}
		s.Envs[c.ID] = env
	}
	return s, nil
}

func (s *Suite) buildCase(idx int, c *Case, leafKey *ecdsa.PrivateKey) (*Env, error) {
	includeCRL := c.Protocol == ProtoCRL || c.Protocol == ProtoBoth
	includeOCSP := c.Protocol == ProtoOCSP || c.Protocol == ProtoBoth

	crlHost := func(level int) string { return fmt.Sprintf("crl.c%03d-l%d.test", idx, level) }
	ocspHost := func(level int) string { return fmt.Sprintf("ocsp.c%03d-l%d.test", idx, level) }

	newCfg := func(level int) ca.Config {
		return ca.Config{
			Name:         fmt.Sprintf("Case %d Level %d", idx, level),
			Subject:      x509x.Name{CommonName: fmt.Sprintf("Test CA c%03d l%d", idx, level)},
			CRLBaseURL:   "http://" + crlHost(level) + "/crl",
			OCSPBaseURL:  "http://" + ocspHost(level) + "/ocsp",
			IncludeCRLDP: includeCRL,
			IncludeOCSP:  includeOCSP,
			Clock:        s.Clock.Now,
			Seed:         int64(idx),
		}
	}

	// Authorities: level 0 is the root; levels 1..Intermediates are the
	// intermediate CAs; the last authority issues the leaf.
	authorities := make([]*ca.CA, 0, c.Intermediates+1)
	root, err := ca.NewRoot(newCfg(0))
	if err != nil {
		return nil, err
	}
	authorities = append(authorities, root)
	for level := 1; level <= c.Intermediates; level++ {
		inter, err := ca.NewIntermediate(newCfg(level), authorities[level-1])
		if err != nil {
			return nil, err
		}
		authorities = append(authorities, inter)
	}
	for level, authority := range authorities {
		s.Net.Register(crlHost(level), authority.Handler())
		s.Net.Register(ocspHost(level), authority.Handler())
	}

	issuing := authorities[len(authorities)-1]
	leafCert, leafRec, err := issuing.Issue(ca.IssueOptions{
		CommonName: fmt.Sprintf("c%03d.site.test", idx),
		NotBefore:  s.Clock.Now().AddDate(0, -1, 0),
		NotAfter:   s.Clock.Now().AddDate(1, 0, 0),
		EV:         c.EV,
		PublicKey:  &leafKey.PublicKey,
	})
	if err != nil {
		return nil, err
	}

	// Chain leaf-first: leaf, last intermediate, ..., root.
	chainCerts := []*x509x.Certificate{leafCert}
	for level := len(authorities) - 1; level >= 0; level-- {
		chainCerts = append(chainCerts, authorities[level].Certificate())
	}

	env := &Env{Case: c, Chain: chainCerts}

	// The issuer of chain element e and that element's serial: element 0
	// (leaf) is issued by the last authority; element j >= 1 is
	// authorities[len-j]'s certificate, issued by authorities[len-j-1].
	elementIssuer := func(e int) *ca.CA {
		if e == 0 {
			return issuing
		}
		return authorities[len(authorities)-1-e]
	}
	elementSerial := func(e int) *x509x.Certificate {
		return chainCerts[e]
	}
	// The hostnames serving element e's revocation data belong to its
	// issuing authority's level.
	elementLevel := func(e int) int {
		if e == 0 {
			return len(authorities) - 1
		}
		return len(authorities) - 1 - e
	}

	switch c.Condition {
	case CondGood:
		// nothing

	case CondRevoked:
		issuer := elementIssuer(c.Target)
		if err := issuer.Revoke(elementSerial(c.Target).SerialNumber, s.Clock.Now(), crl.ReasonKeyCompromise); err != nil {
			return nil, err
		}

	case CondUnavailable:
		level := elementLevel(c.Target)
		var hosts []string
		if c.Protocol == ProtoCRL {
			hosts = []string{crlHost(level)}
		} else {
			hosts = []string{ocspHost(level)}
		}
		for _, h := range hosts {
			switch c.Failure {
			case FailNXDomain:
				s.Faults.ForceFault(h, faultnet.FaultConnError)
			case FailUnresponsive:
				s.Faults.ForceFault(h, faultnet.FaultHang)
			case FailHTTP404:
				s.Net.Register(h, http.NotFoundHandler())
			}
		}

	case CondUnknownStatus:
		issuer := elementIssuer(c.Target)
		signer, key := issuer.Signer()
		unknown := ocsp.StatusUnknown
		s.Net.Register(ocspHost(elementLevel(c.Target)), http.StripPrefix("/ocsp", &ocsp.Responder{
			Source:      ocsp.SourceFunc(func(ocsp.CertID) ocsp.SingleResponse { return ocsp.SingleResponse{} }),
			Signer:      signer,
			Key:         key,
			Now:         s.Clock.Now,
			ForceStatus: &unknown,
		}))

	case CondFallbackRevoked:
		issuer := elementIssuer(c.Target)
		if err := issuer.Revoke(elementSerial(c.Target).SerialNumber, s.Clock.Now(), crl.ReasonKeyCompromise); err != nil {
			return nil, err
		}
		s.Faults.ForceFault(ocspHost(elementLevel(c.Target)), faultnet.FaultHang)

	case CondStaple:
		// Build the staple (leaf status per spec) and firewall the
		// leaf's responder so the staple is the only source (§6.1
		// footnote 15).
		signer, key := issuing.Signer()
		sr := ocsp.SingleResponse{
			ID:         ocsp.NewCertID(signer, leafRec.Serial),
			Status:     c.StapleStatus,
			ThisUpdate: s.Clock.Now(),
			NextUpdate: s.Clock.Now().Add(96 * time.Hour),
		}
		if c.StapleStatus == ocsp.StatusRevoked {
			sr.RevokedAt = s.Clock.Now().Add(-time.Hour)
			sr.Reason = crl.ReasonKeyCompromise
			if err := issuing.Revoke(leafRec.Serial, sr.RevokedAt, crl.ReasonKeyCompromise); err != nil {
				return nil, err
			}
		}
		staple, err := ocsp.CreateResponse(&ocsp.ResponseTemplate{
			ProducedAt: s.Clock.Now(),
			Responses:  []ocsp.SingleResponse{sr},
		}, signer, key)
		if err != nil {
			return nil, err
		}
		env.Staple = staple
		s.Faults.ForceFault(ocspHost(elementLevel(0)), faultnet.FaultHang)
	}
	return env, nil
}
