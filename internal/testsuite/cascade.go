package testsuite

import (
	"repro/internal/cascade"
	"repro/internal/ocsp"
	"repro/internal/x509x"
)

// RevokedElement returns the chain index a case's ground truth marks
// revoked, or -1 when nothing is. This restates the buildCase side
// effects declaratively: CondRevoked and CondFallbackRevoked revoke the
// target element; a CondStaple case with a revoked staple status really
// revokes the leaf in its issuing CA.
func RevokedElement(c *Case) int {
	switch c.Condition {
	case CondRevoked, CondFallbackRevoked:
		return c.Target
	case CondStaple:
		if c.StapleStatus == ocsp.StatusRevoked {
			return 0
		}
	}
	return -1
}

// BuildCascade assembles a filter cascade over the whole suite: every
// issuing CA of every case is an enrolled parent, the known-cert
// population is every checked chain element (everything below the root),
// and the revoked set is derived from each case's declared condition via
// RevokedElement. The result is the aggregator-side artifact a CRLite
// client of this suite's PKI would download — exact for every chain the
// suite can present.
func (s *Suite) BuildCascade(cfg cascade.BuildConfig) (*cascade.Filter, error) {
	seen := make(map[cascade.Parent]bool)
	var parents []cascade.Parent
	var population, revoked [][]byte
	for _, c := range s.Cases {
		env := s.Envs[c.ID]
		rev := RevokedElement(c)
		for e := 0; e+1 < len(env.Chain); e++ {
			p := cascade.Parent(x509x.SPKIHash(env.Chain[e+1].RawSPKI))
			if !seen[p] {
				seen[p] = true
				parents = append(parents, p)
			}
			key := cascade.AppendKey(nil, p, env.Chain[e].SerialNumber.Bytes())
			population = append(population, key)
			if e == rev {
				revoked = append(revoked, key)
			}
		}
	}
	visit := func(fn func(key []byte) bool) {
		for _, k := range population {
			if !fn(k) {
				return
			}
		}
	}
	return cascade.Build(revoked, visit, parents, cfg)
}
