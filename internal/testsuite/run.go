package testsuite

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/browser"
	"repro/internal/cascade"
	"repro/internal/ocsp"
)

// Cell is one Table 2 matrix cell.
type Cell string

// Cell values, matching the paper's legend.
const (
	// CellPass: the browser passes the test in all cases.
	CellPass Cell = "Y"
	// CellFail: the browser fails in all cases.
	CellFail Cell = "N"
	// CellEV: passes only when the leaf is an EV certificate.
	CellEV Cell = "ev"
	// CellWarn: pops a user warning instead of rejecting.
	CellWarn Cell = "a"
	// CellIgnores: requests OCSP staples but ignores the response.
	CellIgnores Cell = "i"
	// CellNA: not applicable (the browser never performs the action).
	CellNA Cell = "-"
	// CellMixed indicates inconsistent outcomes within one group — it
	// never appears for a correctly encoded profile.
	CellMixed Cell = "?!"
)

// Report holds one profile's outcome for every case.
type Report struct {
	Profile  *browser.Profile
	Outcomes map[string]browser.Outcome
}

// Run evaluates a profile against every case in the suite.
func (s *Suite) Run(p *browser.Profile) (*Report, error) {
	return s.run(&browser.Client{Profile: p, HTTP: s.Client(), Now: s.Clock.Now, Timeout: 5 * time.Second})
}

// RunCascade evaluates a profile with a filter cascade installed as the
// client's local artifact — the fully offline CRLite-style path. A stale
// cascade (per FreshAt) is skipped by the engine, so outcomes degrade to
// exactly what plain Run produces.
func (s *Suite) RunCascade(p *browser.Profile, f *cascade.Filter) (*Report, error) {
	return s.run(&browser.Client{Profile: p, HTTP: s.Client(), Now: s.Clock.Now, Timeout: 5 * time.Second, Cascade: f})
}

func (s *Suite) run(client *browser.Client) (*Report, error) {
	p := client.Profile
	rep := &Report{Profile: p, Outcomes: make(map[string]browser.Outcome, len(s.Cases))}
	for _, c := range s.Cases {
		env := s.Envs[c.ID]
		staple := env.Staple
		if !p.RequestStaple {
			staple = nil // the server staples only when asked
		}
		v, err := client.Evaluate(env.Chain, staple)
		if err != nil {
			return nil, fmt.Errorf("testsuite: %s: %w", c.ID, err)
		}
		rep.Outcomes[c.ID] = v.Outcome
	}
	return rep, nil
}

// RowSpec identifies one row of the matrix.
type RowSpec struct {
	Label string
	// selector picks the cases aggregated by this row, keyed on EV.
	selector func(c *Case) bool
	// flag rows are computed from profile flags / dedicated cases.
	special string
}

// posClass maps a case's target index to the paper's position rows.
func posClass(c *Case) browser.Position {
	switch {
	case c.Target == 0:
		return browser.PosLeaf
	case c.Target == 1:
		return browser.PosInt1
	default:
		return browser.PosIntDeep
	}
}

// Rows returns the Table 2 row specifications in paper order.
func Rows() []RowSpec {
	var rows []RowSpec
	for _, proto := range []Protocol{ProtoCRL, ProtoOCSP} {
		for _, pos := range []browser.Position{browser.PosInt1, browser.PosIntDeep, browser.PosLeaf} {
			for _, cond := range []Condition{CondRevoked, CondUnavailable} {
				proto, pos, cond := proto, pos, cond
				label := fmt.Sprintf("%s %s %s", strings.ToUpper(proto.String()), pos, cond)
				rows = append(rows, RowSpec{
					Label: label,
					selector: func(c *Case) bool {
						if c.Protocol != proto || c.Condition != cond || c.Target < 0 {
							return false
						}
						// Leaf rows use chains with at least one
						// intermediate so the "bare leaf acts as
						// Int1" special cases (§6.3) do not blur the
						// aggregate.
						if pos == browser.PosLeaf && c.Intermediates == 0 {
							return false
						}
						return posClass(c) == pos
					},
				})
			}
		}
	}
	rows = append(rows,
		RowSpec{Label: "Reject unknown status", special: "unknown"},
		RowSpec{Label: "Try CRL on failure", special: "fallback"},
		RowSpec{Label: "Request OCSP staple", special: "request-staple"},
		RowSpec{Label: "Respect revoked staple", special: "respect-staple"},
	)
	return rows
}

// aggregate computes the cell for a set of case outcomes split by EV.
func aggregate(rep *Report, ids map[bool][]string) Cell {
	verdictFor := func(ev bool) (allReject, anyReject, anyWarn bool) {
		allReject = true
		for _, id := range ids[ev] {
			switch rep.Outcomes[id] {
			case browser.OutcomeReject:
				anyReject = true
			case browser.OutcomeWarn:
				anyWarn = true
				allReject = false
			default:
				allReject = false
			}
		}
		if len(ids[ev]) == 0 {
			allReject = false
		}
		return allReject, anyReject, anyWarn
	}
	nonAll, nonAny, nonWarn := verdictFor(false)
	evAll, evAny, evWarn := verdictFor(true)
	switch {
	case nonAll && evAll:
		return CellPass
	case !nonAny && evAll:
		return CellEV
	case nonWarn || evWarn:
		return CellWarn
	case !nonAny && !evAny:
		return CellFail
	default:
		return CellMixed
	}
}

// Matrix is the rendered Table 2: one column per profile, one row per
// behaviour.
type Matrix struct {
	Profiles []*browser.Profile
	Rows     []RowSpec
	// Cells[row][col].
	Cells [][]Cell
}

// Matrix runs every profile and assembles the Table 2 matrix.
func (s *Suite) Matrix(profiles []*browser.Profile) (*Matrix, error) {
	m := &Matrix{Profiles: profiles, Rows: Rows()}
	reports := make([]*Report, len(profiles))
	for i, p := range profiles {
		rep, err := s.Run(p)
		if err != nil {
			return nil, err
		}
		reports[i] = rep
	}
	for _, row := range m.Rows {
		cells := make([]Cell, len(profiles))
		for i, rep := range reports {
			cells[i] = s.cell(row, rep)
		}
		m.Cells = append(m.Cells, cells)
	}
	return m, nil
}

func (s *Suite) cell(row RowSpec, rep *Report) Cell {
	p := rep.Profile
	switch row.special {
	case "request-staple":
		switch {
		case p.RequestStaple && p.UseStaple:
			return CellPass
		case p.RequestStaple:
			return CellIgnores
		default:
			return CellFail
		}
	case "respect-staple":
		if !p.RequestStaple || !p.UseStaple {
			return CellNA
		}
		return aggregate(rep, s.selectIDs(func(c *Case) bool {
			return c.Condition == CondStaple && c.StapleStatus == ocsp.StatusRevoked
		}))
	case "unknown":
		if !p.ChecksAnything() && p.EV == nil {
			return CellNA
		}
		return aggregate(rep, s.selectIDs(func(c *Case) bool {
			return c.Condition == CondUnknownStatus && c.Target == 0 && c.Intermediates >= 1
		}))
	case "fallback":
		if !p.ChecksAnything() && p.EV == nil {
			return CellNA
		}
		// Only the leaf target isolates fallback: on deeper targets a
		// browser that checks CRLs at that position anyway (e.g. Opera
		// 12) would catch the revocation without ever attempting OCSP.
		return aggregate(rep, s.selectIDs(func(c *Case) bool {
			return c.Condition == CondFallbackRevoked && c.Target == 0 && c.Intermediates >= 1
		}))
	default:
		return aggregate(rep, s.selectIDs(row.selector))
	}
}

func (s *Suite) selectIDs(sel func(c *Case) bool) map[bool][]string {
	out := map[bool][]string{}
	for _, c := range s.Cases {
		if sel(c) {
			out[c.EV] = append(out[c.EV], c.ID)
		}
	}
	return out
}

// Render formats the matrix as an aligned text table.
func (m *Matrix) Render() string {
	var sb strings.Builder
	labelWidth := 0
	for _, r := range m.Rows {
		if len(r.Label) > labelWidth {
			labelWidth = len(r.Label)
		}
	}
	colWidth := 0
	for _, p := range m.Profiles {
		if len(p.Name) > colWidth {
			colWidth = len(p.Name)
		}
	}
	if colWidth < 4 {
		colWidth = 4
	}
	// Header: profile names rotated into columns would be unreadable in
	// plain text; list them as numbered columns instead.
	for i, p := range m.Profiles {
		fmt.Fprintf(&sb, "[%2d] %s\n", i+1, p.Name)
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "%-*s", labelWidth+2, "")
	for i := range m.Profiles {
		fmt.Fprintf(&sb, "%4d", i+1)
	}
	sb.WriteByte('\n')
	for ri, row := range m.Rows {
		fmt.Fprintf(&sb, "%-*s", labelWidth+2, row.Label)
		for _, cell := range m.Cells[ri] {
			fmt.Fprintf(&sb, "%4s", string(cell))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Find returns the cell for a row label and profile name.
func (m *Matrix) Find(rowLabel, profileName string) (Cell, bool) {
	ri := -1
	for i, r := range m.Rows {
		if r.Label == rowLabel {
			ri = i
			break
		}
	}
	ci := -1
	for i, p := range m.Profiles {
		if p.Name == profileName {
			ci = i
			break
		}
	}
	if ri < 0 || ci < 0 {
		return "", false
	}
	return m.Cells[ri][ci], true
}

// SortedCaseIDs returns all case IDs, sorted, for deterministic output.
func (s *Suite) SortedCaseIDs() []string {
	ids := make([]string, 0, len(s.Cases))
	for _, c := range s.Cases {
		ids = append(ids, c.ID)
	}
	sort.Strings(ids)
	return ids
}
