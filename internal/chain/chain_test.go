package chain

import (
	"crypto/ecdsa"
	stdx509 "crypto/x509"
	"math/big"
	"testing"
	"time"

	"repro/internal/x509x"
)

var (
	nb = time.Date(2013, 6, 1, 0, 0, 0, 0, time.UTC)
	na = time.Date(2016, 6, 1, 0, 0, 0, 0, time.UTC)
	at = time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC)
)

type ident struct {
	cert *x509x.Certificate
	key  *ecdsa.PrivateKey
}

var serialCounter int64 = 1000

func mkCA(t *testing.T, cn string, parent *ident, maxPathLen int) *ident {
	t.Helper()
	key, err := x509x.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	return signCA(t, cn, parent, maxPathLen, key)
}

func signCA(t *testing.T, cn string, parent *ident, maxPathLen int, key *ecdsa.PrivateKey) *ident {
	t.Helper()
	serialCounter++
	tmpl := x509x.NewTemplate(big.NewInt(serialCounter), x509x.Name{CommonName: cn}, nb, na)
	tmpl.IsCA = true
	tmpl.MaxPathLen = maxPathLen
	tmpl.KeyUsage = x509x.KeyUsageCertSign | x509x.KeyUsageCRLSign
	var raw []byte
	var err error
	if parent == nil {
		raw, err = x509x.Create(tmpl, nil, key, &key.PublicKey)
	} else {
		raw, err = x509x.Create(tmpl, parent.cert, parent.key, &key.PublicKey)
	}
	if err != nil {
		t.Fatal(err)
	}
	cert, err := x509x.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	return &ident{cert: cert, key: key}
}

func mkLeaf(t *testing.T, cn string, parent *ident, mutate func(*x509x.Template)) *x509x.Certificate {
	t.Helper()
	key, err := x509x.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	serialCounter++
	tmpl := x509x.NewTemplate(big.NewInt(serialCounter), x509x.Name{CommonName: cn}, nb, na)
	tmpl.KeyUsage = x509x.KeyUsageDigitalSignature
	if mutate != nil {
		mutate(tmpl)
	}
	raw, err := x509x.Create(tmpl, parent.cert, parent.key, &key.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := x509x.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	return cert
}

func TestDirectChain(t *testing.T) {
	root := mkCA(t, "Root", nil, -1)
	leaf := mkLeaf(t, "leaf.example.com", root, nil)
	v := &Verifier{Roots: NewPool(root.cert), Intermediates: NewPool()}
	chains, err := v.Verify(leaf, Options{At: at})
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 1 || len(chains[0]) != 2 {
		t.Fatalf("chains = %d x %d", len(chains), len(chains[0]))
	}
	if chains[0][0] != leaf || chains[0][1] != root.cert {
		t.Error("chain order wrong")
	}
}

func TestDeepChain(t *testing.T) {
	root := mkCA(t, "Root", nil, -1)
	int1 := mkCA(t, "Intermediate 1", root, -1)
	int2 := mkCA(t, "Intermediate 2", int1, -1)
	int3 := mkCA(t, "Intermediate 3", int2, -1)
	leaf := mkLeaf(t, "deep.example.com", int3, nil)
	v := &Verifier{
		Roots:         NewPool(root.cert),
		Intermediates: NewPool(int1.cert, int2.cert, int3.cert),
	}
	chains, err := v.Verify(leaf, Options{At: at})
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 1 || len(chains[0]) != 5 {
		t.Fatalf("got %d chains, first len %d, want 1 x 5", len(chains), len(chains[0]))
	}
}

func TestNoPath(t *testing.T) {
	root := mkCA(t, "Root", nil, -1)
	stranger := mkCA(t, "Stranger Root", nil, -1)
	leaf := mkLeaf(t, "orphan.example.com", stranger, nil)
	v := &Verifier{Roots: NewPool(root.cert), Intermediates: NewPool()}
	if _, err := v.Verify(leaf, Options{At: at}); err == nil {
		t.Fatal("verified a leaf with no path")
	} else if _, ok := err.(*VerifyError); !ok {
		t.Fatalf("error type %T", err)
	}
}

func TestCrossSignedIntermediateYieldsTwoChains(t *testing.T) {
	rootA := mkCA(t, "Root A", nil, -1)
	rootB := mkCA(t, "Root B", nil, -1)
	// Same intermediate subject and key, signed by both roots.
	intKey, err := x509x.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	intA := signCA(t, "Cross-Signed CA", rootA, -1, intKey)
	intB := signCA(t, "Cross-Signed CA", rootB, -1, intKey)
	leaf := mkLeaf(t, "cross.example.com", intA, nil)
	v := &Verifier{
		Roots:         NewPool(rootA.cert, rootB.cert),
		Intermediates: NewPool(intA.cert, intB.cert),
	}
	chains, err := v.Verify(leaf, Options{At: at})
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 2 {
		t.Fatalf("cross-signed leaf should have 2 chains, got %d", len(chains))
	}
}

func TestDateChecking(t *testing.T) {
	root := mkCA(t, "Root", nil, -1)
	leaf := mkLeaf(t, "dated.example.com", root, nil)
	v := &Verifier{Roots: NewPool(root.cert), Intermediates: NewPool()}
	late := na.AddDate(1, 0, 0)
	if _, err := v.Verify(leaf, Options{At: late}); err == nil {
		t.Error("verified an expired leaf without IgnoreDates")
	}
	if _, err := v.Verify(leaf, Options{At: late, IgnoreDates: true}); err != nil {
		t.Errorf("IgnoreDates failed: %v", err)
	}
}

func TestExpiredIntermediateSkipped(t *testing.T) {
	root := mkCA(t, "Root", nil, -1)
	key, err := x509x.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	serialCounter++
	tmpl := x509x.NewTemplate(big.NewInt(serialCounter), x509x.Name{CommonName: "Expired Int"}, nb, nb.AddDate(0, 1, 0))
	tmpl.IsCA = true
	tmpl.MaxPathLen = -1
	tmpl.KeyUsage = x509x.KeyUsageCertSign
	raw, err := x509x.Create(tmpl, root.cert, root.key, &key.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	expInt, err := x509x.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	leaf := mkLeaf(t, "under-expired.example.com", &ident{cert: expInt, key: key}, nil)
	v := &Verifier{Roots: NewPool(root.cert), Intermediates: NewPool(expInt)}
	if _, err := v.Verify(leaf, Options{At: at}); err == nil {
		t.Error("verified through an expired intermediate")
	}
	if _, err := v.Verify(leaf, Options{IgnoreDates: true}); err != nil {
		t.Errorf("IgnoreDates should allow it: %v", err)
	}
}

func TestNonCAIntermediateRejected(t *testing.T) {
	root := mkCA(t, "Root", nil, -1)
	// A leaf that tries to act as a CA.
	fakeKey, err := x509x.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	fakeCA := mkLeaf(t, "Fake CA", root, nil)
	leaf := mkLeaf(t, "victim.example.com", &ident{cert: fakeCA, key: fakeKey}, nil)
	v := &Verifier{Roots: NewPool(root.cert), Intermediates: NewPool(fakeCA)}
	if _, err := v.Verify(leaf, Options{At: at}); err == nil {
		t.Error("verified through a non-CA certificate")
	}
}

func TestPathLenConstraint(t *testing.T) {
	root := mkCA(t, "Root", nil, -1)
	limited := mkCA(t, "Limited", root, 0) // can sign leaves only
	sub := mkCA(t, "Sub", limited, -1)
	leaf := mkLeaf(t, "too-deep.example.com", sub, nil)
	v := &Verifier{Roots: NewPool(root.cert), Intermediates: NewPool(limited.cert, sub.cert)}
	if _, err := v.Verify(leaf, Options{At: at}); err == nil {
		t.Error("verified chain that violates pathLenConstraint")
	}
	direct := mkLeaf(t, "ok.example.com", limited, nil)
	if _, err := v.Verify(direct, Options{At: at}); err != nil {
		t.Errorf("leaf directly under limited CA should verify: %v", err)
	}
}

func TestCrossSignLoopTerminates(t *testing.T) {
	// A and B mutually cross-sign each other; path building must not
	// loop forever.
	root := mkCA(t, "Root", nil, -1)
	keyA, _ := x509x.GenerateKey()
	keyB, _ := x509x.GenerateKey()
	a1 := signCA(t, "Loop A", root, -1, keyA)
	b1 := signCA(t, "Loop B", &ident{cert: a1.cert, key: keyA}, -1, keyB)
	a2 := signCA(t, "Loop A", &ident{cert: b1.cert, key: keyB}, -1, keyA)
	leaf := mkLeaf(t, "loop.example.com", &ident{cert: a2.cert, key: keyA}, nil)
	v := &Verifier{
		Roots:         NewPool(root.cert),
		Intermediates: NewPool(a1.cert, b1.cert, a2.cert),
	}
	chains, err := v.Verify(leaf, Options{At: at})
	if err != nil {
		t.Fatalf("loop chain: %v", err)
	}
	if len(chains) == 0 {
		t.Fatal("no chains found")
	}
}

func TestNoRootsConfigured(t *testing.T) {
	root := mkCA(t, "Root", nil, -1)
	leaf := mkLeaf(t, "x.example.com", root, nil)
	v := &Verifier{Roots: NewPool()}
	if _, err := v.Verify(leaf, Options{At: at}); err == nil {
		t.Error("verified with empty root pool")
	}
}

func TestDiscoverIntermediates(t *testing.T) {
	root := mkCA(t, "Root", nil, -1)
	int1 := mkCA(t, "I1", root, -1)
	int2 := mkCA(t, "I2", int1, -1) // only verifiable once int1 admitted
	int3 := mkCA(t, "I3", int2, -1) // needs two rounds
	orphanRoot := mkCA(t, "Orphan Root", nil, -1)
	orphan := mkCA(t, "Orphan Int", orphanRoot, -1)
	leafish := mkLeaf(t, "not-a-ca.example.com", root, nil)

	// Feed candidates in worst-case order to force iteration.
	candidates := []*x509x.Certificate{int3.cert, int2.cert, int1.cert, orphan.cert, leafish, root.cert}
	admitted := DiscoverIntermediates(NewPool(root.cert), candidates, Options{IgnoreDates: true})
	if admitted.Len() != 3 {
		t.Fatalf("admitted %d intermediates, want 3", admitted.Len())
	}
	for _, want := range []*x509x.Certificate{int1.cert, int2.cert, int3.cert} {
		if !admitted.Contains(want) {
			t.Errorf("missing %q", want.Subject)
		}
	}
	if admitted.Contains(orphan.cert) || admitted.Contains(leafish) || admitted.Contains(root.cert) {
		t.Error("admitted a certificate that should be excluded")
	}
}

func TestBuildLeafSet(t *testing.T) {
	root := mkCA(t, "Root", nil, -1)
	int1 := mkCA(t, "I1", root, -1)
	good := mkLeaf(t, "good.example.com", int1, nil)
	stranger := mkCA(t, "Stranger", nil, -1)
	bad := mkLeaf(t, "bad.example.com", stranger, nil)

	leaves := BuildLeafSet(NewPool(root.cert), NewPool(int1.cert), []*x509x.Certificate{good, bad, int1.cert})
	if len(leaves) != 1 || leaves[0] != good {
		t.Fatalf("leaf set = %d certs", len(leaves))
	}
}

func TestPoolDeduplication(t *testing.T) {
	root := mkCA(t, "Root", nil, -1)
	p := NewPool(root.cert, root.cert)
	if p.Len() != 1 {
		t.Errorf("pool len = %d after duplicate add", p.Len())
	}
	if got := p.FindBySubject(root.cert.RawSubject); len(got) != 1 {
		t.Errorf("FindBySubject = %d", len(got))
	}
	if got := p.FindBySubject([]byte("nobody")); got != nil {
		t.Errorf("FindBySubject(nobody) = %v", got)
	}
}

func TestNameConstraints(t *testing.T) {
	root := mkCA(t, "Root", nil, -1)
	// A constrained intermediate: may only issue under example.com,
	// never under secret.example.com.
	key, err := x509x.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	serialCounter++
	tmpl := x509x.NewTemplate(big.NewInt(serialCounter), x509x.Name{CommonName: "Constrained CA"}, nb, na)
	tmpl.IsCA = true
	tmpl.MaxPathLen = -1
	tmpl.KeyUsage = x509x.KeyUsageCertSign
	tmpl.PermittedDNSDomains = []string{"example.com"}
	tmpl.ExcludedDNSDomains = []string{"secret.example.com"}
	raw, err := x509x.Create(tmpl, root.cert, root.key, &key.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	constrained, err := x509x.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(constrained.PermittedDNSDomains) != 1 || constrained.PermittedDNSDomains[0] != "example.com" {
		t.Fatalf("permitted = %v", constrained.PermittedDNSDomains)
	}
	if len(constrained.ExcludedDNSDomains) != 1 {
		t.Fatalf("excluded = %v", constrained.ExcludedDNSDomains)
	}
	ca := &ident{cert: constrained, key: key}

	inside := mkLeaf(t, "www.example.com", ca, func(tmpl *x509x.Template) {
		tmpl.DNSNames = []string{"www.example.com"}
	})
	outside := mkLeaf(t, "www.other.org", ca, func(tmpl *x509x.Template) {
		tmpl.DNSNames = []string{"www.other.org"}
	})
	excluded := mkLeaf(t, "x.secret.example.com", ca, func(tmpl *x509x.Template) {
		tmpl.DNSNames = []string{"x.secret.example.com"}
	})

	v := &Verifier{Roots: NewPool(root.cert), Intermediates: NewPool(constrained)}
	enforce := Options{At: at, EnforceNameConstraints: true}

	if _, err := v.Verify(inside, enforce); err != nil {
		t.Errorf("in-scope leaf rejected: %v", err)
	}
	if _, err := v.Verify(outside, enforce); err == nil {
		t.Error("out-of-scope leaf verified despite name constraints")
	}
	if _, err := v.Verify(excluded, enforce); err == nil {
		t.Error("excluded-subtree leaf verified")
	}
	// The paper's observation: few clients enforce constraints — without
	// the option, the out-of-scope leaf passes.
	if _, err := v.Verify(outside, Options{At: at}); err != nil {
		t.Errorf("non-enforcing verification should pass: %v", err)
	}
}

func TestNameConstraintsStdlibInterop(t *testing.T) {
	// The stdlib must parse and enforce our Name Constraints encoding.
	root := mkCA(t, "NC Root", nil, -1)
	key, err := x509x.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	serialCounter++
	tmpl := x509x.NewTemplate(big.NewInt(serialCounter), x509x.Name{CommonName: "NC CA"}, nb, na)
	tmpl.IsCA = true
	tmpl.MaxPathLen = -1
	tmpl.KeyUsage = x509x.KeyUsageCertSign
	tmpl.PermittedDNSDomains = []string{"example.com"}
	raw, err := x509x.Create(tmpl, root.cert, root.key, &key.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	std, err := stdx509.ParseCertificate(raw)
	if err != nil {
		t.Fatalf("stdlib rejected our name constraints: %v", err)
	}
	if len(std.PermittedDNSDomains) != 1 || std.PermittedDNSDomains[0] != "example.com" {
		t.Fatalf("stdlib permitted = %v", std.PermittedDNSDomains)
	}
	if !std.PermittedDNSDomainsCritical {
		t.Error("constraint should be critical")
	}
}

func TestDNSMatchRules(t *testing.T) {
	cases := []struct {
		name, constraint string
		want             bool
	}{
		{"example.com", "example.com", true},
		{"www.example.com", "example.com", true},
		{"example.com.evil.org", "example.com", false},
		{"badexample.com", "example.com", false},
		{"www.example.com", ".example.com", true},
		{"example.com", ".example.com", false},
		{"anything", "", true},
	}
	for _, c := range cases {
		if got := dnsMatches(c.name, c.constraint); got != c.want {
			t.Errorf("dnsMatches(%q, %q) = %t", c.name, c.constraint, got)
		}
	}
}
