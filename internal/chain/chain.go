// Package chain implements certificate path building and verification over
// root and intermediate pools, including the iterative Intermediate Set
// discovery procedure of §3.1: starting from the trusted roots, an
// intermediate is admitted once a chain for it verifies against the roots
// plus the intermediates admitted so far, and the process repeats to a
// fixpoint.
//
// Cross-signed intermediates (the same subject and key signed by multiple
// issuers) produce multiple valid chains for one leaf; Verify returns all
// of them, mirroring the behaviour the paper notes in §2.1.
package chain

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/x509x"
)

// Pool is a set of certificates indexed by subject name for issuer lookup.
type Pool struct {
	certs     []*x509x.Certificate
	bySubject map[string][]*x509x.Certificate
	byRaw     map[string]bool
}

// NewPool returns a pool holding the given certificates.
func NewPool(certs ...*x509x.Certificate) *Pool {
	p := &Pool{
		bySubject: make(map[string][]*x509x.Certificate),
		byRaw:     make(map[string]bool),
	}
	for _, c := range certs {
		p.Add(c)
	}
	return p
}

// Add inserts a certificate; duplicates (by raw bytes) are ignored.
func (p *Pool) Add(c *x509x.Certificate) {
	if p.byRaw[string(c.Raw)] {
		return
	}
	p.byRaw[string(c.Raw)] = true
	p.certs = append(p.certs, c)
	key := string(c.RawSubject)
	p.bySubject[key] = append(p.bySubject[key], c)
}

// Contains reports whether the exact certificate is in the pool.
func (p *Pool) Contains(c *x509x.Certificate) bool { return p.byRaw[string(c.Raw)] }

// FindBySubject returns the certificates whose subject matches the raw
// issuer name.
func (p *Pool) FindBySubject(rawName []byte) []*x509x.Certificate {
	return p.bySubject[string(rawName)]
}

// Certs returns all certificates in insertion order. The caller must not
// modify the returned slice.
func (p *Pool) Certs() []*x509x.Certificate { return p.certs }

// Len returns the number of certificates in the pool.
func (p *Pool) Len() int { return len(p.certs) }

// VerifyError explains why no chain could be built.
type VerifyError struct {
	Leaf   *x509x.Certificate
	Reason string
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("chain: no valid chain for %q: %s", e.Leaf.Subject, e.Reason)
}

// Options controls verification.
type Options struct {
	// At is the verification time for freshness checks; ignored when
	// IgnoreDates is set.
	At time.Time
	// IgnoreDates skips validity-window checks. The paper's scan
	// pipeline sets this because its 17 months of scans necessarily
	// contain certificates valid at *some* point but not "now" (§3.1).
	IgnoreDates bool
	// MaxDepth bounds the number of certificates in a chain, leaf and
	// root included. Zero means 6 (root + up to 4 intermediates + leaf).
	MaxDepth int
	// EnforceNameConstraints rejects chains whose leaf DNS names fall
	// outside a CA's Name Constraints extension. §2.1 notes the
	// extension is rarely used and few clients support it; this
	// verifier is one of the few.
	EnforceNameConstraints bool
}

func (o Options) maxDepth() int {
	if o.MaxDepth > 0 {
		return o.MaxDepth
	}
	return 6
}

// Verifier builds and checks chains.
type Verifier struct {
	Roots         *Pool
	Intermediates *Pool
}

// Verify returns every distinct valid chain for leaf, ordered leaf-first
// and ending at a root. Chains are explored intermediates-first so the
// shortest chain tends to come first.
func (v *Verifier) Verify(leaf *x509x.Certificate, opts Options) ([][]*x509x.Certificate, error) {
	if v.Roots == nil || v.Roots.Len() == 0 {
		return nil, errors.New("chain: no trusted roots configured")
	}
	if !opts.IgnoreDates && !leaf.FreshAt(opts.At) {
		return nil, &VerifyError{Leaf: leaf, Reason: fmt.Sprintf("leaf not fresh at %v", opts.At)}
	}
	var chains [][]*x509x.Certificate
	seen := map[string]bool{string(leaf.Raw): true}
	v.extend([]*x509x.Certificate{leaf}, seen, opts, &chains)
	if len(chains) == 0 {
		return nil, &VerifyError{Leaf: leaf, Reason: "no path to a trusted root"}
	}
	return chains, nil
}

func (v *Verifier) extend(current []*x509x.Certificate, seen map[string]bool, opts Options, out *[][]*x509x.Certificate) {
	tip := current[len(current)-1]

	// Self-signed trusted root terminates the chain.
	if v.Roots.Contains(tip) {
		chain := make([]*x509x.Certificate, len(current))
		copy(chain, current)
		*out = append(*out, chain)
		return
	}
	if len(current) >= opts.maxDepth() {
		return
	}
	candidates := append([]*x509x.Certificate{}, v.Roots.FindBySubject(tip.RawIssuer)...)
	if v.Intermediates != nil {
		candidates = append(candidates, v.Intermediates.FindBySubject(tip.RawIssuer)...)
	}
	for _, parent := range candidates {
		if seen[string(parent.Raw)] {
			continue // loop (e.g. mutually cross-signed CAs)
		}
		if !parent.IsCA {
			continue
		}
		if parent.KeyUsage != 0 && parent.KeyUsage&x509x.KeyUsageCertSign == 0 {
			continue
		}
		if !opts.IgnoreDates && !parent.FreshAt(opts.At) {
			continue
		}
		if parent.MaxPathLen >= 0 {
			// pathLenConstraint counts intermediates below this CA,
			// excluding the leaf.
			intermediatesBelow := len(current) - 1
			if intermediatesBelow > parent.MaxPathLen {
				continue
			}
		}
		if err := tip.CheckSignatureFrom(parent); err != nil {
			continue
		}
		if opts.EnforceNameConstraints && !satisfiesNameConstraints(current[0], parent) {
			continue
		}
		seen[string(parent.Raw)] = true
		v.extend(append(current, parent), seen, opts, out)
		delete(seen, string(parent.Raw))
	}
}

// DiscoverIntermediates runs the §3.1 iterative procedure: from a corpus of
// candidate CA certificates observed in scans, admit those that verify
// relative to the roots and previously admitted intermediates, looping
// until no new certificate is admitted. It returns the Intermediate Set.
func DiscoverIntermediates(roots *Pool, candidates []*x509x.Certificate, opts Options) *Pool {
	admitted := NewPool()
	remaining := make([]*x509x.Certificate, 0, len(candidates))
	for _, c := range candidates {
		if c.IsCA && !roots.Contains(c) {
			remaining = append(remaining, c)
		}
	}
	for {
		verifier := &Verifier{Roots: roots, Intermediates: admitted}
		var next []*x509x.Certificate
		progressed := false
		for _, c := range remaining {
			if _, err := verifier.Verify(c, opts); err == nil {
				admitted.Add(c)
				progressed = true
			} else {
				next = append(next, c)
			}
		}
		remaining = next
		if !progressed || len(remaining) == 0 {
			return admitted
		}
	}
}

// BuildLeafSet filters a corpus of observed certificates down to the Leaf
// Set: non-CA certificates with at least one valid chain (dates ignored,
// matching the paper's OpenSSL configuration in §3.1).
func BuildLeafSet(roots, intermediates *Pool, observed []*x509x.Certificate) []*x509x.Certificate {
	verifier := &Verifier{Roots: roots, Intermediates: intermediates}
	var leaves []*x509x.Certificate
	for _, c := range observed {
		if c.IsCA {
			continue
		}
		if _, err := verifier.Verify(c, Options{IgnoreDates: true}); err == nil {
			leaves = append(leaves, c)
		}
	}
	return leaves
}

// satisfiesNameConstraints reports whether the leaf's DNS identities fall
// inside the CA's permitted subtrees and outside its excluded ones
// (RFC 5280 §4.2.1.10, restricted to dNSName constraints).
func satisfiesNameConstraints(leaf, authority *x509x.Certificate) bool {
	if len(authority.PermittedDNSDomains) == 0 && len(authority.ExcludedDNSDomains) == 0 {
		return true
	}
	names := leaf.DNSNames
	if len(names) == 0 && leaf.Subject.CommonName != "" {
		names = []string{leaf.Subject.CommonName}
	}
	for _, name := range names {
		if len(authority.PermittedDNSDomains) > 0 {
			ok := false
			for _, domain := range authority.PermittedDNSDomains {
				if dnsMatches(name, domain) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		for _, domain := range authority.ExcludedDNSDomains {
			if dnsMatches(name, domain) {
				return false
			}
		}
	}
	return true
}

// dnsMatches implements the RFC 5280 dNSName constraint rule: the name
// matches when it equals the constraint or is a subdomain of it (a
// leading dot on the constraint requires a strict subdomain).
func dnsMatches(name, constraint string) bool {
	if constraint == "" {
		return true
	}
	if strings.HasPrefix(constraint, ".") {
		return strings.HasSuffix(name, constraint)
	}
	return name == constraint || strings.HasSuffix(name, "."+constraint)
}
