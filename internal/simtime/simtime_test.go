package simtime

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestDate(t *testing.T) {
	d := Date(2014, time.April, 7)
	if d.Hour() != 0 || d.Minute() != 0 || d.Location() != time.UTC {
		t.Fatalf("Date not midnight UTC: %v", d)
	}
	if d.Weekday() != time.Monday {
		t.Errorf("Heartbleed disclosure was a Monday, got %v", d.Weekday())
	}
}

func TestDaysBetween(t *testing.T) {
	cases := []struct {
		a, b time.Time
		want int
	}{
		{Date(2014, 1, 1), Date(2014, 1, 1), 0},
		{Date(2014, 1, 1), Date(2014, 1, 2), 1},
		{Date(2014, 1, 2), Date(2014, 1, 1), -1},
		{Date(2013, 10, 30), Date(2015, 3, 30), 516},
		{Date(2014, 2, 28), Date(2014, 3, 1), 1}, // 2014 not a leap year
		{Date(2016, 2, 28), Date(2016, 3, 1), 2}, // 2016 is
	}
	for _, c := range cases {
		if got := DaysBetween(c.a, c.b); got != c.want {
			t.Errorf("DaysBetween(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock(ScanStart)
	if !c.Now().Equal(ScanStart) {
		t.Fatalf("new clock at %v, want %v", c.Now(), ScanStart)
	}
	c.Advance(48 * time.Hour)
	if got := DaysBetween(ScanStart, c.Now()); got != 2 {
		t.Fatalf("after Advance(48h): %d days elapsed, want 2", got)
	}
	c.AdvanceTo(Heartbleed)
	if !c.Now().Equal(Heartbleed) {
		t.Fatalf("AdvanceTo: clock at %v", c.Now())
	}
}

func TestClockPanicsOnBackwardsTime(t *testing.T) {
	c := NewClock(Heartbleed)
	mustPanic(t, "Advance(-1)", func() { c.Advance(-time.Second) })
	mustPanic(t, "AdvanceTo(past)", func() { c.AdvanceTo(ScanStart) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestClockConcurrentReaders(t *testing.T) {
	c := NewClock(ScanStart)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if c.Now().Before(ScanStart) {
					t.Error("clock ran backwards")
					return
				}
			}
		}()
	}
	for j := 0; j < 1000; j++ {
		c.Advance(time.Minute)
	}
	wg.Wait()
}

func TestScanSchedule(t *testing.T) {
	s := ScanSchedule()
	if len(s) != NumScans {
		t.Fatalf("got %d scans, want %d", len(s), NumScans)
	}
	if !s.First().Equal(ScanStart) {
		t.Errorf("first scan %v, want %v", s.First(), ScanStart)
	}
	if !s.Last().Equal(ScanEnd) {
		t.Errorf("last scan %v, want %v", s.Last(), ScanEnd)
	}
	// Cadence should be roughly weekly: strictly increasing, ~6-8 days apart.
	for i := 1; i < len(s); i++ {
		gap := s[i].Sub(s[i-1])
		if gap <= 6*24*time.Hour || gap >= 8*24*time.Hour {
			t.Errorf("scan gap %d = %v, want roughly weekly", i, gap)
		}
	}
}

func TestCrawlSchedule(t *testing.T) {
	s := CrawlSchedule()
	// Oct 2 2014 .. Mar 31 2015 inclusive = 181 days.
	if len(s) != 181 {
		t.Fatalf("crawl days = %d, want 181", len(s))
	}
	if !s.First().Equal(CrawlStart) || !s.Last().Equal(CrawlEnd) {
		t.Fatalf("crawl bounds [%v, %v]", s.First(), s.Last())
	}
}

func TestWeekly(t *testing.T) {
	s := Weekly(ScanStart, 3)
	if len(s) != 3 {
		t.Fatalf("len = %d", len(s))
	}
	if got := s[2].Sub(s[0]); got != 14*24*time.Hour {
		t.Errorf("span = %v, want 14 days", got)
	}
	if Weekly(ScanStart, 0) != nil {
		t.Error("Weekly(_, 0) should be nil")
	}
}

func TestDailyEmptyAndSingle(t *testing.T) {
	if s := Daily(CrawlEnd, CrawlStart); s != nil {
		t.Errorf("reversed Daily = %v, want nil", s)
	}
	s := Daily(CrawlStart, CrawlStart)
	if len(s) != 1 || !s[0].Equal(CrawlStart) {
		t.Errorf("single-day Daily = %v", s)
	}
}

func TestSpanEdgeCases(t *testing.T) {
	if Span(ScanStart, ScanEnd, 0) != nil {
		t.Error("Span n=0 should be nil")
	}
	one := Span(ScanStart, ScanEnd, 1)
	if len(one) != 1 || !one[0].Equal(ScanStart) {
		t.Errorf("Span n=1 = %v", one)
	}
	two := Span(ScanStart, ScanEnd, 2)
	if !two[0].Equal(ScanStart) || !two[1].Equal(ScanEnd) {
		t.Errorf("Span n=2 = %v", two)
	}
}

func TestBetween(t *testing.T) {
	s := ScanSchedule()
	sub := s.Between(Heartbleed, ScanEnd)
	for _, inst := range sub {
		if inst.Before(Heartbleed) {
			t.Errorf("Between returned %v before %v", inst, Heartbleed)
		}
	}
	if len(sub) == 0 || len(sub) >= len(s) {
		t.Errorf("Between returned %d of %d scans", len(sub), len(s))
	}
}

func TestEmptyScheduleBounds(t *testing.T) {
	var s Schedule
	if !s.First().IsZero() || !s.Last().IsZero() {
		t.Error("empty schedule bounds should be zero times")
	}
}

func TestMonthKey(t *testing.T) {
	if got := MonthKey(Heartbleed); got != "2014-04" {
		t.Errorf("MonthKey = %q", got)
	}
}

func TestMonths(t *testing.T) {
	got := Months(Date(2014, time.November, 15), Date(2015, time.February, 3))
	want := []string{"2014-11", "2014-12", "2015-01", "2015-02"}
	if len(got) != len(want) {
		t.Fatalf("Months = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Months[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if m := Months(ScanEnd, ScanStart); m != nil {
		t.Errorf("reversed Months = %v, want nil", m)
	}
}

// Property: a Span schedule is always non-decreasing and bounded by its
// endpoints.
func TestSpanMonotoneProperty(t *testing.T) {
	f := func(days uint16, n uint8) bool {
		start := ScanStart
		end := start.Add(time.Duration(days) * 24 * time.Hour)
		s := Span(start, end, int(n%100))
		for i, inst := range s {
			if inst.Before(start) || inst.After(end) {
				return false
			}
			if i > 0 && inst.Before(s[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: DaysBetween is antisymmetric and additive over midpoints.
func TestDaysBetweenProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		ta := ScanStart.Add(time.Duration(a) * 24 * time.Hour)
		tb := ScanStart.Add(time.Duration(b) * 24 * time.Hour)
		return DaysBetween(ta, tb) == -DaysBetween(tb, ta) &&
			DaysBetween(ta, tb) == int(b)-int(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
