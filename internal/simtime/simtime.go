// Package simtime provides the deterministic virtual clock and measurement
// calendar used by the simulated certificate ecosystem.
//
// The paper's measurement spans 74 (roughly) weekly full-IPv4 scans between
// October 30, 2013 and March 30, 2015, with daily CRL crawls starting
// October 2, 2014. All of those schedules are expressed here against a
// virtual clock so that an entire 17-month measurement replays in
// milliseconds and is byte-for-byte reproducible.
package simtime

import (
	"fmt"
	"sync"
	"time"
)

// Canonical dates of the measurement study (all midnight UTC).
var (
	// ScanStart is the date of the first Rapid7 port-443 scan used.
	ScanStart = Date(2013, time.October, 30)
	// ScanEnd is the date of the last scan used.
	ScanEnd = Date(2015, time.March, 30)
	// CrawlStart is the first day of the daily CRL crawl.
	CrawlStart = Date(2014, time.October, 2)
	// CrawlEnd is the last day of the daily CRL crawl.
	CrawlEnd = Date(2015, time.March, 31)
	// Heartbleed is the public disclosure date of CVE-2014-0160, which
	// triggered the mass-revocation event visible in Figure 2.
	Heartbleed = Date(2014, time.April, 7)
	// CRLSetStart is the publication date of the first CRLSet snapshot
	// in the paper's historical crawl.
	CRLSetStart = Date(2013, time.July, 18)
)

// NumScans is the number of full scans in the study.
const NumScans = 74

// Date returns midnight UTC on the given day.
func Date(year int, month time.Month, day int) time.Time {
	return time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
}

// DaysBetween returns the number of whole days from a to b. It is negative
// when b precedes a.
func DaysBetween(a, b time.Time) int {
	return int(b.Sub(a) / (24 * time.Hour))
}

// Clock is a virtual clock. The zero value is unusable; construct with
// NewClock. Clock is safe for concurrent use: simulated servers read it
// while the simulation driver advances it.
type Clock struct {
	mu  sync.RWMutex
	now time.Time
}

// NewClock returns a clock frozen at start.
func NewClock(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.now
}

// Advance moves the clock forward by d. It panics if d is negative, because
// time running backwards always indicates a simulation-driver bug.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: Advance(%v): negative duration", d))
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// AdvanceTo moves the clock to t. It panics if t precedes the current time.
func (c *Clock) AdvanceTo(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Before(c.now) {
		panic(fmt.Sprintf("simtime: AdvanceTo(%v): before current time %v", t, c.now))
	}
	c.now = t
}

// Schedule is an ordered list of instants at which a recurring measurement
// fires (scans, crawls, CRLSet fetches).
type Schedule []time.Time

// Weekly returns a schedule of n instants spaced exactly seven days apart,
// starting at start.
func Weekly(start time.Time, n int) Schedule {
	return every(start, n, 7*24*time.Hour)
}

// Daily returns a schedule of one instant per day from first to last
// inclusive.
func Daily(first, last time.Time) Schedule {
	n := DaysBetween(first, last) + 1
	if n <= 0 {
		return nil
	}
	return every(first, n, 24*time.Hour)
}

// Span returns a schedule of n instants evenly covering [start, end]; the
// first instant is start and the last is end. This matches the paper's
// "roughly weekly" scan cadence, which drifts slightly so the 74th scan
// lands on March 30, 2015.
func Span(start, end time.Time, n int) Schedule {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return Schedule{start}
	}
	total := end.Sub(start)
	s := make(Schedule, n)
	for i := range s {
		s[i] = start.Add(time.Duration(int64(total) / int64(n-1) * int64(i)))
	}
	s[n-1] = end
	return s
}

func every(start time.Time, n int, step time.Duration) Schedule {
	if n <= 0 {
		return nil
	}
	s := make(Schedule, n)
	for i := range s {
		s[i] = start.Add(time.Duration(i) * step)
	}
	return s
}

// ScanSchedule returns the study's 74-scan calendar.
func ScanSchedule() Schedule { return Span(ScanStart, ScanEnd, NumScans) }

// CrawlSchedule returns the study's daily CRL-crawl calendar
// (October 2, 2014 through March 31, 2015).
func CrawlSchedule() Schedule { return Daily(CrawlStart, CrawlEnd) }

// Between returns the sub-schedule of instants t with from <= t <= to.
func (s Schedule) Between(from, to time.Time) Schedule {
	var out Schedule
	for _, t := range s {
		if !t.Before(from) && !t.After(to) {
			out = append(out, t)
		}
	}
	return out
}

// First returns the first instant, or the zero time for an empty schedule.
func (s Schedule) First() time.Time {
	if len(s) == 0 {
		return time.Time{}
	}
	return s[0]
}

// Last returns the final instant, or the zero time for an empty schedule.
func (s Schedule) Last() time.Time {
	if len(s) == 0 {
		return time.Time{}
	}
	return s[len(s)-1]
}

// MonthKey returns t's month as "YYYY-MM", the bucketing key used by the
// issuance-time analyses (Figure 4).
func MonthKey(t time.Time) string {
	return fmt.Sprintf("%04d-%02d", t.Year(), int(t.Month()))
}

// Months returns the "YYYY-MM" keys for every month from first to last
// inclusive.
func Months(first, last time.Time) []string {
	var out []string
	y, m := first.Year(), first.Month()
	for {
		cur := time.Date(y, m, 1, 0, 0, 0, 0, time.UTC)
		if cur.After(last) {
			break
		}
		out = append(out, MonthKey(cur))
		m++
		if m > time.December {
			m = time.January
			y++
		}
	}
	return out
}
