package fleet

import (
	"sync"
	"testing"

	"repro/internal/browser"
	"repro/internal/hist"
)

func testWorld(t *testing.T, cfg Config) *World {
	t.Helper()
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestDeterminismAcrossWorkers is the fleet analogue of
// workload.TestParallelDeterminism: the aggregate digest must depend only
// on (world, plan), never on scheduling.
func TestDeterminismAcrossWorkers(t *testing.T) {
	cfg := Config{Browsers: 24, Certs: 64, EvalsPerBrowser: 12, Seed: 7}
	var want Result
	for i, workers := range []int{1, 2, 4, 8} {
		w := testWorld(t, cfg) // fresh world per run: identical by Seed
		got, err := w.Run(RunOptions{Workers: workers, Store: browser.NewCache()})
		if err != nil {
			t.Fatal(err)
		}
		if got.Verdicts != cfg.Browsers*cfg.EvalsPerBrowser {
			t.Fatalf("workers=%d: %d verdicts, want %d", workers, got.Verdicts, cfg.Browsers*cfg.EvalsPerBrowser)
		}
		if i == 0 {
			want = got
			continue
		}
		if got.Digest != want.Digest {
			t.Errorf("workers=%d: digest %x, want %x (1 worker)", workers, got.Digest, want.Digest)
		}
		if got.Accepts != want.Accepts || got.Rejects != want.Rejects ||
			got.Warns != want.Warns || got.RevocationsDetected != want.RevocationsDetected {
			t.Errorf("workers=%d: outcomes %+v diverge from %+v", workers, got, want)
		}
	}
}

// TestDeterminismSameWorld re-runs the same world with fresh equal caches
// and different worker counts — the digest must also survive cache reuse
// order differences.
func TestDeterminismSameWorld(t *testing.T) {
	w := testWorld(t, Config{Browsers: 16, Certs: 48, EvalsPerBrowser: 8, Seed: 3})
	r1, err := w.Run(RunOptions{Workers: 1, Store: browser.NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := w.Run(RunOptions{Workers: 6, Store: browser.NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Digest != r2.Digest {
		t.Errorf("digest diverges on shared world: %x vs %x", r1.Digest, r2.Digest)
	}
}

// TestFleetSharedCacheRace exists for the -race build: many goroutines
// hammer one Cache and one Client through concurrent Evaluate calls.
func TestFleetSharedCacheRace(t *testing.T) {
	w := testWorld(t, Config{Browsers: 32, Certs: 32, EvalsPerBrowser: 6, Seed: 5})
	cache := browser.NewCacheWithConfig(browser.CacheConfig{Shards: 4, MaxEntries: 64})
	if _, err := w.Run(RunOptions{Workers: 16, Store: cache}); err != nil {
		t.Fatal(err)
	}
	// Concurrent direct sharing outside the driver too: one client, one
	// verdict per goroutine, overlapping chains.
	client := &browser.Client{
		Profile: browser.Hardened(),
		HTTP:    w.Net.Client(),
		Now:     w.Clock.Now,
		Cache:   cache,
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var v browser.Verdict
			for i := 0; i < 20; i++ {
				chain := w.Chains[(g*3+i)%len(w.Chains)]
				if err := client.EvaluateInto(&v, chain, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if cache.Stats().Hits() == 0 {
		t.Error("shared cache saw no hits under concurrency")
	}
}

func TestWarmCacheStopsNetworkTraffic(t *testing.T) {
	w := testWorld(t, Config{Browsers: 16, Certs: 32, EvalsPerBrowser: 8, Seed: 2})
	store := browser.NewCache()
	cold, err := w.Run(RunOptions{Workers: 2, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if cold.NetRequests == 0 {
		t.Fatal("cold run made no network requests")
	}
	warm, err := w.Run(RunOptions{Workers: 2, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if warm.NetRequests != 0 {
		t.Errorf("warm run still made %d network requests", warm.NetRequests)
	}
	if ratio := warm.Cache.HitRatio(); ratio < 0.95 {
		t.Errorf("warm hit ratio = %.3f, want >= 0.95", ratio)
	}
	if cold.Digest != warm.Digest {
		t.Errorf("cold/warm digests diverge: %x vs %x (outcomes must be cache-independent)", cold.Digest, warm.Digest)
	}
}

func TestCRLSetFastPathNeedsNoNetwork(t *testing.T) {
	w := testWorld(t, Config{Browsers: 12, Certs: 32, EvalsPerBrowser: 8, Seed: 4})
	res, err := w.Run(RunOptions{Workers: 3, CRLSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.NetRequests != 0 {
		t.Errorf("CRLSet fleet made %d network requests, want 0", res.NetRequests)
	}
	if res.FastPath.CRLSetHits != res.Verdicts {
		t.Errorf("CRLSetHits = %d, want %d (every verdict local)", res.FastPath.CRLSetHits, res.Verdicts)
	}
	// The CRLSet must agree with the online protocols on every outcome.
	online, err := w.Run(RunOptions{Workers: 3, Store: browser.NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejects != online.Rejects || res.RevocationsDetected != online.RevocationsDetected {
		t.Errorf("CRLSet outcomes %+v disagree with online %+v", res, online)
	}
}

func TestBloomFastPathSkipsGoodFetches(t *testing.T) {
	w := testWorld(t, Config{Browsers: 12, Certs: 32, EvalsPerBrowser: 8, Seed: 6})
	bloomRes, err := w.Run(RunOptions{Workers: 2, Store: browser.NewCache(), Bloom: true})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := w.Run(RunOptions{Workers: 2, Store: browser.NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	if bloomRes.FastPath.BloomNegatives == 0 {
		t.Error("Bloom fleet recorded no negatives")
	}
	if bloomRes.NetRequests >= plain.NetRequests {
		t.Errorf("Bloom fleet fetched %d >= plain %d", bloomRes.NetRequests, plain.NetRequests)
	}
	if bloomRes.Rejects != plain.Rejects || bloomRes.RevocationsDetected != plain.RevocationsDetected {
		t.Errorf("Bloom outcomes %+v disagree with plain %+v", bloomRes, plain)
	}
}

// TestLatencyRecording: a run with a histogram attached must record one
// sample per verdict, report a sane summary, keep the digest identical
// to an unrecorded run, and stay allocation-free relative to it on the
// warm path (the hard 0-alloc gate lives in bench-fleet-check; here we
// bound the drift so a regression fails fast in plain tests).
func TestLatencyRecording(t *testing.T) {
	cfg := Config{Browsers: 24, Certs: 64, EvalsPerBrowser: 12, Seed: 7}
	w := testWorld(t, cfg)
	store := browser.NewCache()
	if _, err := w.Run(RunOptions{Workers: 2, Store: store}); err != nil {
		t.Fatal(err) // warm the cache
	}
	bare, err := w.Run(RunOptions{Workers: 2, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	lat := hist.NewSharded(2)
	recorded, err := w.Run(RunOptions{Workers: 2, Store: store, Latency: lat})
	if err != nil {
		t.Fatal(err)
	}
	if recorded.Digest != bare.Digest {
		t.Errorf("latency recording changed the digest: %x vs %x", recorded.Digest, bare.Digest)
	}
	if recorded.Latency.Count != uint64(recorded.Verdicts) {
		t.Errorf("recorded %d latencies for %d verdicts", recorded.Latency.Count, recorded.Verdicts)
	}
	if recorded.Latency.P50Ns <= 0 || recorded.Latency.MaxNs < recorded.Latency.P999Ns {
		t.Errorf("implausible latency summary: %+v", recorded.Latency)
	}
	if snap := lat.Snapshot(); snap.Count != uint64(recorded.Verdicts) {
		t.Errorf("caller-visible histogram holds %d samples, want %d", snap.Count, recorded.Verdicts)
	}
	if recorded.AllocsPerVerdict > bare.AllocsPerVerdict+0.5 {
		t.Errorf("latency recording added allocations: %.2f vs %.2f allocs/verdict",
			recorded.AllocsPerVerdict, bare.AllocsPerVerdict)
	}
	// A second recorded run must report only its own delta, not the
	// cumulative histogram.
	again, err := w.Run(RunOptions{Workers: 2, Store: store, Latency: lat})
	if err != nil {
		t.Fatal(err)
	}
	if again.Latency.Count != uint64(again.Verdicts) {
		t.Errorf("second run summary counted %d samples, want per-run %d", again.Latency.Count, again.Verdicts)
	}
}

func TestStampedeCollapsesToOneFetch(t *testing.T) {
	w := testWorld(t, Config{Browsers: 8, Certs: 16, EvalsPerBrowser: 4, Seed: 9})
	res, err := w.Stampede(48)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fetches != 1 {
		t.Errorf("stampede caused %d CRL fetches, want 1", res.Fetches)
	}
	if res.Joins+res.Hits != int64(res.Clients-1) {
		t.Errorf("joins(%d)+hits(%d) != clients-1 (%d)", res.Joins, res.Hits, res.Clients-1)
	}
	if res.NetRequests != 1 {
		t.Errorf("fabric saw %d requests, want 1", res.NetRequests)
	}
	if res.Latency.Count != uint64(res.Clients) {
		t.Errorf("stampede recorded %d latencies for %d clients", res.Latency.Count, res.Clients)
	}
}

func TestCascadeFastPathFullyOffline(t *testing.T) {
	w := testWorld(t, Config{Browsers: 12, Certs: 32, EvalsPerBrowser: 8, Seed: 8})
	res, err := w.Run(RunOptions{Workers: 3, Cascade: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.NetRequests != 0 {
		t.Errorf("cascade fleet made %d network requests, want 0", res.NetRequests)
	}
	if res.FastPath.CascadeHits != res.Verdicts {
		t.Errorf("CascadeHits = %d, want %d (every verdict local)", res.FastPath.CascadeHits, res.Verdicts)
	}
	// The cascade must agree with the online protocols on every outcome —
	// it is exact, not probabilistic.
	online, err := w.Run(RunOptions{Workers: 3, Store: browser.NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejects != online.Rejects || res.RevocationsDetected != online.RevocationsDetected {
		t.Errorf("cascade outcomes %+v disagree with online %+v", res, online)
	}
}

func TestCascadeDeterminismAcrossWorkers(t *testing.T) {
	w := testWorld(t, Config{Browsers: 16, Certs: 48, EvalsPerBrowser: 6, Seed: 9})
	var digests []uint64
	for _, workers := range []int{1, 4} {
		res, err := w.Run(RunOptions{Workers: workers, Cascade: true})
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, res.Digest)
	}
	if digests[0] != digests[1] {
		t.Errorf("cascade digests differ across workers: %x vs %x", digests[0], digests[1])
	}
}

// TestRibbonAndShardedCascadeMatchBloom: the three cascade installs —
// monolithic Bloom, monolithic ribbon, per-issuer sharded ribbon — must
// produce the identical run digest: same verdicts, same fast-path
// attribution, zero network. The ribbon size win is gated at real scale
// in the cascade package (TestRibbonBuildExactness) and in benchcascade;
// at this toy world's handful of keys both artifacts are ~200 B and
// only a loose sanity bound is meaningful.
func TestRibbonAndShardedCascadeMatchBloom(t *testing.T) {
	w := testWorld(t, Config{Browsers: 12, Certs: 64, EvalsPerBrowser: 8, Seed: 10})
	if r, b := w.CascadeRibbon.SizeBytes(), w.Cascade.SizeBytes(); float64(r) > 1.5*float64(b) {
		t.Errorf("ribbon cascade %d B implausibly above Bloom %d B", r, b)
	}
	var digests []uint64
	for _, opt := range []RunOptions{
		{Workers: 3, Cascade: true},
		{Workers: 3, CascadeRibbon: true},
		{Workers: 3, CascadeShards: true},
	} {
		res, err := w.Run(opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.NetRequests != 0 {
			t.Errorf("%+v: made %d network requests, want 0", opt, res.NetRequests)
		}
		if res.FastPath.CascadeHits != res.Verdicts {
			t.Errorf("%+v: CascadeHits = %d, want %d", opt, res.FastPath.CascadeHits, res.Verdicts)
		}
		digests = append(digests, res.Digest)
	}
	if digests[0] != digests[1] || digests[1] != digests[2] {
		t.Errorf("cascade digests diverge across representations: %x", digests)
	}
}
