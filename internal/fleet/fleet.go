// Package fleet drives a population of simulated browsers through
// revocation checking at fleet scale: B concurrent clients sharing one
// revocation cache evaluate chains drawn from a Zipf-popular certificate
// population on the virtual clock. It is the client-side counterpart of
// the workload engine — where workload measures what CAs and CDNs pay to
// serve revocation data (§5), fleet measures what a million browsers pay
// to check it (§6–§7): cache hit ratios, singleflight dedupe savings,
// CRLSet/Bloom fast-path coverage, and per-verdict allocation cost.
package fleet

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/bloom"
	"repro/internal/browser"
	"repro/internal/ca"
	"repro/internal/cascade"
	"repro/internal/crl"
	"repro/internal/crlset"
	"repro/internal/hist"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/x509x"
)

// Config sizes the simulated world. The zero value of any field selects
// the default noted on it.
type Config struct {
	// Browsers is the number of simulated browsers (default 64). Each
	// browser evaluates its own deterministic chain sequence; all share
	// one Client and one cache, like tabs sharing a machine-wide
	// verifier.
	Browsers int
	// Certs is the size of the leaf population (default 256).
	Certs int
	// EvalsPerBrowser is how many chains each browser evaluates per run
	// (default 32).
	EvalsPerBrowser int
	// ZipfS is the Zipf skew of certificate popularity (default 1.2;
	// must be > 1). Low indices are popular, mirroring how a handful of
	// sites dominate real browsing.
	ZipfS float64
	// RevokedFraction of the population is revoked before any run
	// (default 0.05). Revocations land on the unpopular tail so the
	// popular working set stays mostly good, as in the real web (§6.1
	// found ~8% of served certificates revoked).
	RevokedFraction float64
	// CRLOnlyFraction of leaves carry only a CRL distribution point
	// (default 0.3), forcing the CRL path; the rest carry both pointers
	// and are checked over OCSP first.
	CRLOnlyFraction float64
	// CRLShards is the CA's CRL shard count (default 4).
	CRLShards int
	// Seed drives every random choice (default 1). Two worlds with the
	// same Config are identical.
	Seed int64
}

func (c *Config) fillDefaults() {
	if c.Browsers <= 0 {
		c.Browsers = 64
	}
	if c.Certs <= 1 {
		c.Certs = 256
	}
	if c.EvalsPerBrowser <= 0 {
		c.EvalsPerBrowser = 32
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.RevokedFraction < 0 {
		c.RevokedFraction = 0
	}
	if c.RevokedFraction == 0 {
		c.RevokedFraction = 0.05
	}
	if c.CRLOnlyFraction < 0 {
		c.CRLOnlyFraction = 0
	}
	if c.CRLOnlyFraction == 0 {
		c.CRLOnlyFraction = 0.3
	}
	if c.CRLShards <= 0 {
		c.CRLShards = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// World is a frozen PKI plus a browsing plan: a CA serving CRL shards and
// OCSP over simnet, a leaf population with some revocations, the derived
// CRLSet/Bloom artifacts, and per-browser evaluation sequences. A World
// is immutable after New, so any number of runs (with different stores,
// worker counts, or fast paths) observe identical inputs.
type World struct {
	Cfg   Config
	Clock *simtime.Clock
	Net   *simnet.Network
	CA    *ca.CA
	// Chains[i] is [leaf_i, caCert]; roots are revocation-exempt, so each
	// verdict checks exactly the leaf.
	Chains  [][]*x509x.Certificate
	Records []*ca.Record
	// Revoked reports leaves revoked at world build (the population tail).
	Revoked []bool
	// CRLSet covers the CA's SPKI with every revoked serial — a fleet
	// with this set installed never needs the network.
	CRLSet *crlset.Set
	// Bloom holds BloomKey(parent, serial) for every revoked leaf.
	Bloom *bloom.Filter
	// Cascade is the CRLite-style filter cascade over the whole leaf
	// population: exact offline verdicts for every leaf, revoked or not.
	Cascade *cascade.Filter
	// CascadeRibbon is the same cascade with succinct ribbon levels —
	// identical verdicts for every leaf at a fraction of the bytes.
	CascadeRibbon *cascade.Filter
	// Shards is the sharded install of CascadeRibbon (one issuer, one
	// shard) for exercising the per-issuer client path.
	Shards *cascade.ShardSet

	crlOnlyChain int       // index of a CRL-only leaf, for the stampede
	plans        [][]int32 // per-browser chain-index sequences
}

// New builds a world. The virtual clock starts at the paper's measurement
// epoch and is never advanced by runs, so cached artifacts stay current.
func New(cfg Config) (*World, error) {
	cfg.fillDefaults()
	clock := simtime.NewClock(simtime.Date(2015, time.March, 1))
	net := simnet.New()
	authority, err := ca.NewRoot(ca.Config{
		Name:         "Fleet",
		NumCRLShards: cfg.CRLShards,
		CRLBaseURL:   "http://crl.fleet.test/crl",
		OCSPBaseURL:  "http://ocsp.fleet.test/ocsp",
		IncludeCRLDP: true,
		IncludeOCSP:  true,
		Clock:        clock.Now,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	net.Register("crl.fleet.test", authority.Handler())
	net.Register("ocsp.fleet.test", authority.Handler())

	w := &World{
		Cfg:          cfg,
		Clock:        clock,
		Net:          net,
		CA:           authority,
		Chains:       make([][]*x509x.Certificate, 0, cfg.Certs),
		Records:      make([]*ca.Record, 0, cfg.Certs),
		Revoked:      make([]bool, cfg.Certs),
		crlOnlyChain: -1,
	}
	caCert := authority.Certificate()
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.Certs; i++ {
		crlOnly := rng.Float64() < cfg.CRLOnlyFraction
		cert, rec, err := authority.Issue(ca.IssueOptions{
			CommonName: fmt.Sprintf("site-%05d.fleet.test", i),
			NotBefore:  clock.Now().AddDate(0, -1, 0),
			NotAfter:   clock.Now().AddDate(1, 0, 0),
			OmitOCSP:   crlOnly,
		})
		if err != nil {
			return nil, err
		}
		if crlOnly && w.crlOnlyChain < 0 {
			w.crlOnlyChain = i
		}
		w.Chains = append(w.Chains, []*x509x.Certificate{cert, caCert})
		w.Records = append(w.Records, rec)
	}
	if w.crlOnlyChain < 0 {
		w.crlOnlyChain = 0 // no CRL-only leaf issued; stampede still works via fallback
	}

	// Revoke the unpopular tail so the Zipf head stays mostly good.
	nRevoked := int(cfg.RevokedFraction * float64(cfg.Certs))
	parent := crlset.Parent(x509x.SPKIHash(caCert.RawSPKI))
	w.CRLSet = crlset.NewSet(1)
	w.CRLSet.AddParent(parent)
	w.Bloom = bloom.NewOptimal(max(64, nRevoked*2), max(1, nRevoked))
	for i := cfg.Certs - nRevoked; i < cfg.Certs; i++ {
		rec := w.Records[i]
		if err := authority.Revoke(rec.Serial, clock.Now(), crl.ReasonKeyCompromise); err != nil {
			return nil, err
		}
		w.Revoked[i] = true
		w.CRLSet.Add(parent, rec.Serial)
		w.Bloom.Add(browser.BloomKey(nil, parent, rec.Serial.Bytes()))
	}

	// Filter cascade over the full population: exact for every leaf.
	var revokedKeys [][]byte
	for i := cfg.Certs - nRevoked; i < cfg.Certs; i++ {
		revokedKeys = append(revokedKeys, cascade.AppendKey(nil, cascade.Parent(parent), w.Records[i].Serial.Bytes()))
	}
	visit := func(fn func(key []byte) bool) {
		var buf [56]byte
		for _, rec := range w.Records {
			if !fn(cascade.AppendKey(buf[:0], cascade.Parent(parent), rec.Serial.Bytes())) {
				return
			}
		}
	}
	w.Cascade, err = cascade.Build(revokedKeys, visit, []cascade.Parent{cascade.Parent(parent)}, cascade.BuildConfig{
		Epoch:   1,
		BuiltAt: clock.Now(),
	})
	if err != nil {
		return nil, err
	}
	w.CascadeRibbon, err = cascade.Build(revokedKeys, visit, []cascade.Parent{cascade.Parent(parent)}, cascade.BuildConfig{
		Epoch:     1,
		BuiltAt:   clock.Now(),
		LevelKind: cascade.KindRibbon,
	})
	if err != nil {
		return nil, err
	}
	w.Shards, err = cascade.NewShardSet([]*cascade.Filter{w.CascadeRibbon})
	if err != nil {
		return nil, err
	}

	// Per-browser plans: browser b's sequence depends only on (Seed, b),
	// never on scheduling, which is what makes fleet aggregates
	// worker-count independent.
	w.plans = make([][]int32, cfg.Browsers)
	for b := 0; b < cfg.Browsers; b++ {
		r := rand.New(rand.NewSource(cfg.Seed + 1 + int64(b)))
		z := rand.NewZipf(r, cfg.ZipfS, 1, uint64(cfg.Certs-1))
		seq := make([]int32, cfg.EvalsPerBrowser)
		for e := range seq {
			seq[e] = int32(z.Uint64())
		}
		w.plans[b] = seq
	}
	return w, nil
}

// NumRevoked reports how many leaves the world revoked.
func (w *World) NumRevoked() int {
	n := 0
	for _, r := range w.Revoked {
		if r {
			n++
		}
	}
	return n
}

// RunOptions selects how one fleet run executes against the World.
type RunOptions struct {
	// Workers is the number of goroutines sharing the browser population
	// (browser b is handled by worker b mod Workers). Default 1.
	Workers int
	// Store is the shared revocation cache; nil disables caching.
	Store browser.Store
	// CRLSet installs the world's CRLSet as the client's local fast path.
	CRLSet bool
	// Bloom installs the world's Bloom filter as the client's fast path.
	Bloom bool
	// Cascade installs the world's filter cascade as the authoritative
	// offline fast path (consulted before CRLSet/Bloom).
	Cascade bool
	// CascadeRibbon installs the ribbon-level cascade instead — the same
	// exact verdicts from a succinct snapshot.
	CascadeRibbon bool
	// CascadeShards installs the world's sharded cascade set: verdicts
	// route through the per-issuer shard path.
	CascadeShards bool
	// Client overrides the HTTP client the run's browsers share. Nil
	// uses w.Net.Client() (the simnet fabric); the scenario engine sets
	// it to route a run through a faultnet injector or a real-TCP
	// transport without re-plumbing the world.
	Client *http.Client
	// Latency, when non-nil, receives every verdict's wall-clock
	// latency: worker wk records into Latency.Shard(wk), so the warm
	// verdict path stays allocation-free (two monotonic clock reads and
	// one bucket increment per verdict). Wall latencies are real time,
	// not virtual — report them, never fold them into determinism
	// digests.
	Latency *hist.Sharded
}

// Result aggregates one fleet run.
type Result struct {
	Workers  int
	Verdicts int

	Accepts             int
	Warns               int
	Rejects             int
	RevocationsDetected int

	// Digest is an order-independent-of-scheduling fingerprint of the
	// per-browser outcome aggregates: identical across worker counts for
	// a fixed world.
	Digest uint64

	// Elapsed is this run's (phase's) wall time: measured from worker
	// launch to the last worker's return, excluding world construction
	// and the GC/ReadMemStats bracketing.
	Elapsed        time.Duration
	VerdictsPerSec float64
	// Latency summarizes the per-verdict wall latencies recorded into
	// RunOptions.Latency (zero when no histogram was supplied).
	Latency hist.Summary
	// AllocsPerVerdict / BytesPerVerdict are heap deltas over the run
	// divided by verdict count (runtime.ReadMemStats, whole process).
	AllocsPerVerdict float64
	BytesPerVerdict  float64

	// Cache is the store's counter delta for this run (zero when the
	// store is not a *browser.Cache).
	Cache browser.CacheStats
	// FastPath sums the per-verdict CRLSet/Bloom attribution.
	FastPath browser.FastPathStats

	NetRequests  int64
	NetBytes     int64
	ModelledTime time.Duration
}

// browserAgg is one browser's outcome tally, written only by the worker
// that owns the browser.
type browserAgg struct {
	accepts  uint32
	warns    uint32
	rejects  uint32
	detected uint32
	fast     browser.FastPathStats
}

func subStats(after, before browser.CacheStats) browser.CacheStats {
	return browser.CacheStats{
		CRLHits:     after.CRLHits - before.CRLHits,
		CRLMisses:   after.CRLMisses - before.CRLMisses,
		OCSPHits:    after.OCSPHits - before.OCSPHits,
		OCSPMisses:  after.OCSPMisses - before.OCSPMisses,
		Expired:     after.Expired - before.Expired,
		Evictions:   after.Evictions - before.Evictions,
		CRLFetches:  after.CRLFetches - before.CRLFetches,
		DedupeJoins: after.DedupeJoins - before.DedupeJoins,
	}
}

// Run executes every browser's plan once and returns the aggregate. The
// same World may be Run any number of times; runs with the same store
// warm it, runs with fresh stores measure cold behaviour.
func (w *World) Run(opt RunOptions) (Result, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = 1
	}
	httpClient := opt.Client
	if httpClient == nil {
		httpClient = w.Net.Client()
	}
	client := &browser.Client{
		Profile: browser.Hardened(),
		HTTP:    httpClient,
		Now:     w.Clock.Now,
		Cache:   opt.Store,
	}
	if opt.CRLSet {
		client.CRLSet = w.CRLSet
	}
	if opt.Bloom {
		client.Bloom = w.Bloom
	}
	if opt.Cascade {
		client.Cascade = w.Cascade
	}
	if opt.CascadeRibbon {
		client.Cascade = w.CascadeRibbon
	}
	if opt.CascadeShards {
		client.CascadeShards = w.Shards
	}

	aggs := make([]browserAgg, w.Cfg.Browsers)
	netBefore := w.Net.TotalStats()
	var cacheBefore browser.CacheStats
	shardedStore, _ := opt.Store.(*browser.Cache)
	if shardedStore != nil {
		cacheBefore = shardedStore.Stats()
	}

	var latBefore *hist.Snapshot
	if opt.Latency != nil {
		latBefore = opt.Latency.Snapshot()
	}

	runtime.GC()
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			var rec *hist.Recorder
			if opt.Latency != nil {
				rec = opt.Latency.Shard(wk)
			}
			var v browser.Verdict
			for b := wk; b < w.Cfg.Browsers; b += workers {
				agg := &aggs[b]
				for _, ci := range w.plans[b] {
					var t0 time.Time
					if rec != nil {
						t0 = time.Now()
					}
					if err := client.EvaluateInto(&v, w.Chains[ci], nil); err != nil {
						errs[wk] = err
						return
					}
					if rec != nil {
						rec.Record(time.Since(t0))
					}
					switch v.Outcome {
					case browser.OutcomeAccept:
						agg.accepts++
					case browser.OutcomeWarn:
						agg.warns++
					case browser.OutcomeReject:
						agg.rejects++
					}
					if v.RevocationDetected {
						agg.detected++
					}
					agg.fast.Add(v.FastPath)
				}
			}
		}(wk)
	}
	wg.Wait()

	elapsed := time.Since(start)
	runtime.ReadMemStats(&msAfter)
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}

	res := Result{Workers: workers, Elapsed: elapsed}
	h := fnv.New64a()
	var word [4]byte
	hashField := func(v uint32) {
		binary.LittleEndian.PutUint32(word[:], v)
		h.Write(word[:])
	}
	for i := range aggs {
		agg := &aggs[i]
		res.Accepts += int(agg.accepts)
		res.Warns += int(agg.warns)
		res.Rejects += int(agg.rejects)
		res.RevocationsDetected += int(agg.detected)
		res.FastPath.Add(agg.fast)
		hashField(agg.accepts)
		hashField(agg.warns)
		hashField(agg.rejects)
		hashField(agg.detected)
		hashField(uint32(agg.fast.CascadeHits))
		hashField(uint32(agg.fast.CascadeMisses))
		hashField(uint32(agg.fast.CascadeStale))
		hashField(uint32(agg.fast.CRLSetHits))
		hashField(uint32(agg.fast.CRLSetMisses))
		hashField(uint32(agg.fast.BloomNegatives))
		hashField(uint32(agg.fast.BloomPositives))
		hashField(uint32(agg.fast.BlockedSPKI))
	}
	res.Digest = h.Sum64()
	res.Verdicts = res.Accepts + res.Warns + res.Rejects
	if elapsed > 0 {
		res.VerdictsPerSec = float64(res.Verdicts) / elapsed.Seconds()
	}
	if res.Verdicts > 0 {
		res.AllocsPerVerdict = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(res.Verdicts)
		res.BytesPerVerdict = float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / float64(res.Verdicts)
	}
	if opt.Latency != nil {
		res.Latency = opt.Latency.Snapshot().Sub(latBefore).Summary()
	}
	if shardedStore != nil {
		res.Cache = subStats(shardedStore.Stats(), cacheBefore)
	}
	netAfter := w.Net.TotalStats()
	res.NetRequests = int64(netAfter.Requests - netBefore.Requests)
	res.NetBytes = int64(netAfter.BytesReceived - netBefore.BytesReceived)
	res.ModelledTime = netAfter.ModelledTime - netBefore.ModelledTime
	return res, nil
}

// StampedeResult reports how a cold shared cache absorbed N clients
// simultaneously demanding the same CRL.
type StampedeResult struct {
	Clients int
	// Fetches is how many network downloads actually ran (the
	// singleflight collapses the stampede to 1).
	Fetches int64
	// Joins counts clients that waited on another client's in-flight
	// download; Hits counts clients served from the already-stored copy.
	Joins int64
	Hits  int64
	// NetRequests is the fabric-observed request count for the stampede.
	NetRequests int64
	// Latency summarizes per-client wall latency: the fetcher pays the
	// download, joiners pay the singleflight wait, and the tail shows
	// what the collapse actually cost each client.
	Latency hist.Summary
}

// Stampede points clients concurrent browsers at one CRL-only chain
// through a fresh sharded cache and reports the dedupe outcome. Every
// client is released at once, modelling a popular site's visitors all
// missing their local cache at the same instant (the Heartbleed-morning
// case, §5.3).
func (w *World) Stampede(clients int) (StampedeResult, error) {
	if clients <= 0 {
		clients = 64
	}
	cache := browser.NewCache()
	client := &browser.Client{
		Profile: browser.Hardened(),
		HTTP:    w.Net.Client(),
		Now:     w.Clock.Now,
		Cache:   cache,
	}
	chain := w.Chains[w.crlOnlyChain]
	netBefore := w.Net.TotalStats().Requests

	var startGate sync.WaitGroup
	startGate.Add(1)
	var wg sync.WaitGroup
	errs := make([]error, clients)
	lat := hist.NewSharded(clients) // one single-writer shard per client
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			startGate.Wait()
			t0 := time.Now()
			_, err := client.Evaluate(chain, nil)
			lat.Shard(i).Record(time.Since(t0))
			errs[i] = err
		}(i)
	}
	startGate.Done()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return StampedeResult{}, err
		}
	}
	st := cache.Stats()
	return StampedeResult{
		Clients:     clients,
		Fetches:     st.CRLFetches,
		Joins:       st.DedupeJoins,
		Hits:        st.CRLHits,
		NetRequests: int64(w.Net.TotalStats().Requests - netBefore),
		Latency:     lat.Snapshot().Summary(),
	}, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
