package core

import (
	"fmt"
	"time"

	"repro/internal/experiments"
	"repro/internal/workload"
)

// Pipeline is the measurement-study facade: build the simulated ecosystem,
// replay the scan and crawl calendars, and expose the experiment runners —
// the scan→crawl→analyse loop of §3 behind one call.
type Pipeline struct {
	// Runner exposes every per-figure/table experiment.
	Runner *experiments.Runner
	// Elapsed is the wall-clock cost of building and running the world.
	Elapsed time.Duration
}

// PipelineConfig parameterizes a study run.
type PipelineConfig struct {
	// Scale is the population scale relative to the real internet
	// (default 0.01 — the reference experiment scale).
	Scale float64
	// Seed drives all randomness; identical seeds reproduce identical
	// studies byte for byte.
	Seed int64
}

// RunStudy executes the full measurement study and returns its pipeline.
func RunStudy(cfg PipelineConfig) (*Pipeline, error) {
	wcfg := workload.DefaultConfig()
	if cfg.Scale > 0 {
		wcfg.Scale = cfg.Scale
	}
	if cfg.Seed != 0 {
		wcfg.Seed = cfg.Seed
	}
	start := time.Now()
	runner, err := experiments.New(wcfg)
	if err != nil {
		return nil, fmt.Errorf("core: study: %w", err)
	}
	return &Pipeline{Runner: runner, Elapsed: time.Since(start)}, nil
}

// Results runs every experiment and returns them in paper order.
func (p *Pipeline) Results() ([]*experiments.Result, error) {
	return p.Runner.All()
}

// World exposes the underlying simulated ecosystem for custom analyses.
func (p *Pipeline) World() *workload.World { return p.Runner.World }
