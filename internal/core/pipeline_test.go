package core

import (
	"testing"
)

func TestRunStudyEndToEnd(t *testing.T) {
	p, err := RunStudy(PipelineConfig{Scale: 0.0003, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if p.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
	w := p.World()
	if w == nil || w.Corpus.NumScans() != 74 {
		t.Fatalf("world scans = %d", w.Corpus.NumScans())
	}
	results, err := p.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 24 {
		t.Fatalf("results = %d", len(results))
	}
	// At very small scales some shape checks can get noisy; the pipeline
	// itself must still produce every experiment with findings.
	for _, res := range results {
		if res.ID == "" || len(res.Findings) == 0 {
			t.Errorf("experiment %q has no findings", res.ID)
		}
	}
}
