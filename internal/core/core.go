// Package core is the library's public facade: an end-to-end certificate
// revocation auditor in the spirit of the paper's methodology. Given a TLS
// endpoint, the Auditor performs a real handshake (requesting an OCSP
// staple), validates the presented chain, and checks every certificate's
// revocation status over every advertised mechanism — CRL download with
// signature verification, OCSP query, and staple inspection — while
// accounting for the bandwidth each mechanism cost. The result is exactly
// the evidence the paper gathers per certificate: who could have known the
// certificate was revoked, by which mechanism, and at what price.
package core

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/chain"
	"repro/internal/crl"
	"repro/internal/ocsp"
	"repro/internal/scan"
	"repro/internal/x509x"
)

// Status is the audited revocation status of one certificate via one
// mechanism.
type Status string

// Statuses.
const (
	StatusGood        Status = "good"
	StatusRevoked     Status = "revoked"
	StatusUnknown     Status = "unknown"
	StatusUnavailable Status = "unavailable"
	StatusNoPointer   Status = "no-pointer"
	StatusNotChecked  Status = "not-checked"
)

// MechanismResult is the outcome of checking one mechanism.
type MechanismResult struct {
	Status Status
	// Source is the URL consulted (or "staple").
	Source string
	// Bytes is the response size — the client's bandwidth cost (§5).
	Bytes int
	// Detail carries revocation time/reason or the error encountered.
	Detail string
}

// CertAudit is the audit of one chain element.
type CertAudit struct {
	Subject    string
	Issuer     string
	Serial     string
	NotBefore  time.Time
	NotAfter   time.Time
	EV         bool
	IsCA       bool
	SelfSigned bool

	CRL    MechanismResult
	OCSP   MechanismResult
	Staple MechanismResult
}

// Revoked reports whether any mechanism proved revocation.
func (c *CertAudit) Revoked() bool {
	return c.CRL.Status == StatusRevoked || c.OCSP.Status == StatusRevoked || c.Staple.Status == StatusRevoked
}

// Checkable reports whether the certificate advertises any revocation
// mechanism at all (§3.2's unrevokable certificates do not).
func (c *CertAudit) Checkable() bool {
	return c.CRL.Status != StatusNoPointer || c.OCSP.Status != StatusNoPointer
}

// Report is a full endpoint audit.
type Report struct {
	Target    string
	AuditedAt time.Time
	// ChainValid reports whether a path to a trusted root was found
	// (always true when no roots were configured — the audit then
	// trusts the presented order).
	ChainValid bool
	// StaplePresented reports whether the server stapled an OCSP
	// response into the handshake.
	StaplePresented bool
	Certs           []CertAudit
	// TotalBytes is the bandwidth revocation checking cost.
	TotalBytes int
}

// Verdict summarizes the audit: "revoked" if any element is revoked,
// "unchecked" if nothing could be verified, "incomplete" if some mechanism
// was unavailable, else "good".
func (r *Report) Verdict() string {
	anyGood, anyUnavailable := false, false
	for i := range r.Certs {
		c := &r.Certs[i]
		if c.Revoked() {
			return "revoked"
		}
		if c.CRL.Status == StatusGood || c.OCSP.Status == StatusGood || c.Staple.Status == StatusGood {
			anyGood = true
		}
		if c.CRL.Status == StatusUnavailable || c.OCSP.Status == StatusUnavailable {
			anyUnavailable = true
		}
	}
	switch {
	case anyUnavailable:
		return "incomplete"
	case anyGood:
		return "good"
	default:
		return "unchecked"
	}
}

// Render formats the report for terminal output.
func (r *Report) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "audit of %s at %s\n", r.Target, r.AuditedAt.Format(time.RFC3339))
	fmt.Fprintf(&sb, "verdict: %s (chain valid: %t, staple presented: %t, %d bytes fetched)\n",
		r.Verdict(), r.ChainValid, r.StaplePresented, r.TotalBytes)
	for i, c := range r.Certs {
		fmt.Fprintf(&sb, "[%d] %s (serial %s", i, c.Subject, c.Serial)
		if c.EV {
			sb.WriteString(", EV")
		}
		if c.IsCA {
			sb.WriteString(", CA")
		}
		fmt.Fprintf(&sb, ")\n")
		fmt.Fprintf(&sb, "    valid %s .. %s\n", c.NotBefore.Format("2006-01-02"), c.NotAfter.Format("2006-01-02"))
		for _, m := range []struct {
			name string
			res  MechanismResult
		}{{"crl", c.CRL}, {"ocsp", c.OCSP}, {"staple", c.Staple}} {
			if m.res.Status == StatusNotChecked && m.name == "staple" {
				continue
			}
			fmt.Fprintf(&sb, "    %-6s %-12s %s", m.name, m.res.Status, m.res.Source)
			if m.res.Bytes > 0 {
				fmt.Fprintf(&sb, " (%d bytes)", m.res.Bytes)
			}
			if m.res.Detail != "" {
				fmt.Fprintf(&sb, " — %s", m.res.Detail)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// Auditor audits live TLS endpoints.
type Auditor struct {
	// Roots, when non-nil, is the trust anchor pool for path validation;
	// the presented chain is used as-is otherwise.
	Roots *chain.Pool
	// HTTP performs CRL/OCSP fetches; http.DefaultClient when nil.
	HTTP *http.Client
	// DialTimeout bounds the TLS handshake (default 10s).
	DialTimeout time.Duration
	// Now supplies the validation time; time.Now when nil.
	Now func() time.Time
	// MaxCRLBytes caps CRL downloads (default 128 MiB).
	MaxCRLBytes int64
}

func (a *Auditor) now() time.Time {
	if a.Now != nil {
		return a.Now()
	}
	return time.Now()
}

func (a *Auditor) httpClient() *http.Client {
	if a.HTTP != nil {
		return a.HTTP
	}
	return http.DefaultClient
}

// Audit connects to addr (host:port), captures the chain and staple, and
// checks every element's revocation status end to end.
func (a *Auditor) Audit(addr string) (*Report, error) {
	timeout := a.DialTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	grab, err := scan.Grab(addr, timeout)
	if err != nil {
		return nil, err
	}
	return a.AuditChain(addr, grab.Chain, grab.Staple)
}

// AuditChain audits an already-captured chain (leaf first) and optional
// staple. It is the offline half of Audit, usable on stored scan data.
func (a *Auditor) AuditChain(target string, certs []*x509x.Certificate, staple []byte) (*Report, error) {
	if len(certs) == 0 {
		return nil, fmt.Errorf("core: empty chain for %s", target)
	}
	report := &Report{
		Target:     target,
		AuditedAt:  a.now(),
		ChainValid: true,
	}
	// Path validation against configured roots, using presented
	// intermediates.
	if a.Roots != nil {
		intermediates := chain.NewPool()
		for _, c := range certs[1:] {
			intermediates.Add(c)
		}
		verifier := &chain.Verifier{Roots: a.Roots, Intermediates: intermediates}
		if _, err := verifier.Verify(certs[0], chain.Options{At: a.now()}); err != nil {
			report.ChainValid = false
		}
	}

	for i, cert := range certs {
		audit := CertAudit{
			Subject:    cert.Subject.String(),
			Issuer:     cert.Issuer.String(),
			Serial:     cert.SerialNumber.String(),
			NotBefore:  cert.NotBefore,
			NotAfter:   cert.NotAfter,
			EV:         cert.IsEV(),
			IsCA:       cert.IsCA,
			SelfSigned: x509x.NamesEqual(cert.RawIssuer, cert.RawSubject),
			CRL:        MechanismResult{Status: StatusNoPointer},
			OCSP:       MechanismResult{Status: StatusNoPointer},
			Staple:     MechanismResult{Status: StatusNotChecked},
		}
		// Roots are exempt from revocation checking; an issuer is
		// needed for signature verification anyway.
		var issuer *x509x.Certificate
		if i+1 < len(certs) {
			issuer = certs[i+1]
		}
		if audit.SelfSigned || issuer == nil {
			report.Certs = append(report.Certs, audit)
			continue
		}
		if len(cert.CRLDistributionPoints) > 0 {
			audit.CRL = a.checkCRL(cert, issuer, report)
		}
		if len(cert.OCSPServers) > 0 {
			audit.OCSP = a.checkOCSP(cert, issuer, report)
		}
		if i == 0 && len(staple) > 0 {
			report.StaplePresented = true
			audit.Staple = a.checkStaple(cert, issuer, staple)
		}
		report.Certs = append(report.Certs, audit)
	}
	return report, nil
}

func (a *Auditor) checkCRL(cert, issuer *x509x.Certificate, report *Report) MechanismResult {
	res := MechanismResult{Status: StatusUnavailable}
	for _, url := range cert.CRLDistributionPoints {
		res.Source = url
		body, err := a.download(url)
		if err != nil {
			res.Detail = err.Error()
			continue
		}
		res.Bytes = len(body)
		report.TotalBytes += len(body)
		parsed, err := crl.Parse(body)
		if err != nil {
			res.Detail = err.Error()
			continue
		}
		if err := parsed.VerifySignature(issuer); err != nil {
			res.Detail = err.Error()
			continue
		}
		if !parsed.CurrentAt(a.now()) {
			res.Detail = "CRL outside validity window"
			continue
		}
		if entry, ok := parsed.Lookup(cert.SerialNumber); ok {
			res.Status = StatusRevoked
			res.Detail = fmt.Sprintf("revoked %s (%s)", entry.RevokedAt.Format("2006-01-02"), entry.Reason)
		} else {
			res.Status = StatusGood
			res.Detail = fmt.Sprintf("%d entries", len(parsed.Entries))
		}
		return res
	}
	return res
}

func (a *Auditor) checkOCSP(cert, issuer *x509x.Certificate, report *Report) MechanismResult {
	res := MechanismResult{Status: StatusUnavailable}
	client := &ocsp.Client{HTTP: a.httpClient()}
	for _, url := range cert.OCSPServers {
		res.Source = url
		sr, err := client.Check(url, issuer, cert.SerialNumber)
		if err != nil {
			res.Detail = err.Error()
			continue
		}
		// OCSP responses are ~1 KB (§5.2); exact accounting happens in
		// the HTTP layer for simnet clients, so record a nominal size.
		res.Bytes = 1000
		report.TotalBytes += res.Bytes
		if !sr.CurrentAt(a.now()) {
			res.Detail = "response outside validity window"
			continue
		}
		switch sr.Status {
		case ocsp.StatusGood:
			res.Status = StatusGood
		case ocsp.StatusRevoked:
			res.Status = StatusRevoked
			res.Detail = fmt.Sprintf("revoked %s (%s)", sr.RevokedAt.Format("2006-01-02"), sr.Reason)
		default:
			res.Status = StatusUnknown
		}
		return res
	}
	return res
}

func (a *Auditor) checkStaple(leaf, issuer *x509x.Certificate, staple []byte) MechanismResult {
	res := MechanismResult{Status: StatusUnavailable, Source: "staple", Bytes: len(staple)}
	resp, err := ocsp.ParseResponse(staple)
	if err != nil {
		res.Detail = err.Error()
		return res
	}
	if resp.RespStatus != ocsp.RespSuccessful {
		res.Detail = resp.RespStatus.String()
		return res
	}
	if err := resp.VerifySignatureFrom(issuer); err != nil {
		res.Detail = err.Error()
		return res
	}
	sr, ok := resp.Find(ocsp.NewCertID(issuer, leaf.SerialNumber))
	if !ok {
		res.Detail = "staple does not cover the leaf"
		return res
	}
	if !sr.CurrentAt(a.now()) {
		res.Detail = "staple outside validity window"
		return res
	}
	switch sr.Status {
	case ocsp.StatusGood:
		res.Status = StatusGood
	case ocsp.StatusRevoked:
		res.Status = StatusRevoked
		res.Detail = fmt.Sprintf("revoked %s (%s)", sr.RevokedAt.Format("2006-01-02"), sr.Reason)
	default:
		res.Status = StatusUnknown
	}
	return res
}

func (a *Auditor) download(url string) ([]byte, error) {
	resp, err := a.httpClient().Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	limit := a.MaxCRLBytes
	if limit <= 0 {
		limit = 128 << 20
	}
	return io.ReadAll(io.LimitReader(resp.Body, limit))
}
