package core

import (
	"math/big"
	"strings"
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/chain"
	"repro/internal/crl"
	"repro/internal/host"
	"repro/internal/ocsp"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/x509x"
)

// auditWorld wires a root+intermediate hierarchy onto a simnet fabric and
// also runs a real TLS server for the live path.
type auditWorld struct {
	t     *testing.T
	clock *simtime.Clock
	net   *simnet.Network
	root  *ca.CA
	inter *ca.CA
}

func newAuditWorld(t *testing.T) *auditWorld {
	t.Helper()
	clock := simtime.NewClock(simtime.Date(2015, time.March, 1))
	net := simnet.New()
	root, err := ca.NewRoot(ca.Config{
		Name: "AuditRoot", CRLBaseURL: "http://crl.aroot.test/crl", OCSPBaseURL: "http://ocsp.aroot.test/ocsp",
		IncludeCRLDP: true, IncludeOCSP: true, Clock: clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	inter, err := ca.NewIntermediate(ca.Config{
		Name: "AuditInter", CRLBaseURL: "http://crl.ainter.test/crl", OCSPBaseURL: "http://ocsp.ainter.test/ocsp",
		IncludeCRLDP: true, IncludeOCSP: true, Clock: clock.Now,
	}, root)
	if err != nil {
		t.Fatal(err)
	}
	net.Register("crl.aroot.test", root.Handler())
	net.Register("ocsp.aroot.test", root.Handler())
	net.Register("crl.ainter.test", inter.Handler())
	net.Register("ocsp.ainter.test", inter.Handler())
	return &auditWorld{t: t, clock: clock, net: net, root: root, inter: inter}
}

func (w *auditWorld) issue(ev bool) (*x509x.Certificate, *ca.Record) {
	w.t.Helper()
	cert, rec, err := w.inter.Issue(ca.IssueOptions{
		CommonName: "audit.site.test",
		NotBefore:  w.clock.Now().AddDate(0, -1, 0),
		NotAfter:   w.clock.Now().AddDate(1, 0, 0),
		EV:         ev,
	})
	if err != nil {
		w.t.Fatal(err)
	}
	return cert, rec
}

func (w *auditWorld) auditor() *Auditor {
	return &Auditor{
		Roots: chain.NewPool(w.root.Certificate()),
		HTTP:  w.net.Client(),
		Now:   w.clock.Now,
	}
}

func (w *auditWorld) chainFor(leaf *x509x.Certificate) []*x509x.Certificate {
	return []*x509x.Certificate{leaf, w.inter.Certificate(), w.root.Certificate()}
}

func TestAuditGoodChain(t *testing.T) {
	w := newAuditWorld(t)
	leaf, _ := w.issue(false)
	report, err := w.auditor().AuditChain("good.test", w.chainFor(leaf), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !report.ChainValid {
		t.Error("chain should validate")
	}
	if report.Verdict() != "good" {
		t.Errorf("verdict = %s\n%s", report.Verdict(), report.Render())
	}
	if len(report.Certs) != 3 {
		t.Fatalf("audited %d certs", len(report.Certs))
	}
	leafAudit := report.Certs[0]
	if leafAudit.CRL.Status != StatusGood || leafAudit.OCSP.Status != StatusGood {
		t.Errorf("leaf mechanisms: crl=%s ocsp=%s", leafAudit.CRL.Status, leafAudit.OCSP.Status)
	}
	if leafAudit.CRL.Bytes == 0 {
		t.Error("CRL bytes not accounted")
	}
	// The root is self-signed and must not be checked.
	rootAudit := report.Certs[2]
	if !rootAudit.SelfSigned || rootAudit.CRL.Status != StatusNoPointer {
		t.Errorf("root audit: %+v", rootAudit)
	}
	if report.TotalBytes == 0 {
		t.Error("no bandwidth accounted")
	}
}

func TestAuditRevokedLeaf(t *testing.T) {
	w := newAuditWorld(t)
	leaf, rec := w.issue(false)
	if err := w.inter.Revoke(rec.Serial, w.clock.Now(), crl.ReasonKeyCompromise); err != nil {
		t.Fatal(err)
	}
	report, err := w.auditor().AuditChain("revoked.test", w.chainFor(leaf), nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict() != "revoked" {
		t.Errorf("verdict = %s", report.Verdict())
	}
	leafAudit := report.Certs[0]
	if leafAudit.CRL.Status != StatusRevoked || leafAudit.OCSP.Status != StatusRevoked {
		t.Errorf("mechanisms: crl=%s ocsp=%s", leafAudit.CRL.Status, leafAudit.OCSP.Status)
	}
	if !strings.Contains(leafAudit.CRL.Detail, "keyCompromise") {
		t.Errorf("detail = %q", leafAudit.CRL.Detail)
	}
	if !report.Certs[0].Revoked() {
		t.Error("Revoked() accessor")
	}
}

func TestAuditRevokedIntermediate(t *testing.T) {
	w := newAuditWorld(t)
	leaf, _ := w.issue(false)
	if err := w.root.Revoke(w.inter.Certificate().SerialNumber, w.clock.Now(), crl.ReasonCACompromise); err != nil {
		t.Fatal(err)
	}
	report, err := w.auditor().AuditChain("badca.test", w.chainFor(leaf), nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict() != "revoked" {
		t.Errorf("verdict = %s", report.Verdict())
	}
	if !report.Certs[1].Revoked() {
		t.Error("intermediate revocation missed")
	}
}

func TestAuditUnavailableInfrastructure(t *testing.T) {
	w := newAuditWorld(t)
	leaf, _ := w.issue(false)
	w.net.SetFailure("crl.ainter.test", simnet.FailUnresponsive)
	w.net.SetFailure("ocsp.ainter.test", simnet.FailUnresponsive)
	report, err := w.auditor().AuditChain("dark.test", w.chainFor(leaf), nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict() != "incomplete" {
		t.Errorf("verdict = %s", report.Verdict())
	}
	leafAudit := report.Certs[0]
	if leafAudit.CRL.Status != StatusUnavailable || leafAudit.OCSP.Status != StatusUnavailable {
		t.Errorf("mechanisms: %s/%s", leafAudit.CRL.Status, leafAudit.OCSP.Status)
	}
}

func TestAuditUntrustedChain(t *testing.T) {
	w := newAuditWorld(t)
	leaf, _ := w.issue(false)
	other, err := ca.NewRoot(ca.Config{Name: "OtherRoot", Clock: w.clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	auditor := w.auditor()
	auditor.Roots = chain.NewPool(other.Certificate())
	report, err := auditor.AuditChain("untrusted.test", w.chainFor(leaf), nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.ChainValid {
		t.Error("chain should not validate against a foreign root")
	}
}

func TestAuditStaple(t *testing.T) {
	w := newAuditWorld(t)
	leaf, rec := w.issue(false)
	signer, key := w.inter.Signer()
	staple, err := ocsp.CreateResponse(&ocsp.ResponseTemplate{
		ProducedAt: w.clock.Now(),
		Responses: []ocsp.SingleResponse{{
			ID: ocsp.NewCertID(signer, rec.Serial), Status: ocsp.StatusGood,
			ThisUpdate: w.clock.Now(), NextUpdate: w.clock.Now().Add(96 * time.Hour),
		}},
	}, signer, key)
	if err != nil {
		t.Fatal(err)
	}
	report, err := w.auditor().AuditChain("stapled.test", w.chainFor(leaf), staple)
	if err != nil {
		t.Fatal(err)
	}
	if !report.StaplePresented || report.Certs[0].Staple.Status != StatusGood {
		t.Errorf("staple audit: presented=%t status=%s", report.StaplePresented, report.Certs[0].Staple.Status)
	}
}

func TestAuditLiveEndToEnd(t *testing.T) {
	// Full path over a real socket: live TLS server with staple,
	// auditor dials, grabs, validates, checks revocation over the
	// simnet fabric.
	w := newAuditWorld(t)
	leafKey, err := x509x.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	cert, rec, err := w.inter.Issue(ca.IssueOptions{
		CommonName: "live.audit.test",
		NotBefore:  w.clock.Now().AddDate(0, -1, 0),
		NotAfter:   w.clock.Now().AddDate(1, 0, 0),
		PublicKey:  &leafKey.PublicKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	signer, key := w.inter.Signer()
	staple, err := ocsp.CreateResponse(&ocsp.ResponseTemplate{
		ProducedAt: w.clock.Now(),
		Responses: []ocsp.SingleResponse{{
			ID: ocsp.NewCertID(signer, rec.Serial), Status: ocsp.StatusGood,
			ThisUpdate: w.clock.Now(), NextUpdate: w.clock.Now().Add(96 * time.Hour),
		}},
	}, signer, key)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := host.NewLiveServer(host.LiveConfig{
		Chain:  [][]byte{cert.Raw, w.inter.Certificate().Raw, w.root.Certificate().Raw},
		Key:    leafKey,
		Staple: staple,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	report, err := w.auditor().Audit(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict() != "good" {
		t.Errorf("verdict = %s\n%s", report.Verdict(), report.Render())
	}
	if !report.StaplePresented {
		t.Error("staple lost on the live path")
	}
	out := report.Render()
	if !strings.Contains(out, "live.audit.test") && !strings.Contains(out, "audit of") {
		t.Errorf("render: %s", out)
	}
}

func TestAuditEmptyChain(t *testing.T) {
	w := newAuditWorld(t)
	if _, err := w.auditor().AuditChain("empty.test", nil, nil); err == nil {
		t.Error("empty chain accepted")
	}
}

func TestAuditDialFailure(t *testing.T) {
	w := newAuditWorld(t)
	auditor := w.auditor()
	auditor.DialTimeout = 300 * time.Millisecond
	if _, err := auditor.Audit("127.0.0.1:1"); err == nil {
		t.Error("audit of closed port should fail")
	}
}

func TestAuditStapleEdgeCases(t *testing.T) {
	w := newAuditWorld(t)
	leaf, rec := w.issue(false)
	signer, key := w.inter.Signer()

	// Staple with unknown status.
	unknownStaple, err := ocsp.CreateResponse(&ocsp.ResponseTemplate{
		ProducedAt: w.clock.Now(),
		Responses: []ocsp.SingleResponse{{
			ID: ocsp.NewCertID(signer, rec.Serial), Status: ocsp.StatusUnknown,
			ThisUpdate: w.clock.Now(), NextUpdate: w.clock.Now().Add(time.Hour),
		}},
	}, signer, key)
	if err != nil {
		t.Fatal(err)
	}
	report, err := w.auditor().AuditChain("unknown-staple.test", w.chainFor(leaf), unknownStaple)
	if err != nil {
		t.Fatal(err)
	}
	if report.Certs[0].Staple.Status != StatusUnknown {
		t.Errorf("staple status = %s", report.Certs[0].Staple.Status)
	}

	// Staple covering the wrong serial.
	wrongStaple, err := ocsp.CreateResponse(&ocsp.ResponseTemplate{
		ProducedAt: w.clock.Now(),
		Responses: []ocsp.SingleResponse{{
			ID: ocsp.NewCertID(signer, big.NewInt(999999)), Status: ocsp.StatusGood,
			ThisUpdate: w.clock.Now(),
		}},
	}, signer, key)
	if err != nil {
		t.Fatal(err)
	}
	report, err = w.auditor().AuditChain("wrong-staple.test", w.chainFor(leaf), wrongStaple)
	if err != nil {
		t.Fatal(err)
	}
	if report.Certs[0].Staple.Status != StatusUnavailable {
		t.Errorf("mismatched staple status = %s", report.Certs[0].Staple.Status)
	}

	// Expired staple.
	staleStaple, err := ocsp.CreateResponse(&ocsp.ResponseTemplate{
		ProducedAt: w.clock.Now().Add(-10 * 24 * time.Hour),
		Responses: []ocsp.SingleResponse{{
			ID: ocsp.NewCertID(signer, rec.Serial), Status: ocsp.StatusGood,
			ThisUpdate: w.clock.Now().Add(-10 * 24 * time.Hour),
			NextUpdate: w.clock.Now().Add(-9 * 24 * time.Hour),
		}},
	}, signer, key)
	if err != nil {
		t.Fatal(err)
	}
	report, err = w.auditor().AuditChain("stale-staple.test", w.chainFor(leaf), staleStaple)
	if err != nil {
		t.Fatal(err)
	}
	if report.Certs[0].Staple.Status != StatusUnavailable {
		t.Errorf("stale staple status = %s", report.Certs[0].Staple.Status)
	}
	// Garbage staple bytes.
	report, err = w.auditor().AuditChain("garbage-staple.test", w.chainFor(leaf), []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if report.Certs[0].Staple.Status != StatusUnavailable {
		t.Errorf("garbage staple status = %s", report.Certs[0].Staple.Status)
	}
}

func TestCertAuditAccessors(t *testing.T) {
	w := newAuditWorld(t)
	leaf, _ := w.issue(true)
	report, err := w.auditor().AuditChain("acc.test", w.chainFor(leaf), nil)
	if err != nil {
		t.Fatal(err)
	}
	leafAudit := report.Certs[0]
	if !leafAudit.Checkable() {
		t.Error("leaf with pointers should be checkable")
	}
	if !leafAudit.EV {
		t.Error("EV flag lost")
	}
	rootAudit := report.Certs[2]
	if rootAudit.Checkable() {
		t.Error("pointer-less root should not be checkable")
	}
	out := report.Render()
	if !strings.Contains(out, "EV") || !strings.Contains(out, "CA") {
		t.Errorf("render flags missing:\n%s", out)
	}
}
