// Package crlbench holds the CRL data-path benchmark bodies shared by the
// repo-wide `go test -bench` harness and cmd/benchcrl (which runs them
// in-process to produce and check BENCH_pr4.json). One World is built per
// process: a signing CA, a Heartbleed-scale raw CRL for the parse path,
// and an entry set for the re-sign and ingest paths.
package crlbench

import (
	"crypto/ecdsa"
	"fmt"
	"math/big"
	"testing"
	"time"

	"repro/internal/crawler"
	"repro/internal/crl"
	"repro/internal/revdb"
	"repro/internal/simtime"
	"repro/internal/x509x"
)

// HeartbleedEntries is the parse-path list size: the order of GlobalSign's
// post-Heartbleed mass revocation (§4, the CloudFlare incident).
const HeartbleedEntries = 500000

// ResignEntries is the re-sign and ingest list size.
const ResignEntries = 100000

// World is the shared benchmark fixture.
type World struct {
	Issuer *x509x.Certificate
	Key    *ecdsa.PrivateKey
	// Entries is the ResignEntries-sized entry list.
	Entries []crl.Entry
	// HeartbleedRaw is a signed CRL with HeartbleedEntries entries.
	HeartbleedRaw []byte

	thisUpdate time.Time
}

// New builds the fixture. parseN and resignN default to the package
// constants when zero (tests pass smaller sizes).
func New(parseN, resignN int) (*World, error) {
	if parseN == 0 {
		parseN = HeartbleedEntries
	}
	if resignN == 0 {
		resignN = ResignEntries
	}
	key, err := x509x.GenerateKey()
	if err != nil {
		return nil, err
	}
	thisUpdate := simtime.Date(2014, time.April, 16) // the Heartbleed spike
	tmpl := x509x.NewTemplate(big.NewInt(1),
		x509x.Name{CommonName: "Bench CRL CA", Organization: "Bench"},
		thisUpdate.AddDate(-1, 0, 0), thisUpdate.AddDate(5, 0, 0))
	tmpl.IsCA = true
	tmpl.KeyUsage = x509x.KeyUsageCertSign | x509x.KeyUsageCRLSign
	rawCert, err := x509x.Create(tmpl, nil, key, &key.PublicKey)
	if err != nil {
		return nil, err
	}
	issuer, err := x509x.Parse(rawCert)
	if err != nil {
		return nil, err
	}
	w := &World{Issuer: issuer, Key: key, thisUpdate: thisUpdate}
	w.Entries = makeEntries(resignN, thisUpdate)
	raw, err := crl.Create(&crl.Template{
		ThisUpdate: thisUpdate,
		NextUpdate: thisUpdate.AddDate(0, 0, 1),
		Number:     big.NewInt(1),
		Entries:    makeEntries(parseN, thisUpdate),
	}, issuer, key)
	if err != nil {
		return nil, err
	}
	w.HeartbleedRaw = raw
	return w, nil
}

func makeEntries(n int, at time.Time) []crl.Entry {
	entries := make([]crl.Entry, n)
	reasons := []crl.Reason{crl.ReasonAbsent, crl.ReasonUnspecified, crl.ReasonKeyCompromise, crl.ReasonSuperseded}
	for i := range entries {
		entries[i] = crl.Entry{
			// Spread serial widths like real CAs do (§5's per-CA entry
			// size variance): 4-to-9-byte magnitudes.
			Serial:    big.NewInt(int64(i)*2654435761 + 1000003).Bytes(),
			RevokedAt: at.Add(-time.Duration(i%72) * time.Hour),
			Reason:    reasons[i%4],
		}
	}
	return entries
}

// BenchParse measures the eager streaming parse of the Heartbleed-scale
// CRL.
func (w *World) BenchParse(b *testing.B) {
	b.SetBytes(int64(len(w.HeartbleedRaw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := crl.Parse(w.HeartbleedRaw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchVisit measures the streaming visitor over the Heartbleed-scale CRL
// (no entry slice retained at all).
func (w *World) BenchVisit(b *testing.B) {
	b.SetBytes(int64(len(w.HeartbleedRaw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := crl.Visit(w.HeartbleedRaw, func(e crl.Entry) error {
			n++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("no entries visited")
		}
	}
}

// BenchIncrementalResign measures the steady-state daily re-sign: the
// entry list is unchanged since the last signing, so the append-only
// encode cache reduces the op to header assembly plus one signature. The
// pre-PR path re-encoded every entry on every signing.
func (w *World) BenchIncrementalResign(b *testing.B) {
	var ec crl.EncodeCache
	if _, err := ec.Extend(w.Entries); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entriesDER, err := ec.Extend(w.Entries)
		if err != nil {
			b.Fatal(err)
		}
		_, err = crl.CreateEncoded(&crl.Template{
			ThisUpdate: w.thisUpdate.AddDate(0, 0, i+1),
			NextUpdate: w.thisUpdate.AddDate(0, 0, i+2),
			Number:     big.NewInt(int64(i) + 2),
		}, entriesDER, w.Issuer, w.Key)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchIngestResigned measures revdb ingest of a re-signed CRL: same
// entries, new *crl.CRL object each day, so the database must walk every
// entry but add none. The pre-PR path built a url+serial key string per
// entry; the interned per-URL index makes the walk allocation-free.
func (w *World) BenchIngestResigned(b *testing.B) {
	const url = "http://crl.bench.test/heartbleed.crl"
	db := revdb.New()
	day := simtime.CrawlStart
	db.IngestSnapshot(&crawler.Snapshot{
		Day:  day,
		CRLs: map[string]*crl.CRL{url: {Entries: w.Entries}},
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		added := db.IngestSnapshot(&crawler.Snapshot{
			Day:  day.AddDate(0, 0, i+1),
			CRLs: map[string]*crl.CRL{url: {Entries: w.Entries}},
		})
		if added != 0 {
			b.Fatalf("re-signed ingest added %d entries", added)
		}
	}
}

// Benchmarks returns the named benchmark bodies in a stable order.
func (w *World) Benchmarks() []struct {
	Name string
	Fn   func(*testing.B)
} {
	return []struct {
		Name string
		Fn   func(*testing.B)
	}{
		{"CRLParseHeartbleedScale", w.BenchParse},
		{"CRLVisitHeartbleedScale", w.BenchVisit},
		{"CRLIncrementalResign", w.BenchIncrementalResign},
		{"RevDBIngestResigned", w.BenchIngestResigned},
	}
}

// Describe returns a one-line fixture summary for logs.
func (w *World) Describe() string {
	return fmt.Sprintf("parse CRL: %d bytes, resign/ingest entries: %d",
		len(w.HeartbleedRaw), len(w.Entries))
}
