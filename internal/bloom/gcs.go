package bloom

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"math/bits"
	"sort"
)

// GCS is a Golomb-compressed set: the sorted hashes of n items mapped into
// [0, n·P) and delta-encoded with Golomb-Rice codes. Queries decode the
// whole stream (CRLSet-style payloads are small enough that this is what
// Chromium's own GCS sketch does); membership has false-positive rate
// ~1/P and no false negatives.
type GCS struct {
	data []byte
	n    uint64
	p    uint64 // inverse false-positive rate, a power of two
	rice uint   // Rice parameter log2(p)
}

// BuildGCS constructs a set over items with inverse false-positive rate
// invFPR (rounded up to a power of two).
func BuildGCS(items [][]byte, invFPR uint64) *GCS {
	if invFPR < 2 {
		invFPR = 2
	}
	p := uint64(1) << uint(bits.Len64(invFPR-1)) // next power of two
	n := uint64(len(items))
	g := &GCS{n: n, p: p, rice: uint(bits.TrailingZeros64(p))}
	if n == 0 {
		return g
	}
	domain := n * p
	hashes := make([]uint64, 0, n)
	for _, item := range items {
		hashes = append(hashes, gcsHash(item)%domain)
	}
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })

	w := &bitWriter{}
	var prev uint64
	for _, h := range hashes {
		delta := h - prev
		prev = h
		// Rice code: quotient in unary, remainder in rice bits.
		q := delta >> g.rice
		for ; q > 0; q-- {
			w.writeBit(1)
		}
		w.writeBit(0)
		w.writeBits(delta&(p-1), g.rice)
	}
	g.data = w.bytes()
	return g
}

func gcsHash(item []byte) uint64 {
	sum := sha256.Sum256(item)
	return binary.BigEndian.Uint64(sum[:8])
}

// Contains reports whether item may be in the set.
func (g *GCS) Contains(item []byte) bool {
	if g.n == 0 {
		return false
	}
	target := gcsHash(item) % (g.n * g.p)
	r := &bitReader{data: g.data}
	var cur uint64
	for i := uint64(0); i < g.n; i++ {
		var q uint64
		for {
			b, ok := r.readBit()
			if !ok {
				return false
			}
			if b == 0 {
				break
			}
			q++
		}
		rem, ok := r.readBits(g.rice)
		if !ok {
			return false
		}
		cur += q<<g.rice | rem
		if cur == target {
			return true
		}
		if cur > target {
			return false
		}
	}
	return false
}

// N returns the number of encoded items.
func (g *GCS) N() int { return int(g.n) }

// SizeBytes returns the encoded payload size.
func (g *GCS) SizeBytes() int { return len(g.data) }

// FalsePositiveRate returns the design rate 1/P.
func (g *GCS) FalsePositiveRate() float64 { return 1 / float64(g.p) }

// BitsPerEntry reports the achieved storage cost; the theoretical optimum
// is log2(P) + ~1.5 bits.
func (g *GCS) BitsPerEntry() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(len(g.data)*8) / float64(g.n)
}

// TheoreticalGCSBits returns the expected bits/entry of a GCS at inverse
// false-positive rate p, versus a Bloom filter's 1.44·log2(p).
func TheoreticalGCSBits(invFPR float64) float64 {
	return math.Log2(invFPR) + 1.5
}

type bitWriter struct {
	buf  []byte
	nbit uint
}

func (w *bitWriter) writeBit(b uint64) {
	if w.nbit%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b != 0 {
		w.buf[len(w.buf)-1] |= 1 << (7 - w.nbit%8)
	}
	w.nbit++
}

func (w *bitWriter) writeBits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.writeBit((v >> uint(i)) & 1)
	}
}

func (w *bitWriter) bytes() []byte { return w.buf }

type bitReader struct {
	data []byte
	pos  uint
}

func (r *bitReader) readBit() (uint64, bool) {
	if r.pos >= uint(len(r.data))*8 {
		return 0, false
	}
	b := (r.data[r.pos/8] >> (7 - r.pos%8)) & 1
	r.pos++
	return uint64(b), true
}

func (r *bitReader) readBits(n uint) (uint64, bool) {
	var v uint64
	for i := uint(0); i < n; i++ {
		b, ok := r.readBit()
		if !ok {
			return 0, false
		}
		v = v<<1 | b
	}
	return v, true
}
