package bloom

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func item(i int) []byte { return []byte(fmt.Sprintf("serial-%d", i)) }

func TestNoFalseNegatives(t *testing.T) {
	f := NewOptimal(32<<10, 10000)
	for i := 0; i < 10000; i++ {
		f.Add(item(i))
	}
	for i := 0; i < 10000; i++ {
		if !f.Contains(item(i)) {
			t.Fatalf("false negative for %d", i)
		}
	}
	if f.N() != 10000 {
		t.Errorf("N = %d", f.N())
	}
}

func TestFalsePositiveRateNearTheory(t *testing.T) {
	const n = 20000
	f := NewOptimal(32<<10, n) // 32 KB for 20k entries
	for i := 0; i < n; i++ {
		f.Add(item(i))
	}
	theory := f.FalsePositiveRate()
	fp := 0
	const probes = 50000
	for i := 0; i < probes; i++ {
		if f.Contains(item(n + i)) {
			fp++
		}
	}
	measured := float64(fp) / probes
	if measured > theory*1.6+0.001 || (theory > 0.001 && measured < theory*0.4) {
		t.Errorf("measured FPR %.5f vs theoretical %.5f", measured, theory)
	}
}

func TestOptimalK(t *testing.T) {
	// m/n = 10 bits/entry → k ≈ 7.
	if k := OptimalK(100000, 10000); k != 7 {
		t.Errorf("OptimalK(10 bits/entry) = %d, want 7", k)
	}
	if k := OptimalK(8, 1000000); k != 1 {
		t.Errorf("overloaded filter k = %d, want 1", k)
	}
	if k := OptimalK(100, 0); k != 1 {
		t.Errorf("n=0 k = %d", k)
	}
}

func TestEstimateFPRMonotone(t *testing.T) {
	// More entries → higher FPR; bigger filter → lower FPR.
	if EstimateFPR(1<<20, 1000, 7) >= EstimateFPR(1<<20, 100000, 7) {
		t.Error("FPR should grow with n")
	}
	if EstimateFPR(1<<22, 50000, 7) >= EstimateFPR(1<<19, 50000, 7) {
		t.Error("FPR should shrink with m")
	}
	if EstimateFPR(1<<20, 0, 7) != 0 {
		t.Error("empty filter should have zero FPR")
	}
}

func TestCapacityAtFPR(t *testing.T) {
	// The paper's headline: a 256 KB filter at 1% FPR holds an order of
	// magnitude more than CRLSet's ~25k entries.
	n := CapacityAtFPR(256*1024*8, 0.01)
	if n < 150000 || n > 250000 {
		t.Errorf("256KB @ 1%% capacity = %d, want ~218k", n)
	}
	// 2 MB covers ~1.7M revocations (§7.4).
	n2 := CapacityAtFPR(2*1024*1024*8, 0.01)
	if n2 < 1500000 || n2 > 2000000 {
		t.Errorf("2MB @ 1%% capacity = %d, want ~1.7M", n2)
	}
	defer func() {
		if recover() == nil {
			t.Error("p=0 accepted")
		}
	}()
	CapacityAtFPR(8, 0)
}

func TestMarshalRoundTrip(t *testing.T) {
	f := NewOptimal(1024, 500)
	for i := 0; i < 500; i++ {
		f.Add(item(i))
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Filter
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.MBits() != f.MBits() || g.K() != f.K() || g.N() != f.N() {
		t.Errorf("parameters differ after round trip")
	}
	for i := 0; i < 500; i++ {
		if !g.Contains(item(i)) {
			t.Fatalf("false negative after round trip: %d", i)
		}
	}
	// Corrupted inputs.
	for name, b := range map[string][]byte{
		"short":     data[:10],
		"bad magic": append([]byte("XXXX"), data[4:]...),
		"truncated": data[:len(data)-8],
	} {
		var h Filter
		if err := h.UnmarshalBinary(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestNewPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero bits": func() { New(0, 3) },
		"zero k":    func() { New(100, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: anything added is always found (no false negatives, ever).
func TestNoFalseNegativesProperty(t *testing.T) {
	f := func(items [][]byte) bool {
		bl := New(4096, 5)
		for _, it := range items {
			bl.Add(it)
		}
		for _, it := range items {
			if !bl.Contains(it) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGCSNoFalseNegatives(t *testing.T) {
	var items [][]byte
	for i := 0; i < 5000; i++ {
		items = append(items, item(i))
	}
	g := BuildGCS(items, 1024)
	for i := 0; i < 5000; i++ {
		if !g.Contains(item(i)) {
			t.Fatalf("GCS false negative for %d", i)
		}
	}
	if g.N() != 5000 {
		t.Errorf("N = %d", g.N())
	}
}

func TestGCSFalsePositiveRate(t *testing.T) {
	var items [][]byte
	const n = 2000
	for i := 0; i < n; i++ {
		items = append(items, item(i))
	}
	g := BuildGCS(items, 64)
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if g.Contains(item(n + i)) {
			fp++
		}
	}
	measured := float64(fp) / probes
	design := g.FalsePositiveRate()
	if measured > design*2+0.002 {
		t.Errorf("GCS measured FPR %.6f vs design %.6f", measured, design)
	}
	if measured < design/4 {
		t.Errorf("GCS measured FPR %.6f implausibly below design %.6f", measured, design)
	}
}

func TestGCSBeatsBloomOnSize(t *testing.T) {
	// The §7.4 follow-up: at equal FPR, GCS should use fewer bits per
	// entry than a Bloom filter (1.44·log2(1/p) vs log2(1/p)+1.5).
	var items [][]byte
	const n = 20000
	for i := 0; i < n; i++ {
		items = append(items, item(i))
	}
	const invP = 1024 // p ≈ 0.1%
	g := BuildGCS(items, invP)

	bloomBits := 1.44 * math.Log2(invP) * n
	gcsBits := float64(g.SizeBytes() * 8)
	if gcsBits >= bloomBits {
		t.Errorf("GCS %d bits should beat Bloom %.0f bits", int(gcsBits), bloomBits)
	}
	if bpe := g.BitsPerEntry(); bpe > TheoreticalGCSBits(invP)+1 {
		t.Errorf("GCS bits/entry %.2f exceeds theory %.2f", bpe, TheoreticalGCSBits(invP))
	}
}

func TestGCSEmpty(t *testing.T) {
	g := BuildGCS(nil, 256)
	if g.Contains(item(1)) {
		t.Error("empty GCS contains something")
	}
	if g.SizeBytes() != 0 || g.BitsPerEntry() != 0 {
		t.Error("empty GCS size accounting")
	}
}

func TestGCSSmallInvFPRClamped(t *testing.T) {
	g := BuildGCS([][]byte{item(1)}, 0)
	if !g.Contains(item(1)) {
		t.Error("clamped GCS lost its item")
	}
	if g.FalsePositiveRate() > 0.5 {
		t.Errorf("FPR = %v", g.FalsePositiveRate())
	}
}
