package bloom_test

import (
	"fmt"

	"repro/internal/bloom"
)

// A 256 KB Bloom filter — the CRLSet's byte budget — holds two hundred
// thousand revocations at ~1% false positives, where the CRLSet's exact
// serial list holds ~25k (§7.4).
func ExampleFilter() {
	f := bloom.NewOptimal(256<<10, 200_000)
	for i := 0; i < 200_000; i++ {
		f.Add([]byte(fmt.Sprintf("revoked-serial-%d", i)))
	}
	fmt.Println("holds:", f.N())
	fmt.Println("false negatives possible:", false)
	fmt.Println("contains revoked-serial-7:", f.Contains([]byte("revoked-serial-7")))
	fmt.Printf("theoretical FPR under 1%%: %t\n", f.FalsePositiveRate() < 0.01)
	// Output:
	// holds: 200000
	// false negatives possible: false
	// contains revoked-serial-7: true
	// theoretical FPR under 1%: true
}

func ExampleCapacityAtFPR() {
	fmt.Println(bloom.CapacityAtFPR(256*1024*8, 0.01))
	// Output: 218793
}

func ExampleBuildGCS() {
	items := [][]byte{[]byte("serial-a"), []byte("serial-b"), []byte("serial-c")}
	g := bloom.BuildGCS(items, 1024)
	fmt.Println("members found:", g.Contains(items[0]), g.Contains(items[1]), g.Contains(items[2]))
	fmt.Println("entries:", g.N())
	// Output:
	// members found: true true true
	// entries: 3
}
