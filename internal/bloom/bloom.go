// Package bloom implements the probabilistic set structures §7.4 proposes
// for disseminating revocations: a Bloom filter with optimal hash-count
// sizing (no false negatives, tunable false positives), and the
// Golomb-compressed set (GCS) variant Langley suggested, which approaches
// the information-theoretic lower bound of log2(1/p) bits per entry where
// the Bloom filter needs 1.44×log2(1/p).
package bloom

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Filter is a Bloom filter. Construct with New or NewOptimal.
type Filter struct {
	bits []uint64
	m    uint64 // number of bits
	k    int    // hash functions
	n    int    // inserted elements
}

// New creates a filter with m bits and k hash functions.
func New(mBits uint64, k int) *Filter {
	if mBits == 0 || k <= 0 {
		panic("bloom: filter needs positive size and hash count")
	}
	return &Filter{
		bits: make([]uint64, (mBits+63)/64),
		m:    mBits,
		k:    k,
	}
}

// OptimalK returns the false-positive-minimizing hash count for a filter
// of mBits holding n elements: ceil(m/n · ln 2) — the formula the paper
// uses in §7.4.
func OptimalK(mBits uint64, n int) int {
	if n <= 0 {
		return 1
	}
	k := int(math.Ceil(float64(mBits) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return k
}

// NewOptimal creates a filter of mBytes bytes sized for expectedN
// insertions with the optimal hash count.
func NewOptimal(mBytes int, expectedN int) *Filter {
	mBits := uint64(mBytes) * 8
	return New(mBits, OptimalK(mBits, expectedN))
}

// hashPair derives two independent 64-bit hashes of item; probe i uses
// h1 + i·h2 (Kirsch–Mitzenmacher double hashing).
func hashPair(item []byte) (uint64, uint64) {
	sum := sha256.Sum256(item)
	h1 := binary.BigEndian.Uint64(sum[0:8])
	h2 := binary.BigEndian.Uint64(sum[8:16]) | 1 // odd, to cover all residues
	return h1, h2
}

// Add inserts item.
func (f *Filter) Add(item []byte) {
	h1, h2 := hashPair(item)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.m
		f.bits[bit/64] |= 1 << (bit % 64)
	}
	f.n++
}

// Contains reports whether item may be in the set. False positives occur
// at roughly FalsePositiveRate; false negatives never do.
func (f *Filter) Contains(item []byte) bool {
	h1, h2 := hashPair(item)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.m
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// N returns the number of inserted elements.
func (f *Filter) N() int { return f.n }

// K returns the hash count.
func (f *Filter) K() int { return f.k }

// MBits returns the filter size in bits.
func (f *Filter) MBits() uint64 { return f.m }

// SizeBytes returns the serialized payload size (bit array only).
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// FalsePositiveRate returns the theoretical rate for the current fill:
// (1 - e^(-kn/m))^k.
func (f *Filter) FalsePositiveRate() float64 {
	return EstimateFPR(f.m, f.n, f.k)
}

// EstimateFPR computes the theoretical false-positive rate of an m-bit
// filter with n elements and k hashes — the quantity plotted on Figure
// 11's y-axis.
func EstimateFPR(mBits uint64, n, k int) float64 {
	if n == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(k)*float64(n)/float64(mBits)), float64(k))
}

// CapacityAtFPR returns the largest n an m-bit filter can hold while
// keeping its (optimally-hashed) false-positive rate at or below p.
func CapacityAtFPR(mBits uint64, p float64) int {
	if p <= 0 || p >= 1 {
		panic("bloom: p must be in (0,1)")
	}
	// m/n = -log2(p)/ln2  =>  n = m·ln2²/(-ln p)
	n := float64(mBits) * math.Ln2 * math.Ln2 / (-math.Log(p))
	return int(n)
}

const filterMagic = "BLM1"

// MarshalBinary serializes the filter.
func (f *Filter) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 4+8+4+4+len(f.bits)*8)
	out = append(out, filterMagic...)
	out = binary.BigEndian.AppendUint64(out, f.m)
	out = binary.BigEndian.AppendUint32(out, uint32(f.k))
	out = binary.BigEndian.AppendUint32(out, uint32(f.n))
	for _, w := range f.bits {
		out = binary.BigEndian.AppendUint64(out, w)
	}
	return out, nil
}

// UnmarshalBinary deserializes a filter produced by MarshalBinary.
func (f *Filter) UnmarshalBinary(data []byte) error {
	if len(data) < 20 || string(data[:4]) != filterMagic {
		return errors.New("bloom: bad filter header")
	}
	m := binary.BigEndian.Uint64(data[4:12])
	k := int(binary.BigEndian.Uint32(data[12:16]))
	n := int(binary.BigEndian.Uint32(data[16:20]))
	words := int((m + 63) / 64)
	if len(data) != 20+words*8 {
		return fmt.Errorf("bloom: filter body %d bytes, want %d", len(data)-20, words*8)
	}
	if m == 0 || k <= 0 {
		return errors.New("bloom: invalid parameters")
	}
	f.m, f.k, f.n = m, k, n
	f.bits = make([]uint64, words)
	for i := range f.bits {
		f.bits[i] = binary.BigEndian.Uint64(data[20+i*8:])
	}
	return nil
}
