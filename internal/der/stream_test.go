package der

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestCursorWalksSequence(t *testing.T) {
	raw := Sequence(Int(1), Int(2), OctetString([]byte("abc")), Sequence(Int(3)))
	top, _, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	c, err := top.SequenceCursor()
	if err != nil {
		t.Fatal(err)
	}
	var tags []int
	for c.More() {
		v, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		tags = append(tags, v.Tag)
	}
	want := []int{TagInteger, TagInteger, TagOctetString, TagSequence}
	if len(tags) != len(want) {
		t.Fatalf("tags = %v", tags)
	}
	for i := range want {
		if tags[i] != want[i] {
			t.Fatalf("tags = %v, want %v", tags, want)
		}
	}
	n, err := top.NumChildren()
	if err != nil || n != 4 {
		t.Fatalf("NumChildren = %d, %v", n, err)
	}
}

func TestCursorRejectsNonSequence(t *testing.T) {
	raw := Int(5)
	top, _, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := top.SequenceCursor(); err == nil {
		t.Error("cursor over a primitive INTEGER should fail")
	}
}

// Cursor iteration must agree with the materializing Children on every
// constructed value, including truncated/garbled ones.
func TestCursorMatchesChildren(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seed := Sequence(Int(1), Sequence(Int(2), Int(3)), OctetString([]byte{1, 2, 3, 4}))
	for i := 0; i < 5000; i++ {
		data := append([]byte(nil), seed...)
		for flips := rng.Intn(4) + 1; flips > 0; flips-- {
			data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
		}
		top, _, err := Parse(data)
		if err != nil || !top.Constructed {
			continue
		}
		kids, kerr := top.Children()
		var cursorKids []Value
		var cerr error
		c := Cursor{rest: top.Content}
		for c.More() {
			v, err := c.Next()
			if err != nil {
				cerr = err
				break
			}
			cursorKids = append(cursorKids, v)
		}
		if (kerr == nil) != (cerr == nil) {
			t.Fatalf("Children err %v, Cursor err %v on %x", kerr, cerr, data)
		}
		if kerr != nil {
			continue
		}
		if len(kids) != len(cursorKids) {
			t.Fatalf("Children %d, Cursor %d on %x", len(kids), len(cursorKids), data)
		}
		for j := range kids {
			if !bytes.Equal(kids[j].Full, cursorKids[j].Full) {
				t.Fatalf("child %d differs on %x", j, data)
			}
		}
	}
}

func TestIntegerBytes(t *testing.T) {
	cases := []struct {
		val  *big.Int
		neg  bool
		want []byte
	}{
		{big.NewInt(0), false, []byte{}},
		{big.NewInt(1), false, []byte{1}},
		{big.NewInt(127), false, []byte{127}},
		{big.NewInt(128), false, []byte{128}},
		{big.NewInt(256), false, []byte{1, 0}},
		{new(big.Int).Lsh(big.NewInt(1), 64), false, append([]byte{1}, make([]byte, 8)...)},
		{big.NewInt(-1), true, nil},
		{big.NewInt(-129), true, nil},
	}
	for _, tc := range cases {
		raw := Integer(tc.val)
		top, _, err := Parse(raw)
		if err != nil {
			t.Fatal(err)
		}
		mag, neg, err := top.IntegerBytes()
		if err != nil {
			t.Fatalf("IntegerBytes(%v): %v", tc.val, err)
		}
		if neg != tc.neg {
			t.Errorf("IntegerBytes(%v) neg = %v", tc.val, neg)
		}
		if !tc.neg && !bytes.Equal(mag, tc.want) {
			t.Errorf("IntegerBytes(%v) = %x, want %x", tc.val, mag, tc.want)
		}
		// Non-negative magnitudes must equal big.Int.Bytes().
		if !tc.neg && !bytes.Equal(mag, tc.val.Bytes()) {
			t.Errorf("IntegerBytes(%v) = %x, big.Bytes = %x", tc.val, mag, tc.val.Bytes())
		}
	}
}

// IntegerBytes must accept exactly what Integer accepts.
func TestIntegerBytesParityProperty(t *testing.T) {
	f := func(content []byte) bool {
		if len(content) > 40 {
			content = content[:40]
		}
		raw := append([]byte{byte(TagInteger), byte(len(content))}, content...)
		top, _, err := Parse(raw)
		if err != nil {
			return true
		}
		i, ierr := top.Integer()
		mag, neg, berr := top.IntegerBytes()
		if (ierr == nil) != (berr == nil) {
			return false
		}
		if ierr != nil {
			return true
		}
		if neg != (i.Sign() < 0) {
			return false
		}
		if !neg && !bytes.Equal(mag, i.Bytes()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

// The fast timestamp decoder must agree with the time.Parse-based slow
// path on every input: same accept/reject, same instant.
func TestTimeFastPathParity(t *testing.T) {
	check := func(raw []byte) {
		top, _, err := Parse(raw)
		if err != nil {
			return
		}
		fast, ferr := top.Time()
		slow, serr := top.timeSlow()
		if (ferr == nil) != (serr == nil) {
			t.Fatalf("%x: fast err %v, slow err %v", raw, ferr, serr)
		}
		if ferr == nil && !fast.Equal(slow) {
			t.Fatalf("%x: fast %v, slow %v", raw, fast, slow)
		}
	}
	// Canonical encodings across the calendar, both time types.
	times := []time.Time{
		time.Date(1950, 1, 1, 0, 0, 0, 0, time.UTC),
		time.Date(1999, 12, 31, 23, 59, 59, 0, time.UTC),
		time.Date(2014, 10, 2, 12, 30, 45, 0, time.UTC),
		time.Date(2049, 12, 31, 23, 59, 59, 0, time.UTC),
		time.Date(2050, 1, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2100, 6, 15, 6, 7, 8, 0, time.UTC),
	}
	for _, tm := range times {
		check(Time(tm))
	}
	// Hand-built malformed and boundary contents through both tags.
	contents := []string{
		"", "Z", "141002123045Z", "141002123045", "141332123045Z",
		"140931123045Z", "140229123045Z", "120229123045Z", "141002243045Z",
		"141002126045Z", "141002123060Z", "20141002123045Z", "99991231235959Z",
		"00000101000000Z", "20140229123045Z", "20120229123045Z", "141002123045z",
		"14100212304 Z", "+41002123045Z", "1410021230456Z",
	}
	for _, c := range contents {
		for _, tag := range []int{TagUTCTime, TagGeneralizedTime} {
			raw := append([]byte{byte(tag), byte(len(c))}, c...)
			check(raw)
		}
	}
	// Random mutations of valid encodings.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20000; i++ {
		raw := append([]byte(nil), Time(times[rng.Intn(len(times))])...)
		for flips := rng.Intn(3) + 1; flips > 0; flips-- {
			raw[rng.Intn(len(raw))] ^= byte(1 << rng.Intn(8))
		}
		check(raw)
	}
}

func TestCursorZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	raw := Sequence(Int(1), Int(2), Int(3), OctetString([]byte("xyz")))
	top, _, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		c, err := top.SequenceCursor()
		if err != nil {
			t.Fatal(err)
		}
		for c.More() {
			v, err := c.Next()
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := v.IntegerBytes(); err != nil {
				if _, err := v.OctetString(); err != nil {
					t.Fatal(err)
				}
			}
		}
	})
	if allocs != 0 {
		t.Errorf("cursor walk allocated %.0f times, want 0", allocs)
	}
}

func TestTimeFastPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	raw := Time(time.Date(2014, 10, 2, 12, 30, 45, 0, time.UTC))
	top, _, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := top.Time(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("fast time decode allocated %.0f times, want 0", allocs)
	}
}
