//go:build race

package der

// raceEnabled gates allocation-count assertions: the race detector
// inhibits inlining/escape optimizations and perturbs sync.Pool, so
// testing.AllocsPerRun numbers are not meaningful under -race.
const raceEnabled = true
