package der

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// FuzzParse: the strict DER parser must reject or accept arbitrary bytes
// without ever panicking — a crawler feeds it whatever the network serves.
func FuzzParse(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x30, 0x00})
	f.Add(Sequence(Int(1), PrintableString("x")))
	f.Add([]byte{0x30, 0x84, 0xff, 0xff, 0xff, 0xff})
	f.Add(EncodeOID(MustOID("2.5.29.31")))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, rest, err := Parse(data)
		if err != nil {
			return
		}
		if len(v.Full)+len(rest) != len(data) {
			t.Fatalf("length accounting: %d + %d != %d", len(v.Full), len(rest), len(data))
		}
		// Exercising the typed decoders must not panic either.
		v.Integer()
		v.OID()
		v.Bool()
		v.Time()
		v.BitString()
		v.NamedBits()
		v.OctetString()
		v.DecodeString()
		v.Enumerated()
		if v.Constructed {
			v.Children()
		}
	})
}

// TestParseNeverPanicsOnMutations corrupts valid encodings at random
// positions: every mutation must parse cleanly or error, never panic, and
// successful parses must account for every byte.
func TestParseNeverPanicsOnMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	seed := Sequence(
		Int(123456),
		Sequence(EncodeOID(MustOID("1.2.840.10045.4.3.2"))),
		PrintableString("mutation target"),
		BitString([]byte{1, 2, 3, 4, 5, 6, 7, 8}),
		Explicit(3, Sequence(Bool(true), Null())),
	)
	for i := 0; i < 20000; i++ {
		data := append([]byte(nil), seed...)
		for flips := rng.Intn(4) + 1; flips > 0; flips-- {
			data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
		}
		if rng.Intn(4) == 0 {
			data = data[:rng.Intn(len(data))]
		}
		vals, err := ParseAll(data)
		if err != nil {
			continue
		}
		total := 0
		for _, v := range vals {
			total += len(v.Full)
		}
		if total != len(data) {
			t.Fatalf("mutation %d: parsed %d of %d bytes", i, total, len(data))
		}
	}
}

// Property: random byte strings never panic the parser.
func TestParseRandomBytesProperty(t *testing.T) {
	f := func(data []byte) bool {
		Parse(data)
		ParseAll(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
