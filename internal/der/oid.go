package der

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// OID is an ASN.1 object identifier.
type OID []uint32

// String renders the OID in dotted-decimal form.
func (o OID) String() string {
	var sb strings.Builder
	for i, arc := range o {
		if i > 0 {
			sb.WriteByte('.')
		}
		sb.WriteString(strconv.FormatUint(uint64(arc), 10))
	}
	return sb.String()
}

// Equal reports whether two OIDs are identical.
func (o OID) Equal(other OID) bool {
	if len(o) != len(other) {
		return false
	}
	for i := range o {
		if o[i] != other[i] {
			return false
		}
	}
	return true
}

// ParseOID parses a dotted-decimal OID string.
func ParseOID(s string) (OID, error) {
	if s == "" {
		return nil, errors.New("der: empty OID")
	}
	parts := strings.Split(s, ".")
	if len(parts) < 2 {
		return nil, fmt.Errorf("der: OID %q needs at least two arcs", s)
	}
	out := make(OID, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("der: OID %q: bad arc %q", s, p)
		}
		out[i] = uint32(v)
	}
	return out, nil
}

// MustOID parses a dotted-decimal OID and panics on error; for use with
// compile-time constants.
func MustOID(s string) OID {
	o, err := ParseOID(s)
	if err != nil {
		panic(err)
	}
	return o
}

// EncodeOID encodes an OBJECT IDENTIFIER. It panics for OIDs that violate
// the structural rules (fewer than two arcs, or first arcs out of range),
// since OIDs in this codebase are compile-time constants.
func EncodeOID(o OID) []byte {
	if len(o) < 2 {
		panic("der: OID needs at least two arcs")
	}
	if o[0] > 2 || (o[0] < 2 && o[1] >= 40) {
		panic(fmt.Sprintf("der: invalid OID prefix %d.%d", o[0], o[1]))
	}
	content := appendBase128(nil, uint64(o[0])*40+uint64(o[1]))
	for _, arc := range o[2:] {
		content = appendBase128(content, uint64(arc))
	}
	return universal(TagOID, false, content)
}

func appendBase128(dst []byte, v uint64) []byte {
	var stack [10]byte
	n := 0
	for {
		stack[n] = byte(v & 0x7f)
		v >>= 7
		n++
		if v == 0 {
			break
		}
	}
	for i := n - 1; i >= 0; i-- {
		b := stack[i]
		if i > 0 {
			b |= 0x80
		}
		dst = append(dst, b)
	}
	return dst
}

// OID decodes an OBJECT IDENTIFIER value.
func (v Value) OID() (OID, error) {
	if err := v.expect(TagOID, false); err != nil {
		return nil, err
	}
	c := v.Content
	if len(c) == 0 {
		return nil, errors.New("der: empty OID content")
	}
	var arcs []uint64
	var cur uint64
	started := false
	for i, b := range c {
		if !started && b == 0x80 {
			return nil, errors.New("der: non-minimal OID arc (leading 0x80)")
		}
		started = true
		if cur > 1<<56 {
			return nil, errors.New("der: OID arc overflow")
		}
		cur = cur<<7 | uint64(b&0x7f)
		if b&0x80 == 0 {
			arcs = append(arcs, cur)
			cur = 0
			started = false
		} else if i == len(c)-1 {
			return nil, errors.New("der: truncated OID arc")
		}
	}
	first := arcs[0]
	out := make(OID, 0, len(arcs)+1)
	switch {
	case first < 40:
		out = append(out, 0, uint32(first))
	case first < 80:
		out = append(out, 1, uint32(first-40))
	default:
		out = append(out, 2, uint32(first-80))
	}
	for _, a := range arcs[1:] {
		if a > 1<<32-1 {
			return nil, errors.New("der: OID arc out of uint32 range")
		}
		out = append(out, uint32(a))
	}
	return out, nil
}
