//go:build !race

package der

const raceEnabled = false
