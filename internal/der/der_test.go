package der

import (
	"bytes"
	"encoding/asn1"
	"math/big"
	"testing"
	"testing/quick"
	"time"
)

func TestTLVShortAndLongLengths(t *testing.T) {
	cases := []struct {
		n    int
		want []byte // expected length octets
	}{
		{0, []byte{0x00}},
		{1, []byte{0x01}},
		{127, []byte{0x7f}},
		{128, []byte{0x81, 0x80}},
		{255, []byte{0x81, 0xff}},
		{256, []byte{0x82, 0x01, 0x00}},
		{65535, []byte{0x82, 0xff, 0xff}},
		{65536, []byte{0x83, 0x01, 0x00, 0x00}},
	}
	for _, c := range cases {
		enc := OctetString(make([]byte, c.n))
		gotLen := enc[1 : 1+len(c.want)]
		if !bytes.Equal(gotLen, c.want) {
			t.Errorf("length %d encoded as % x, want % x", c.n, gotLen, c.want)
		}
		v, rest, err := Parse(enc)
		if err != nil {
			t.Fatalf("parse length %d: %v", c.n, err)
		}
		if len(rest) != 0 || len(v.Content) != c.n {
			t.Errorf("round trip length %d: content %d, rest %d", c.n, len(v.Content), len(rest))
		}
	}
}

func TestIntegerVectors(t *testing.T) {
	cases := []struct {
		v    int64
		want []byte
	}{
		{0, []byte{0x02, 0x01, 0x00}},
		{1, []byte{0x02, 0x01, 0x01}},
		{127, []byte{0x02, 0x01, 0x7f}},
		{128, []byte{0x02, 0x02, 0x00, 0x80}},
		{256, []byte{0x02, 0x02, 0x01, 0x00}},
		{-1, []byte{0x02, 0x01, 0xff}},
		{-128, []byte{0x02, 0x01, 0x80}},
		{-129, []byte{0x02, 0x02, 0xff, 0x7f}},
		{-256, []byte{0x02, 0x02, 0xff, 0x00}},
	}
	for _, c := range cases {
		got := Int(c.v)
		if !bytes.Equal(got, c.want) {
			t.Errorf("Int(%d) = % x, want % x", c.v, got, c.want)
		}
		v, _, err := Parse(got)
		if err != nil {
			t.Fatalf("parse Int(%d): %v", c.v, err)
		}
		dec, err := v.Int64()
		if err != nil || dec != c.v {
			t.Errorf("decode Int(%d) = %d, %v", c.v, dec, err)
		}
	}
}

func TestIntegerInteropWithStdlib(t *testing.T) {
	values := []int64{0, 1, -1, 127, 128, -128, -129, 1 << 40, -(1 << 40)}
	for _, val := range values {
		ours := Int(val)
		std, err := asn1.Marshal(val)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ours, std) {
			t.Errorf("Int(%d): ours % x, stdlib % x", val, ours, std)
		}
	}
}

func TestIntegerRoundTripProperty(t *testing.T) {
	f := func(raw []byte, neg bool) bool {
		v := new(big.Int).SetBytes(raw)
		if neg {
			v.Neg(v)
		}
		enc := Integer(v)
		parsed, rest, err := Parse(enc)
		if err != nil || len(rest) != 0 {
			return false
		}
		dec, err := parsed.Integer()
		return err == nil && dec.Cmp(v) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNonMinimalIntegerRejected(t *testing.T) {
	bad := [][]byte{
		{0x02, 0x02, 0x00, 0x01}, // leading zero
		{0x02, 0x02, 0xff, 0xff}, // leading ones
		{0x02, 0x00},             // empty
	}
	for _, b := range bad {
		v, _, err := Parse(b)
		if err != nil {
			continue // some are rejected at TLV level
		}
		if _, err := v.Integer(); err == nil {
			t.Errorf("accepted non-minimal integer % x", b)
		}
	}
}

func TestBool(t *testing.T) {
	for _, val := range []bool{true, false} {
		enc := Bool(val)
		v, _, err := Parse(enc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := v.Bool()
		if err != nil || got != val {
			t.Errorf("Bool(%t) round trip = %t, %v", val, got, err)
		}
	}
	// BER TRUE (0x01) must be rejected in DER.
	v, _, err := Parse([]byte{0x01, 0x01, 0x01})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Bool(); err == nil {
		t.Error("accepted non-DER boolean 0x01")
	}
}

func TestSequenceNesting(t *testing.T) {
	enc := Sequence(Int(1), Sequence(PrintableString("CA"), Bool(true)), Null())
	v, rest, err := Parse(enc)
	if err != nil || len(rest) != 0 {
		t.Fatalf("parse: %v rest=%d", err, len(rest))
	}
	kids, err := v.Sequence()
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 3 {
		t.Fatalf("got %d children", len(kids))
	}
	inner, err := kids[1].Sequence()
	if err != nil {
		t.Fatal(err)
	}
	s, err := inner[0].DecodeString()
	if err != nil || s != "CA" {
		t.Errorf("inner string = %q, %v", s, err)
	}
	b, err := inner[1].Bool()
	if err != nil || !b {
		t.Errorf("inner bool = %t, %v", b, err)
	}
	if _, err := kids[2].Sequence(); err == nil {
		t.Error("Sequence() on NULL should fail")
	}
}

func TestBitString(t *testing.T) {
	payload := []byte{0xde, 0xad, 0xbe, 0xef}
	enc := BitString(payload)
	v, _, err := Parse(enc)
	if err != nil {
		t.Fatal(err)
	}
	bits, unused, err := v.BitString()
	if err != nil || unused != 0 || !bytes.Equal(bits, payload) {
		t.Errorf("BitString round trip: % x unused=%d err=%v", bits, unused, err)
	}
}

func TestNamedBitString(t *testing.T) {
	// KeyUsage-style: bit 0 (digitalSignature) and bit 5 (keyCertSign).
	enc := NamedBitString([]bool{true, false, false, false, false, true})
	// Expect content: unused=2, byte 0b10000100.
	want := []byte{0x03, 0x02, 0x02, 0x84}
	if !bytes.Equal(enc, want) {
		t.Fatalf("NamedBitString = % x, want % x", enc, want)
	}
	v, _, err := Parse(enc)
	if err != nil {
		t.Fatal(err)
	}
	bits, err := v.NamedBits()
	if err != nil {
		t.Fatal(err)
	}
	if len(bits) != 6 || !bits[0] || bits[1] || !bits[5] {
		t.Errorf("NamedBits = %v", bits)
	}
	// All-false list encodes as a single zero byte.
	empty := NamedBitString([]bool{false, false})
	if !bytes.Equal(empty, []byte{0x03, 0x01, 0x00}) {
		t.Errorf("empty NamedBitString = % x", empty)
	}
}

func TestNamedBitStringInterop(t *testing.T) {
	enc := NamedBitString([]bool{true, false, true})
	var bs asn1.BitString
	if _, err := asn1.Unmarshal(enc, &bs); err != nil {
		t.Fatalf("stdlib rejected our named bit string: %v", err)
	}
	if bs.BitLength != 3 || bs.At(0) != 1 || bs.At(1) != 0 || bs.At(2) != 1 {
		t.Errorf("stdlib decoded %+v", bs)
	}
}

func TestTimeEncoding(t *testing.T) {
	utc := time.Date(2014, 4, 7, 12, 30, 45, 0, time.UTC)
	enc := Time(utc)
	if enc[0] != TagUTCTime {
		t.Fatalf("2014 date should be UTCTime, tag %d", enc[0])
	}
	v, _, err := Parse(enc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.Time()
	if err != nil || !got.Equal(utc) {
		t.Errorf("UTCTime round trip = %v, %v", got, err)
	}

	future := time.Date(2055, 1, 2, 3, 4, 5, 0, time.UTC)
	enc = Time(future)
	if enc[0] != TagGeneralizedTime {
		t.Fatalf("2055 date should be GeneralizedTime, tag %d", enc[0])
	}
	v, _, err = Parse(enc)
	if err != nil {
		t.Fatal(err)
	}
	got, err = v.Time()
	if err != nil || !got.Equal(future) {
		t.Errorf("GeneralizedTime round trip = %v, %v", got, err)
	}
}

func TestUTCTimeCentury(t *testing.T) {
	// Years 50-99 are 19xx per RFC 5280.
	old := time.Date(1975, 6, 1, 0, 0, 0, 0, time.UTC)
	v, _, err := Parse(Time(old))
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.Time()
	if err != nil || got.Year() != 1975 {
		t.Errorf("1975 round trip = %v, %v", got, err)
	}
}

func TestTimeRoundTripProperty(t *testing.T) {
	base := time.Date(1990, 1, 1, 0, 0, 0, 0, time.UTC)
	f := func(offsetHours uint32) bool {
		tt := base.Add(time.Duration(offsetHours%(100*365*24)) * time.Hour)
		v, rest, err := Parse(Time(tt))
		if err != nil || len(rest) != 0 {
			return false
		}
		got, err := v.Time()
		return err == nil && got.Equal(tt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeInteropWithStdlib(t *testing.T) {
	tt := time.Date(2014, 4, 7, 12, 0, 0, 0, time.UTC)
	var got time.Time
	if _, err := asn1.Unmarshal(Time(tt), &got); err != nil {
		t.Fatalf("stdlib rejected our UTCTime: %v", err)
	}
	if !got.Equal(tt) {
		t.Errorf("stdlib decoded %v", got)
	}
}

func TestExplicitImplicit(t *testing.T) {
	inner := Int(7)
	exp := Explicit(3, inner)
	v, _, err := Parse(exp)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsContext(3) || !v.Constructed {
		t.Fatalf("explicit wrapper: %s", v.Header)
	}
	kids, err := v.Children()
	if err != nil || len(kids) != 1 {
		t.Fatalf("children: %v", err)
	}
	if n, _ := kids[0].Int64(); n != 7 {
		t.Errorf("inner = %d", n)
	}

	imp := Implicit(0, false, []byte("hello"))
	v, _, err = Parse(imp)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsContext(0) || v.Constructed || string(v.Content) != "hello" {
		t.Errorf("implicit: %s content=%q", v.Header, v.Content)
	}
	if _, err := v.Children(); err == nil {
		t.Error("Children on primitive should fail")
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string][]byte{
		"empty":               {},
		"missing length":      {0x30},
		"truncated content":   {0x30, 0x05, 0x01},
		"indefinite length":   {0x30, 0x80, 0x00, 0x00},
		"non-minimal len 1":   {0x04, 0x81, 0x05, 1, 2, 3, 4, 5},
		"non-minimal len 2":   {0x04, 0x82, 0x00, 0x81, 0x00},
		"huge length-of-len":  {0x04, 0x85, 1, 1, 1, 1, 1},
		"truncated len bytes": {0x04, 0x82, 0x01},
	}
	for name, b := range bad {
		if _, _, err := Parse(b); err == nil {
			t.Errorf("%s: Parse accepted % x", name, b)
		}
	}
}

func TestParseAllTrailingGarbage(t *testing.T) {
	data := append(Int(1), 0xff)
	if _, err := ParseAll(data); err == nil {
		t.Error("ParseAll accepted trailing garbage")
	}
	vals, err := ParseAll(append(Int(1), Int(2)...))
	if err != nil || len(vals) != 2 {
		t.Fatalf("ParseAll two ints: %v, %d", err, len(vals))
	}
}

func TestHighTagNumbers(t *testing.T) {
	enc := TLV(Header{Class: ClassContextSpecific, Tag: 200, Constructed: true}, Int(1))
	v, rest, err := Parse(enc)
	if err != nil || len(rest) != 0 {
		t.Fatalf("high tag parse: %v", err)
	}
	if v.Tag != 200 || v.Class != ClassContextSpecific {
		t.Errorf("high tag decoded as %s", v.Header)
	}
	// Non-minimal high-tag form must be rejected.
	if _, _, err := Parse([]byte{0xbf, 0x05, 0x01, 0x00}); err == nil {
		t.Error("accepted high-tag form for small tag")
	}
}

func TestStringTypes(t *testing.T) {
	for _, enc := range [][]byte{
		PrintableString("GoDaddy"),
		UTF8String("GoDaddy™"),
		IA5String("http://crl.example.com/ca.crl"),
	} {
		v, _, err := Parse(enc)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := v.DecodeString(); err != nil {
			t.Errorf("DecodeString: %v", err)
		}
	}
	v, _, _ := Parse(Int(1))
	if _, err := v.DecodeString(); err == nil {
		t.Error("DecodeString on INTEGER should fail")
	}
}

func TestOctetStringRoundTripProperty(t *testing.T) {
	f := func(payload []byte) bool {
		v, rest, err := Parse(OctetString(payload))
		if err != nil || len(rest) != 0 {
			return false
		}
		got, err := v.OctetString()
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEnumerated(t *testing.T) {
	enc := Enumerated(5) // CRL reason: cessationOfOperation
	v, _, err := Parse(enc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.Enumerated()
	if err != nil || got != 5 {
		t.Errorf("Enumerated = %d, %v", got, err)
	}
	if _, err := v.Integer(); err == nil {
		t.Error("Integer() on ENUMERATED should fail (different tag)")
	}
}
