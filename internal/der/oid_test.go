package der

import (
	"bytes"
	"encoding/asn1"
	"testing"
	"testing/quick"
)

func TestOIDVectors(t *testing.T) {
	cases := []struct {
		s    string
		want []byte
	}{
		// id-sha256: 2.16.840.1.101.3.4.2.1
		{"2.16.840.1.101.3.4.2.1", []byte{0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01}},
		// id-ecPublicKey: 1.2.840.10045.2.1
		{"1.2.840.10045.2.1", []byte{0x06, 0x07, 0x2a, 0x86, 0x48, 0xce, 0x3d, 0x02, 0x01}},
		// commonName: 2.5.4.3
		{"2.5.4.3", []byte{0x06, 0x03, 0x55, 0x04, 0x03}},
	}
	for _, c := range cases {
		oid := MustOID(c.s)
		got := EncodeOID(oid)
		if !bytes.Equal(got, c.want) {
			t.Errorf("EncodeOID(%s) = % x, want % x", c.s, got, c.want)
		}
		v, _, err := Parse(got)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := v.OID()
		if err != nil || !dec.Equal(oid) {
			t.Errorf("decode %s = %v, %v", c.s, dec, err)
		}
		if dec.String() != c.s {
			t.Errorf("String() = %q, want %q", dec.String(), c.s)
		}
	}
}

func TestOIDInteropWithStdlib(t *testing.T) {
	oids := []string{"2.5.29.31", "1.3.6.1.5.5.7.48.1", "2.16.840.1.113733.1.7.23.6"}
	for _, s := range oids {
		ours := EncodeOID(MustOID(s))
		var std asn1.ObjectIdentifier
		if _, err := asn1.Unmarshal(ours, &std); err != nil {
			t.Fatalf("stdlib rejected our OID %s: %v", s, err)
		}
		if std.String() != s {
			t.Errorf("stdlib decoded %s as %s", s, std)
		}
		// And the reverse direction.
		stdEnc, err := asn1.Marshal(std)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(stdEnc, ours) {
			t.Errorf("OID %s: ours % x, stdlib % x", s, ours, stdEnc)
		}
	}
}

func TestParseOIDErrors(t *testing.T) {
	for _, s := range []string{"", "1", "1.x.3", "1.-2.3", "99999999999999999999.1"} {
		if _, err := ParseOID(s); err == nil {
			t.Errorf("ParseOID(%q) should fail", s)
		}
	}
}

func TestEncodeOIDPanics(t *testing.T) {
	for name, o := range map[string]OID{
		"one arc":    {1},
		"bad class":  {3, 1},
		"arc2 range": {0, 40},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			EncodeOID(o)
		}()
	}
}

func TestOIDDecodeErrors(t *testing.T) {
	bad := map[string][]byte{
		"empty":         {0x06, 0x00},
		"truncated arc": {0x06, 0x02, 0x86, 0x80},
		"leading 0x80":  {0x06, 0x02, 0x80, 0x01},
	}
	for name, b := range bad {
		v, _, err := Parse(b)
		if err != nil {
			continue
		}
		if _, err := v.OID(); err == nil {
			t.Errorf("%s: accepted % x", name, b)
		}
	}
}

func TestOIDEqual(t *testing.T) {
	a := MustOID("2.5.29.31")
	if !a.Equal(MustOID("2.5.29.31")) {
		t.Error("equal OIDs not Equal")
	}
	if a.Equal(MustOID("2.5.29.32")) || a.Equal(MustOID("2.5.29")) {
		t.Error("unequal OIDs reported Equal")
	}
}

// Property: every syntactically valid OID round-trips through
// encode/decode, and matches the stdlib encoding.
func TestOIDRoundTripProperty(t *testing.T) {
	f := func(arcsRaw []uint32, first uint8, second uint8) bool {
		o := OID{uint32(first % 3)}
		sec := uint32(second)
		if o[0] < 2 {
			sec %= 40
		}
		o = append(o, sec)
		for _, a := range arcsRaw {
			o = append(o, a%100000)
		}
		enc := EncodeOID(o)
		v, rest, err := Parse(enc)
		if err != nil || len(rest) != 0 {
			return false
		}
		dec, err := v.OID()
		if err != nil || !dec.Equal(o) {
			return false
		}
		// Interop: stdlib must agree byte-for-byte.
		std := make(asn1.ObjectIdentifier, len(o))
		for i, a := range o {
			std[i] = int(a)
		}
		stdEnc, err := asn1.Marshal(std)
		return err == nil && bytes.Equal(stdEnc, enc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
