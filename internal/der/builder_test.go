package der

import (
	"bytes"
	"math/big"
	"testing"
	"testing/quick"
	"time"
)

// Every Builder construct must be byte-identical to the one-shot
// package-level encoder it replaces.

func TestBuilderSequenceIdentity(t *testing.T) {
	cases := []struct {
		name string
		want []byte
		emit func(b *Builder)
	}{
		{"empty", Sequence(), func(b *Builder) { b.BeginSequence(); b.End() }},
		{"flat", Sequence(Int(1), Int(2)), func(b *Builder) {
			b.BeginSequence()
			b.Int(1)
			b.Int(2)
			b.End()
		}},
		{"nested", Sequence(Sequence(Int(7)), OctetString([]byte("hi"))), func(b *Builder) {
			b.BeginSequence()
			b.BeginSequence()
			b.Int(7)
			b.End()
			b.OctetString([]byte("hi"))
			b.End()
		}},
		{"longform128", Sequence(OctetString(make([]byte, 128))), func(b *Builder) {
			b.BeginSequence()
			b.OctetString(make([]byte, 128))
			b.End()
		}},
		{"longform300", Sequence(OctetString(make([]byte, 300))), func(b *Builder) {
			b.BeginSequence()
			b.OctetString(make([]byte, 300))
			b.End()
		}},
		{"longform70k", Sequence(OctetString(make([]byte, 70000))), func(b *Builder) {
			b.BeginSequence()
			b.OctetString(make([]byte, 70000))
			b.End()
		}},
	}
	for _, tc := range cases {
		var b Builder
		tc.emit(&b)
		if !bytes.Equal(b.Bytes(), tc.want) {
			t.Errorf("%s: builder output differs from one-shot encoder", tc.name)
		}
	}
}

// Nested long-form lengths force End to shift content multiple times.
func TestBuilderNestedLongForm(t *testing.T) {
	payload := make([]byte, 200)
	want := Sequence(Sequence(Sequence(OctetString(payload))))
	var b Builder
	b.BeginSequence()
	b.BeginSequence()
	b.BeginSequence()
	b.OctetString(payload)
	b.End()
	b.End()
	b.End()
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatal("nested long-form output differs")
	}
}

func TestBuilderIntIdentityProperty(t *testing.T) {
	f := func(v int64) bool {
		var b Builder
		b.Int(v)
		if !bytes.Equal(b.Bytes(), Int(v)) {
			return false
		}
		b.Reset()
		b.Enumerated(v)
		return bytes.Equal(b.Bytes(), Enumerated(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
	// Boundary values around every content-length step.
	for _, v := range []int64{0, 1, -1, 127, 128, -128, -129, 255, 256,
		32767, 32768, -32768, -32769, 1<<31 - 1, 1 << 31, -1 << 31,
		1<<63 - 1, -1 << 63} {
		var b Builder
		b.Int(v)
		if !bytes.Equal(b.Bytes(), Int(v)) {
			t.Errorf("Int(%d) differs from one-shot", v)
		}
	}
}

func TestBuilderUnsignedIntegerIdentity(t *testing.T) {
	f := func(mag []byte) bool {
		var b Builder
		b.UnsignedInteger(mag)
		return bytes.Equal(b.Bytes(), Integer(new(big.Int).SetBytes(mag)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
	for _, mag := range [][]byte{nil, {}, {0}, {0, 0}, {1}, {0x7f}, {0x80},
		{0, 0x80}, {0xff, 0xff}, {1, 0, 0, 0, 0, 0, 0, 0, 0}} {
		var b Builder
		b.UnsignedInteger(mag)
		want := Integer(new(big.Int).SetBytes(mag))
		if !bytes.Equal(b.Bytes(), want) {
			t.Errorf("UnsignedInteger(%x) = %x, want %x", mag, b.Bytes(), want)
		}
	}
}

func TestBuilderTimeIdentity(t *testing.T) {
	times := []time.Time{
		time.Date(1950, 1, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2014, 10, 2, 12, 30, 45, 0, time.UTC),
		time.Date(2049, 12, 31, 23, 59, 59, 0, time.UTC),
		time.Date(2050, 1, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2100, 6, 15, 6, 7, 8, 0, time.UTC),
		time.Date(1949, 12, 31, 23, 59, 59, 0, time.UTC),
		time.Date(9999, 12, 31, 23, 59, 59, 0, time.UTC),
	}
	for _, tm := range times {
		var b Builder
		b.Time(tm)
		if !bytes.Equal(b.Bytes(), Time(tm)) {
			t.Errorf("Time(%v) differs from one-shot encoder", tm)
		}
	}
}

func TestBuilderRawAndTake(t *testing.T) {
	var b Builder
	b.Raw(Int(5))
	b.Raw(Int(6))
	out := b.Take()
	want := append(append([]byte{}, Int(5)...), Int(6)...)
	if !bytes.Equal(out, want) {
		t.Fatalf("Take = %x, want %x", out, want)
	}
	if b.Len() != 0 {
		t.Fatal("builder not empty after Take")
	}
	// The taken slice must survive further builder use.
	b.Int(7)
	if !bytes.Equal(out, want) {
		t.Fatal("Take output corrupted by later appends")
	}
}

func TestBuilderPoolRetentionCap(t *testing.T) {
	old := MaxPooledBuilderBytes
	defer func() { MaxPooledBuilderBytes = old }()
	MaxPooledBuilderBytes = 64

	big := GetBuilder()
	big.OctetString(make([]byte, 1024))
	PutBuilder(big) // over the cap: must be dropped, not pooled

	small := GetBuilder()
	if small == big {
		t.Fatal("oversized builder was retained in the pool")
	}
	small.Int(1)
	PutBuilder(small)
	reused := GetBuilder()
	if reused.Len() != 0 {
		t.Fatal("pooled builder not reset")
	}
	PutBuilder(reused)
}

func TestBuilderZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	var b Builder
	// Prime the buffer so appends don't grow it.
	b.BeginSequence()
	for i := 0; i < 100; i++ {
		b.UnsignedInteger([]byte{byte(i + 1)})
	}
	b.End()
	b.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		b.Reset()
		b.BeginSequence()
		for i := 0; i < 100; i++ {
			b.UnsignedInteger([]byte{byte(i + 1)})
			b.Time(time.Date(2014, 10, 2, 12, 30, 45, 0, time.UTC))
		}
		b.End()
	})
	if allocs != 0 {
		t.Errorf("steady-state build allocated %.1f times, want 0", allocs)
	}
}
