package der

import (
	"sync"
	"time"
)

// Builder incrementally encodes DER into a single growing buffer,
// cryptobyte-style: Begin writes the identifier plus a one-byte length
// placeholder, End back-patches the real length (shifting the content only
// in the rare case it exceeds 127 bytes). Leaf appenders (UnsignedInteger,
// Time, ...) know their content length up front and write headers
// directly. The zero value is ready to use; the byte output is identical
// to the package-level one-shot encoders.
type Builder struct {
	buf   []byte
	marks []int
}

// MaxPooledBuilderBytes caps the buffer capacity a Builder may retain when
// returned to the pool with PutBuilder. Builders that grew past it (e.g.
// encoding a Heartbleed-scale CRL) are dropped rather than pinning tens of
// megabytes in the pool.
var MaxPooledBuilderBytes = 1 << 20

var builderPool = sync.Pool{New: func() interface{} { return new(Builder) }}

// GetBuilder returns an empty Builder from the pool.
func GetBuilder() *Builder {
	return builderPool.Get().(*Builder)
}

// PutBuilder resets b and returns it to the pool. The caller must be done
// with every slice obtained from Bytes; use Take for output that outlives
// the builder.
func PutBuilder(b *Builder) {
	if cap(b.buf) > MaxPooledBuilderBytes {
		return
	}
	b.Reset()
	builderPool.Put(b)
}

// Reset empties the builder, retaining its buffer.
func (b *Builder) Reset() {
	b.buf = b.buf[:0]
	b.marks = b.marks[:0]
}

// Len returns the number of bytes encoded so far.
func (b *Builder) Len() int { return len(b.buf) }

// Bytes returns the encoded bytes. The slice aliases the builder's buffer
// and is invalidated by further appends, Reset, or PutBuilder.
func (b *Builder) Bytes() []byte { return b.buf }

// Take returns the encoded bytes and detaches them from the builder, which
// is left empty with a fresh (nil) buffer.
func (b *Builder) Take() []byte {
	out := b.buf
	b.buf = nil
	b.marks = b.marks[:0]
	return out
}

// Begin opens a TLV whose content is everything appended until the
// matching End.
func (b *Builder) Begin(h Header) {
	b.buf = appendIdentifier(b.buf, h)
	b.marks = append(b.marks, len(b.buf))
	b.buf = append(b.buf, 0) // length placeholder, patched by End
}

// BeginSequence opens a SEQUENCE.
func (b *Builder) BeginSequence() {
	b.Begin(Header{Tag: TagSequence, Constructed: true})
}

// End closes the innermost Begin, back-patching its length.
func (b *Builder) End() {
	m := b.marks[len(b.marks)-1]
	b.marks = b.marks[:len(b.marks)-1]
	n := len(b.buf) - m - 1
	if n < 0x80 {
		b.buf[m] = byte(n)
		return
	}
	extra := 1
	for lim := 0x100; n >= lim && extra < 4; lim <<= 8 {
		extra++
	}
	b.buf = append(b.buf, make([]byte, extra)...)
	copy(b.buf[m+1+extra:], b.buf[m+1:len(b.buf)-extra])
	b.buf[m] = 0x80 | byte(extra)
	for i := 0; i < extra; i++ {
		b.buf[m+1+i] = byte(n >> (8 * (extra - 1 - i)))
	}
}

// Raw appends already-encoded TLV bytes.
func (b *Builder) Raw(p []byte) { b.buf = append(b.buf, p...) }

// primitive appends the header of a universal primitive with a known
// content length.
func (b *Builder) primitive(tag int, contentLen int) {
	b.buf = appendIdentifier(b.buf, Header{Tag: tag})
	b.buf = appendLength(b.buf, contentLen)
}

// UnsignedInteger appends an INTEGER from a big-endian magnitude (leading
// zeros permitted; empty means zero), the counterpart of Integer for
// compact non-negative serials.
func (b *Builder) UnsignedInteger(mag []byte) {
	for len(mag) > 0 && mag[0] == 0 {
		mag = mag[1:]
	}
	n := len(mag)
	pad := false
	switch {
	case n == 0:
		b.primitive(TagInteger, 1)
		b.buf = append(b.buf, 0)
		return
	case mag[0]&0x80 != 0:
		pad = true
		n++
	}
	b.primitive(TagInteger, n)
	if pad {
		b.buf = append(b.buf, 0)
	}
	b.buf = append(b.buf, mag...)
}

// appendInt64Content appends the minimal two's-complement encoding of v —
// the int64 counterpart of integerContent.
func appendInt64Content(dst []byte, v int64) []byte {
	var tmp [8]byte
	for i := 7; i >= 0; i-- {
		tmp[i] = byte(v)
		v >>= 8
	}
	i := 0
	for i < 7 && ((tmp[i] == 0 && tmp[i+1]&0x80 == 0) || (tmp[i] == 0xff && tmp[i+1]&0x80 != 0)) {
		i++
	}
	return append(dst, tmp[i:]...)
}

// int64ContentLen returns the byte length appendInt64Content would emit.
func int64ContentLen(v int64) int {
	n := 8
	for n > 1 {
		top := byte(v >> ((n - 1) * 8))
		next := byte(v >> ((n - 2) * 8))
		if (top == 0 && next&0x80 == 0) || (top == 0xff && next&0x80 != 0) {
			n--
			continue
		}
		break
	}
	return n
}

// Int appends an INTEGER from an int64.
func (b *Builder) Int(v int64) {
	b.primitive(TagInteger, int64ContentLen(v))
	b.buf = appendInt64Content(b.buf, v)
}

// Enumerated appends an ENUMERATED from an int64.
func (b *Builder) Enumerated(v int64) {
	b.primitive(TagEnumerated, int64ContentLen(v))
	b.buf = appendInt64Content(b.buf, v)
}

// Time appends a timestamp under X.509's rule: UTCTime for years in
// [1950, 2049], GeneralizedTime otherwise.
func (b *Builder) Time(t time.Time) {
	t = t.UTC()
	if y := t.Year(); y >= 1950 && y < 2050 {
		b.primitive(TagUTCTime, len(utcTimeFormat))
		b.buf = t.AppendFormat(b.buf, utcTimeFormat)
		return
	}
	// Years outside [0, 9999] format to a different width than the
	// layout string; Begin/End measures the actual bytes.
	b.Begin(Header{Tag: TagGeneralizedTime})
	b.buf = t.AppendFormat(b.buf, generalizedTimeFormat)
	b.End()
}

// OctetString appends an OCTET STRING.
func (b *Builder) OctetString(p []byte) {
	b.primitive(TagOctetString, len(p))
	b.buf = append(b.buf, p...)
}
