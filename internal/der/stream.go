package der

import (
	"bytes"
	"errors"
	"time"
)

// This file is the streaming half of the codec: a cursor that walks TLV
// structures over the raw buffer without copying or materializing child
// slices, plus allocation-free accessors for the value types that appear
// once per CRL entry (INTEGER magnitudes, ENUMERATED codes, timestamps).
// Parsing a revoked-certificate entry through these paths performs no heap
// allocation; Heartbleed-scale CRLs (§5.2 of the paper, GoDaddy's ~41 MB
// list) are why that matters.

// Cursor iterates over a concatenation of TLVs (typically the content of a
// constructed value) without allocating: each Next returns a Value whose
// Content and Full alias the underlying buffer.
type Cursor struct {
	rest []byte
	off  int
}

// NewCursor returns a cursor over data, which must be a concatenation of
// zero or more TLVs.
func NewCursor(data []byte) Cursor { return Cursor{rest: data} }

// SequenceCursor returns a cursor over the children of a SEQUENCE value.
// Unlike Sequence it does not materialize a []Value.
func (v Value) SequenceCursor() (Cursor, error) {
	if err := v.expect(TagSequence, true); err != nil {
		return Cursor{}, err
	}
	return Cursor{rest: v.Content}, nil
}

// More reports whether any bytes remain to be parsed.
func (c *Cursor) More() bool { return len(c.rest) > 0 }

// Next parses and returns the next TLV. Errors report offsets relative to
// the buffer the cursor was created over.
func (c *Cursor) Next() (Value, error) {
	v, used, err := parseAt(c.rest, c.off)
	if err != nil {
		return Value{}, err
	}
	c.rest = c.rest[used:]
	c.off += used
	return v, nil
}

// NumChildren counts the TLVs in a constructed value's content without
// materializing them — one header parse per child, no recursion.
func (v Value) NumChildren() (int, error) {
	if !v.Constructed {
		return 0, errors.New("der: NumChildren of primitive value")
	}
	cur := Cursor{rest: v.Content}
	n := 0
	for cur.More() {
		if _, err := cur.Next(); err != nil {
			return 0, err
		}
		n++
	}
	return n, nil
}

var (
	errEmptyInt      = errors.New("der: empty integer")
	errLeadingZeros  = errors.New("der: non-minimal integer (leading zero)")
	errLeadingOnes   = errors.New("der: non-minimal integer (leading ones)")
	errIntRange      = errors.New("der: integer out of int64 range")
	errEnumRange     = errors.New("der: enumerated value out of int64 range")
	errNotTimeType   = errors.New("der: not a time type")
	errExpectInteger = errors.New("der: expected universal tag 2 (constructed=false)")
)

// checkIntContent applies DER's minimal-encoding rules to INTEGER /
// ENUMERATED content bytes.
func checkIntContent(c []byte) error {
	if len(c) == 0 {
		return errEmptyInt
	}
	if len(c) > 1 {
		if c[0] == 0 && c[1]&0x80 == 0 {
			return errLeadingZeros
		}
		if c[0] == 0xff && c[1]&0x80 != 0 {
			return errLeadingOnes
		}
	}
	return nil
}

// intContentInt64 decodes minimal two's-complement content into an int64.
// fits is false when the value is valid DER but does not fit in 64 bits.
func intContentInt64(c []byte) (v int64, fits bool, err error) {
	if err := checkIntContent(c); err != nil {
		return 0, false, err
	}
	// A minimal encoding longer than 8 bytes is outside int64 by
	// construction (9 bytes means |v| >= 2^63 positive or < -2^63).
	if len(c) > 8 {
		return 0, false, nil
	}
	if c[0]&0x80 != 0 {
		v = -1
	}
	for _, b := range c {
		v = v<<8 | int64(b)
	}
	return v, true, nil
}

// IntegerBytes returns the big-endian magnitude of a non-negative INTEGER
// — the same bytes big.Int.Bytes would produce (empty for zero) — as a
// subslice of the input, with no allocation. neg reports a negative
// INTEGER, for which callers needing the value must fall back to Integer.
func (v Value) IntegerBytes() (mag []byte, neg bool, err error) {
	if v.Class != ClassUniversal || v.Tag != TagInteger || v.Constructed {
		return nil, false, errExpectInteger
	}
	c := v.Content
	if err := checkIntContent(c); err != nil {
		return nil, false, err
	}
	if c[0]&0x80 != 0 {
		return nil, true, nil
	}
	if c[0] == 0 {
		// Either the value zero (single byte) or a sign pad before a
		// high-bit magnitude; both strip to the minimal magnitude.
		c = c[1:]
	}
	return c, false, nil
}

// Timestamp formats and their content lengths; shared with the builder.
const (
	utcTimeFormat         = "060102150405Z"
	generalizedTimeFormat = "20060102150405Z"
)

// Time decodes a UTCTime or GeneralizedTime. Canonical timestamps (the
// only kind the DER encoder emits) take an allocation-free fast path; any
// input the fast path cannot faithfully round-trip falls back to the
// strict time.Parse-based decoder so accept/reject behavior is unchanged.
func (v Value) Time() (time.Time, error) {
	if v.Class == ClassUniversal && !v.Constructed {
		switch v.Tag {
		case TagUTCTime:
			if t, ok := fastTime(v.Content, true); ok {
				return t, nil
			}
		case TagGeneralizedTime:
			if t, ok := fastTime(v.Content, false); ok {
				return t, nil
			}
		}
	}
	return v.timeSlow()
}

// fastTime decodes a fixed-width YYMMDDHHMMSSZ / YYYYMMDDHHMMSSZ
// timestamp. It verifies its result by re-formatting into a scratch buffer
// and comparing bytes: any input that is not the canonical encoding of a
// valid instant (wrong digits, out-of-range fields, Feb 30, ...) fails the
// round-trip and is left to the slow path's exact validation.
func fastTime(c []byte, utc bool) (time.Time, bool) {
	want := 15
	if utc {
		want = 13
	}
	if len(c) != want || c[want-1] != 'Z' {
		return time.Time{}, false
	}
	n := 0
	var f [7]int // year(2 or 4), month, day, hour, min, sec
	i := 0
	if !utc {
		f[n] = digits2(c, 0)
		n++
		i = 2
	}
	for ; i < want-1; i += 2 {
		f[n] = digits2(c, i)
		n++
	}
	for _, d := range f[:n] {
		if d < 0 {
			return time.Time{}, false
		}
	}
	var year int
	if utc {
		// RFC 5280: YY in [50, 99] means 19YY; [00, 49] means 20YY.
		year = 2000 + f[0]
		if year >= 2050 {
			year -= 100
		}
	} else {
		year = f[0]*100 + f[1]
	}
	k := n - 5
	t := time.Date(year, time.Month(f[k]), f[k+1], f[k+2], f[k+3], f[k+4], 0, time.UTC)
	var scratch [15]byte
	var out []byte
	if utc {
		out = t.AppendFormat(scratch[:0], utcTimeFormat)
	} else {
		out = t.AppendFormat(scratch[:0], generalizedTimeFormat)
	}
	if !bytes.Equal(out, c) {
		return time.Time{}, false
	}
	return t, true
}

// digits2 decodes two ASCII digits at c[i:], returning -1 on non-digits.
func digits2(c []byte, i int) int {
	hi, lo := c[i]-'0', c[i+1]-'0'
	if hi > 9 || lo > 9 {
		return -1
	}
	return int(hi)*10 + int(lo)
}
