// Package der implements a from-scratch ASN.1 DER (Distinguished Encoding
// Rules) codec — the wire format beneath X.509 certificates, CRLs, and OCSP
// messages.
//
// The encoder produces canonical DER (definite, minimal lengths; minimal
// two's-complement integers). The decoder is strict: it rejects indefinite
// lengths, non-minimal lengths, and trailing garbage, because a measurement
// pipeline that silently accepts malformed revocation data would corrupt
// every downstream statistic.
package der

import (
	"bytes"
	"errors"
	"fmt"
	"math/big"
	"time"
)

// Class is an ASN.1 tag class.
type Class int

// Tag classes.
const (
	ClassUniversal       Class = 0
	ClassApplication     Class = 1
	ClassContextSpecific Class = 2
	ClassPrivate         Class = 3
)

// Universal tag numbers used by the PKI formats.
const (
	TagBoolean         = 1
	TagInteger         = 2
	TagBitString       = 3
	TagOctetString     = 4
	TagNull            = 5
	TagOID             = 6
	TagEnumerated      = 10
	TagUTF8String      = 12
	TagSequence        = 16
	TagSet             = 17
	TagPrintableString = 19
	TagIA5String       = 22
	TagUTCTime         = 23
	TagGeneralizedTime = 24
)

// Header describes the identity of a TLV: its class, tag number, and
// whether the content is constructed.
type Header struct {
	Class       Class
	Tag         int
	Constructed bool
}

func (h Header) String() string {
	return fmt.Sprintf("class=%d tag=%d constructed=%t", h.Class, h.Tag, h.Constructed)
}

// Value is one decoded TLV.
type Value struct {
	Header
	// Content is the value bytes (excluding tag and length).
	Content []byte
	// Full is the complete encoding including tag and length.
	Full []byte
}

// appendIdentifier appends the identifier octets for h.
func appendIdentifier(dst []byte, h Header) []byte {
	b := byte(h.Class) << 6
	if h.Constructed {
		b |= 0x20
	}
	if h.Tag < 31 {
		return append(dst, b|byte(h.Tag))
	}
	// High-tag-number form (not used by the PKI formats, but supported
	// for completeness).
	dst = append(dst, b|0x1f)
	var stack [5]byte
	n := 0
	t := h.Tag
	for t > 0 {
		stack[n] = byte(t & 0x7f)
		t >>= 7
		n++
	}
	for i := n - 1; i >= 0; i-- {
		v := stack[i]
		if i > 0 {
			v |= 0x80
		}
		dst = append(dst, v)
	}
	return dst
}

// appendLength appends the definite minimal length octets.
func appendLength(dst []byte, length int) []byte {
	switch {
	case length < 0x80:
		return append(dst, byte(length))
	case length < 0x100:
		return append(dst, 0x81, byte(length))
	case length < 0x10000:
		return append(dst, 0x82, byte(length>>8), byte(length))
	case length < 0x1000000:
		return append(dst, 0x83, byte(length>>16), byte(length>>8), byte(length))
	default:
		return append(dst, 0x84, byte(length>>24), byte(length>>16), byte(length>>8), byte(length))
	}
}

// encodeHeader appends the identifier and length octets for (h, length).
func encodeHeader(dst []byte, h Header, length int) []byte {
	return appendLength(appendIdentifier(dst, h), length)
}

// TLV encodes one tag-length-value with the given header and content.
func TLV(h Header, content []byte) []byte {
	out := encodeHeader(make([]byte, 0, len(content)+6), h, len(content))
	return append(out, content...)
}

func universal(tag int, constructed bool, content []byte) []byte {
	return TLV(Header{Class: ClassUniversal, Tag: tag, Constructed: constructed}, content)
}

// Sequence encodes a SEQUENCE whose content is the concatenation of the
// already-encoded children.
func Sequence(children ...[]byte) []byte {
	return universal(TagSequence, true, bytes.Join(children, nil))
}

// Set encodes a SET with the already-encoded children in the given order.
// (Proper DER SET OF ordering is the caller's responsibility; X.509 RDNs in
// this codebase always contain a single attribute.)
func Set(children ...[]byte) []byte {
	return universal(TagSet, true, bytes.Join(children, nil))
}

// Bool encodes a BOOLEAN.
func Bool(v bool) []byte {
	if v {
		return universal(TagBoolean, false, []byte{0xff})
	}
	return universal(TagBoolean, false, []byte{0x00})
}

// Null encodes a NULL.
func Null() []byte { return universal(TagNull, false, nil) }

// Integer encodes an INTEGER from a big.Int (which may be negative).
func Integer(v *big.Int) []byte {
	return universal(TagInteger, false, integerContent(v))
}

// Int encodes an INTEGER from an int64.
func Int(v int64) []byte { return Integer(big.NewInt(v)) }

// Enumerated encodes an ENUMERATED value (used by CRL reason codes).
func Enumerated(v int64) []byte {
	return universal(TagEnumerated, false, integerContent(big.NewInt(v)))
}

func integerContent(v *big.Int) []byte {
	switch v.Sign() {
	case 0:
		return []byte{0}
	case 1:
		b := v.Bytes()
		if b[0]&0x80 != 0 {
			return append([]byte{0}, b...)
		}
		return b
	default:
		// Two's complement of the minimal width.
		bitLen := v.BitLen()
		width := (bitLen / 8) + 1
		mod := new(big.Int).Lsh(big.NewInt(1), uint(width*8))
		tc := new(big.Int).Add(v, mod).Bytes()
		// tc may be shorter than width if leading 0xff bytes collapsed;
		// left-pad with 0xff.
		for len(tc) < width {
			tc = append([]byte{0xff}, tc...)
		}
		// Strip redundant leading 0xff when the next byte also has the
		// sign bit set.
		for len(tc) > 1 && tc[0] == 0xff && tc[1]&0x80 != 0 {
			tc = tc[1:]
		}
		return tc
	}
}

// OctetString encodes an OCTET STRING.
func OctetString(b []byte) []byte { return universal(TagOctetString, false, b) }

// BitString encodes a BIT STRING with no unused bits — the usual case for
// wrapped public keys and signatures.
func BitString(b []byte) []byte {
	return universal(TagBitString, false, append([]byte{0}, b...))
}

// NamedBitString encodes a BIT STRING from individual bits (bit 0 is the
// most significant bit of the first byte), trimming trailing zero bits as
// DER requires for named bit lists such as KeyUsage.
func NamedBitString(bits []bool) []byte {
	last := -1
	for i, b := range bits {
		if b {
			last = i
		}
	}
	if last < 0 {
		return universal(TagBitString, false, []byte{0})
	}
	nBytes := last/8 + 1
	content := make([]byte, 1+nBytes)
	content[0] = byte(7 - last%8) // unused bits in final octet
	for i := 0; i <= last; i++ {
		if bits[i] {
			content[1+i/8] |= 0x80 >> (i % 8)
		}
	}
	return universal(TagBitString, false, content)
}

// PrintableString encodes a PrintableString.
func PrintableString(s string) []byte {
	return universal(TagPrintableString, false, []byte(s))
}

// UTF8String encodes a UTF8String.
func UTF8String(s string) []byte {
	return universal(TagUTF8String, false, []byte(s))
}

// IA5String encodes an IA5String (used for URLs and DNS names).
func IA5String(s string) []byte {
	return universal(TagIA5String, false, []byte(s))
}

// Time encodes t using X.509's rule: UTCTime for years in [1950, 2049],
// GeneralizedTime otherwise.
func Time(t time.Time) []byte {
	t = t.UTC()
	if y := t.Year(); y >= 1950 && y < 2050 {
		return universal(TagUTCTime, false, []byte(t.Format("060102150405Z")))
	}
	return universal(TagGeneralizedTime, false, []byte(t.Format("20060102150405Z")))
}

// GeneralizedTime encodes t as a GeneralizedTime regardless of year —
// required by OCSP, whose timestamps are always GeneralizedTime (RFC 6960).
func GeneralizedTime(t time.Time) []byte {
	return universal(TagGeneralizedTime, false, []byte(t.UTC().Format("20060102150405Z")))
}

// Explicit wraps already-encoded inner TLV(s) in a constructed
// context-specific tag [n].
func Explicit(n int, inner ...[]byte) []byte {
	return TLV(Header{Class: ClassContextSpecific, Tag: n, Constructed: true}, bytes.Join(inner, nil))
}

// Implicit re-tags the given content bytes as a context-specific [n]
// primitive (constructed=false) or constructed value.
func Implicit(n int, constructed bool, content []byte) []byte {
	return TLV(Header{Class: ClassContextSpecific, Tag: n, Constructed: constructed}, content)
}

// --- Decoding ---

// SyntaxError describes a DER parse failure with byte-offset context.
type SyntaxError struct {
	Offset int
	Msg    string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("der: offset %d: %s", e.Offset, e.Msg)
}

func syntaxErr(off int, format string, args ...interface{}) error {
	return &SyntaxError{Offset: off, Msg: fmt.Sprintf(format, args...)}
}

// ErrTruncated is wrapped by parse errors caused by input ending early.
var ErrTruncated = errors.New("truncated input")

// Parse decodes the first TLV in data and returns it along with the
// remaining bytes.
func Parse(data []byte) (Value, []byte, error) {
	v, used, err := parseAt(data, 0)
	if err != nil {
		return Value{}, nil, err
	}
	return v, data[used:], nil
}

// ParseAll decodes all TLVs in data, failing on trailing garbage.
func ParseAll(data []byte) ([]Value, error) {
	var out []Value
	off := 0
	for off < len(data) {
		v, used, err := parseAt(data[off:], off)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		off += used
	}
	return out, nil
}

// parseAt parses one TLV at data[0:], reporting errors relative to
// absolute offset base. It returns the value and the number of bytes
// consumed.
func parseAt(data []byte, base int) (Value, int, error) {
	if len(data) == 0 {
		return Value{}, 0, syntaxErr(base, "empty input: %v", ErrTruncated)
	}
	ident := data[0]
	h := Header{
		Class:       Class(ident >> 6),
		Constructed: ident&0x20 != 0,
	}
	pos := 1
	if tag := int(ident & 0x1f); tag < 31 {
		h.Tag = tag
	} else {
		// High-tag-number form.
		t := 0
		for {
			if pos >= len(data) {
				return Value{}, 0, syntaxErr(base+pos, "high tag: %v", ErrTruncated)
			}
			b := data[pos]
			pos++
			if t > 1<<23 {
				return Value{}, 0, syntaxErr(base+pos, "tag number too large")
			}
			t = t<<7 | int(b&0x7f)
			if b&0x80 == 0 {
				break
			}
		}
		if t < 31 {
			return Value{}, 0, syntaxErr(base+1, "non-minimal high-tag-number form")
		}
		h.Tag = t
	}
	if pos >= len(data) {
		return Value{}, 0, syntaxErr(base+pos, "missing length: %v", ErrTruncated)
	}
	lb := data[pos]
	pos++
	var length int
	switch {
	case lb < 0x80:
		length = int(lb)
	case lb == 0x80:
		return Value{}, 0, syntaxErr(base+pos-1, "indefinite length not allowed in DER")
	default:
		n := int(lb & 0x7f)
		if n > 4 {
			return Value{}, 0, syntaxErr(base+pos-1, "length of length %d too large", n)
		}
		if pos+n > len(data) {
			return Value{}, 0, syntaxErr(base+pos, "length octets: %v", ErrTruncated)
		}
		for i := 0; i < n; i++ {
			length = length<<8 | int(data[pos+i])
		}
		if data[pos] == 0 {
			return Value{}, 0, syntaxErr(base+pos, "non-minimal length encoding (leading zero)")
		}
		if length < 0x80 || (n > 1 && length < 1<<((n-1)*8)) {
			return Value{}, 0, syntaxErr(base+pos, "non-minimal length encoding")
		}
		pos += n
	}
	if length < 0 || pos+length > len(data) {
		return Value{}, 0, syntaxErr(base+pos, "content of %d bytes: %v", length, ErrTruncated)
	}
	return Value{
		Header:  h,
		Content: data[pos : pos+length],
		Full:    data[:pos+length],
	}, pos + length, nil
}

// expect verifies the value has the given universal tag.
func (v Value) expect(tag int, constructed bool) error {
	if v.Class != ClassUniversal || v.Tag != tag || v.Constructed != constructed {
		return fmt.Errorf("der: expected universal tag %d (constructed=%t), got %s", tag, constructed, v.Header)
	}
	return nil
}

// IsContext reports whether v is a context-specific value with tag n.
func (v Value) IsContext(n int) bool {
	return v.Class == ClassContextSpecific && v.Tag == n
}

// Children parses the contents of a constructed value into its child TLVs.
func (v Value) Children() ([]Value, error) {
	if !v.Constructed {
		return nil, fmt.Errorf("der: Children of primitive value (%s)", v.Header)
	}
	return ParseAll(v.Content)
}

// Sequence returns the children of a SEQUENCE value.
func (v Value) Sequence() ([]Value, error) {
	if err := v.expect(TagSequence, true); err != nil {
		return nil, err
	}
	return ParseAll(v.Content)
}

// SetChildren returns the children of a SET value.
func (v Value) SetChildren() ([]Value, error) {
	if err := v.expect(TagSet, true); err != nil {
		return nil, err
	}
	return ParseAll(v.Content)
}

// Integer decodes an INTEGER into a big.Int.
func (v Value) Integer() (*big.Int, error) {
	if err := v.expect(TagInteger, false); err != nil {
		return nil, err
	}
	return intContent(v.Content)
}

// Enumerated decodes an ENUMERATED into an int64 without allocating.
func (v Value) Enumerated() (int64, error) {
	if err := v.expect(TagEnumerated, false); err != nil {
		return 0, err
	}
	i, fits, err := intContentInt64(v.Content)
	if err != nil {
		return 0, err
	}
	if !fits {
		return 0, errEnumRange
	}
	return i, nil
}

func intContent(c []byte) (*big.Int, error) {
	if err := checkIntContent(c); err != nil {
		return nil, err
	}
	out := new(big.Int).SetBytes(c)
	if c[0]&0x80 != 0 {
		mod := new(big.Int).Lsh(big.NewInt(1), uint(len(c)*8))
		out.Sub(out, mod)
	}
	return out, nil
}

// Int64 decodes an INTEGER that must fit an int64, without allocating.
func (v Value) Int64() (int64, error) {
	if err := v.expect(TagInteger, false); err != nil {
		return 0, err
	}
	i, fits, err := intContentInt64(v.Content)
	if err != nil {
		return 0, err
	}
	if !fits {
		return 0, errIntRange
	}
	return i, nil
}

// Bool decodes a BOOLEAN. DER requires TRUE to be exactly 0xff.
func (v Value) Bool() (bool, error) {
	if err := v.expect(TagBoolean, false); err != nil {
		return false, err
	}
	if len(v.Content) != 1 {
		return false, errors.New("der: boolean must be one byte")
	}
	switch v.Content[0] {
	case 0x00:
		return false, nil
	case 0xff:
		return true, nil
	default:
		return false, fmt.Errorf("der: boolean value 0x%02x is not DER", v.Content[0])
	}
}

// OctetString returns the content of an OCTET STRING.
func (v Value) OctetString() ([]byte, error) {
	if err := v.expect(TagOctetString, false); err != nil {
		return nil, err
	}
	return v.Content, nil
}

// BitString returns the bytes of a BIT STRING together with the count of
// unused trailing bits.
func (v Value) BitString() (bits []byte, unused int, err error) {
	if err := v.expect(TagBitString, false); err != nil {
		return nil, 0, err
	}
	if len(v.Content) == 0 {
		return nil, 0, errors.New("der: empty bit string")
	}
	unused = int(v.Content[0])
	if unused > 7 || (len(v.Content) == 1 && unused != 0) {
		return nil, 0, fmt.Errorf("der: invalid unused-bit count %d", unused)
	}
	return v.Content[1:], unused, nil
}

// NamedBits decodes a BIT STRING as a named-bit list: result[i] reports
// whether bit i is set.
func (v Value) NamedBits() ([]bool, error) {
	bytesVal, unused, err := v.BitString()
	if err != nil {
		return nil, err
	}
	n := len(bytesVal)*8 - unused
	if n < 0 {
		return nil, errors.New("der: unused bits exceed content")
	}
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = bytesVal[i/8]&(0x80>>(i%8)) != 0
	}
	return out, nil
}

// DecodeString returns the text of any of the supported string types
// (PrintableString, UTF8String, IA5String).
func (v Value) DecodeString() (string, error) {
	if v.Class != ClassUniversal || v.Constructed {
		return "", fmt.Errorf("der: not a string type (%s)", v.Header)
	}
	switch v.Tag {
	case TagPrintableString, TagUTF8String, TagIA5String:
		return string(v.Content), nil
	default:
		return "", fmt.Errorf("der: tag %d is not a supported string type", v.Tag)
	}
}

// timeSlow is the reference timestamp decoder: strict time.Parse
// validation, one allocation for the string conversion. Value.Time (in
// stream.go) routes canonical encodings around it.
func (v Value) timeSlow() (time.Time, error) {
	if v.Class != ClassUniversal || v.Constructed {
		return time.Time{}, fmt.Errorf("der: not a time type (%s)", v.Header)
	}
	s := string(v.Content)
	switch v.Tag {
	case TagUTCTime:
		t, err := time.Parse("060102150405Z", s)
		if err != nil {
			return time.Time{}, fmt.Errorf("der: bad UTCTime %q: %v", s, err)
		}
		// RFC 5280: YY in [50, 99] means 19YY; [00, 49] means 20YY.
		if t.Year() >= 2050 {
			t = t.AddDate(-100, 0, 0)
		}
		return t, nil
	case TagGeneralizedTime:
		t, err := time.Parse("20060102150405Z", s)
		if err != nil {
			return time.Time{}, fmt.Errorf("der: bad GeneralizedTime %q: %v", s, err)
		}
		return t, nil
	default:
		return time.Time{}, fmt.Errorf("der: tag %d is not a time type", v.Tag)
	}
}
