package hist

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// distributions used by the quantile property test. Each returns one
// sample in nanoseconds.
var distributions = []struct {
	name string
	draw func(r *rand.Rand) int64
}{
	{"uniform", func(r *rand.Rand) int64 { return r.Int63n(10_000_000) }},
	{"exponential", func(r *rand.Rand) int64 { return int64(r.ExpFloat64() * 250_000) }},
	{"lognormal", func(r *rand.Rand) int64 {
		return int64(math.Exp(r.NormFloat64()*2 + 10))
	}},
	{"bimodal", func(r *rand.Rand) int64 {
		if r.Intn(100) < 95 {
			return 300 + r.Int63n(200) // warm path: hundreds of ns
		}
		return 40_000_000 + r.Int63n(20_000_000) // cold fetch: tens of ms
	}},
	{"tiny", func(r *rand.Rand) int64 { return r.Int63n(64) }}, // exact-bucket range
	{"huge", func(r *rand.Rand) int64 { return math.MaxInt64 - r.Int63n(1<<40) }},
}

// TestQuantileErrorBound checks the documented property against exact
// sorted-sample quantiles across seeds and distributions: the reported
// quantile equals the bucket lower bound of the exact rank value, and is
// within ErrorBound relative error below it.
func TestQuantileErrorBound(t *testing.T) {
	quantiles := []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	for _, dist := range distributions {
		for seed := int64(1); seed <= 5; seed++ {
			r := rand.New(rand.NewSource(seed))
			n := 1000 + r.Intn(9000)
			var rec Recorder
			samples := make([]int64, n)
			for i := range samples {
				v := dist.draw(r)
				samples[i] = v
				rec.Record(time.Duration(v))
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			snap := rec.Snapshot()
			if snap.Count != uint64(n) {
				t.Fatalf("%s/seed%d: count = %d, want %d", dist.name, seed, snap.Count, n)
			}
			for _, q := range quantiles {
				rank := int(math.Ceil(q * float64(n)))
				if rank < 1 {
					rank = 1
				}
				exact := samples[rank-1]
				got := snap.Quantile(q)
				want := BucketLow(bucketIndex(uint64(exact)))
				if got != want {
					t.Errorf("%s/seed%d: Quantile(%v) = %d, want bucket low %d of exact %d",
						dist.name, seed, q, got, want, exact)
				}
				if got > exact {
					t.Errorf("%s/seed%d: Quantile(%v) = %d above exact %d", dist.name, seed, q, got, exact)
				}
				if lo := float64(exact) * (1 - ErrorBound); float64(got) < lo-1 {
					t.Errorf("%s/seed%d: Quantile(%v) = %d below error bound %f of exact %d",
						dist.name, seed, q, got, lo, exact)
				}
			}
			if snap.Max != samples[n-1] {
				t.Errorf("%s/seed%d: Max = %d, want exact %d", dist.name, seed, snap.Max, samples[n-1])
			}
		}
	}
}

// TestShardMergeDeterminism records the same sample stream through 1
// shard and through N shards (striped like fleet workers) and requires
// byte-identical merged bucket counts, counts, sums, and digests.
func TestShardMergeDeterminism(t *testing.T) {
	for _, workers := range []int{2, 3, 7, 16} {
		for seed := int64(1); seed <= 3; seed++ {
			r := rand.New(rand.NewSource(seed))
			n := 5000
			stream := make([]int64, n)
			for i := range stream {
				stream[i] = distributions[i%len(distributions)].draw(r)
			}

			single := NewSharded(1)
			for _, v := range stream {
				single.Shard(0).Record(time.Duration(v))
			}
			multi := NewSharded(workers)
			for i, v := range stream {
				multi.Shard(i % workers).Record(time.Duration(v))
			}

			a, b := single.Snapshot(), multi.Snapshot()
			if a.Counts != b.Counts {
				t.Fatalf("workers=%d seed=%d: merged bucket arrays differ", workers, seed)
			}
			if a.Count != b.Count || a.Sum != b.Sum || a.Max != b.Max {
				t.Fatalf("workers=%d seed=%d: scalars differ: %+v vs %+v", workers, seed,
					Summary{Count: a.Count, MaxNs: a.Max}, Summary{Count: b.Count, MaxNs: b.Max})
			}
			if a.Digest() != b.Digest() {
				t.Fatalf("workers=%d seed=%d: digests differ: %016x vs %016x",
					workers, seed, a.Digest(), b.Digest())
			}
		}
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	// Exhaustive over the exact range and the first octaves, then spot
	// checks across every scale: indices are monotone and BucketLow is a
	// left inverse lower bound.
	prev := -1
	for v := uint64(0); v < 1<<14; v++ {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
		if low := BucketLow(idx); uint64(low) > v {
			t.Fatalf("BucketLow(%d) = %d above value %d", idx, low, v)
		}
	}
	for shift := uint(14); shift < 63; shift++ {
		for _, v := range []uint64{1 << shift, 1<<shift + 1, 1<<(shift+1) - 1} {
			idx := bucketIndex(v)
			if idx < 0 || idx >= NumBuckets {
				t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
			}
			low := BucketLow(idx)
			if uint64(low) > v {
				t.Fatalf("BucketLow(bucketIndex(%d)) = %d above value", v, low)
			}
			if float64(v-uint64(low)) > float64(v)*ErrorBound {
				t.Fatalf("bucket width at %d exceeds error bound: low %d", v, low)
			}
		}
	}
	if idx := bucketIndex(math.MaxInt64); idx >= NumBuckets {
		t.Fatalf("bucketIndex(MaxInt64) = %d out of range %d", idx, NumBuckets)
	}
}

func TestSnapshotSub(t *testing.T) {
	var rec Recorder
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		rec.Record(time.Duration(r.Int63n(1_000_000)))
	}
	base := rec.Snapshot()
	var wantDelta Recorder
	for i := 0; i < 500; i++ {
		v := time.Duration(r.Int63n(1_000_000))
		rec.Record(v)
		wantDelta.Record(v)
	}
	delta := rec.Snapshot().Sub(base)
	want := wantDelta.Snapshot()
	if delta.Counts != want.Counts || delta.Count != want.Count || delta.Sum != want.Sum {
		t.Fatal("Sub did not recover the delta recording")
	}
}

func TestEmptyAndClamping(t *testing.T) {
	var rec Recorder
	if got := rec.Snapshot().Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %d, want 0", got)
	}
	rec.Record(-5 * time.Second)
	if got := rec.Snapshot().Quantile(1); got != 0 {
		t.Errorf("negative clamp: Quantile(1) = %d, want 0", got)
	}
	if rec.Count() != 1 {
		t.Errorf("Count = %d, want 1", rec.Count())
	}
	rec.Reset()
	if rec.Count() != 0 {
		t.Errorf("Reset: Count = %d", rec.Count())
	}
}

// BenchmarkRecord gates the warm record path: it must stay 0 allocs/op
// and within the 25 ns/op budget the fleet's verdict loop assumes.
func BenchmarkRecord(b *testing.B) {
	var rec Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Record(time.Duration(i & 0xFFFFF))
	}
	if rec.Count() != uint64(b.N) {
		b.Fatal("lost samples")
	}
}

func BenchmarkSnapshotQuantile(b *testing.B) {
	sh := NewSharded(8)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		sh.Shard(i % 8).Record(time.Duration(r.Int63n(1_000_000)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := sh.Snapshot()
		_ = snap.Quantile(0.999)
	}
}
