// Package hist provides log-bucketed (HDR-style) latency histograms for
// the scenario engine's tail-latency measurements: a zero-allocation,
// lock-free record path on per-worker shards, mergeable snapshots whose
// bucket counts are exact, and quantile queries with a documented
// relative-error bound.
//
// # Bucketing and error bound
//
// Values are non-negative nanosecond durations. Values below 64 ns get
// one bucket each (exact); larger values are bucketed log-linearly with
// 64 sub-buckets per power of two, so every bucket's width is at most
// 1/64 of its lower bound. Quantile reports the lower bound of the
// bucket holding the requested rank, which is therefore never above the
// exact sample quantile and never more than a factor of 1/64 (≈1.6%)
// below it:
//
//	q_exact * (1 - 1/64) < Quantile(q) <= q_exact
//
// Bucket counts themselves are exact — merging shards or subtracting a
// baseline snapshot never loses a sample — so any two recordings of the
// same multiset of values produce byte-identical bucket arrays no matter
// how the samples were sharded. The maximum is tracked exactly,
// outside the bucket grid.
//
// # Clock discipline
//
// The package does not read clocks; callers record whatever duration
// they measured. The scenario engine records two kinds: wall-clock
// operation latency (non-deterministic, used for SLO gates) and
// CostModel-derived virtual service time from simnet (a pure function
// of the byte stream, used for determinism digests). Keep the two in
// separate histograms; only virtual-time histograms may participate in
// reproducibility checks.
package hist

import (
	"encoding/binary"
	"hash/fnv"
	"math/bits"
	"time"
)

const (
	// subBits is the log2 of sub-buckets per octave; the relative error
	// bound of Quantile is 1/SubCount.
	subBits = 6
	// SubCount is the number of sub-buckets per power of two (64).
	SubCount = 1 << subBits
	// NumBuckets is the fixed size of every bucket array. The grid
	// covers the full non-negative int64 range, so recorders of any two
	// histograms are always merge-compatible.
	NumBuckets = (63-subBits)*SubCount + 2*SubCount
)

// ErrorBound is the documented relative error of Quantile: reported
// quantiles are within this fraction below the exact sample quantile.
const ErrorBound = 1.0 / SubCount

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(u uint64) int {
	if u < SubCount {
		return int(u)
	}
	s := uint(bits.Len64(u)) - subBits - 1
	return int(s)*SubCount + int(u>>s)
}

// BucketLow returns the smallest value mapped to bucket idx — the
// representative Quantile reports.
func BucketLow(idx int) int64 {
	if idx < SubCount {
		return int64(idx)
	}
	s := idx/SubCount - 1
	m := idx - s*SubCount
	return int64(m) << uint(s)
}

// Recorder is a single-writer histogram shard. The zero value is ready
// to use. Record is not safe for concurrent use; give each worker its
// own Recorder (see Sharded) and merge with Snapshot.
type Recorder struct {
	counts [NumBuckets]uint64
	count  uint64
	sum    int64
	max    int64
}

// Record adds one duration. Negative durations clamp to zero. The path
// allocates nothing: one array increment plus scalar bookkeeping.
func (r *Recorder) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	r.counts[bucketIndex(uint64(v))]++
	r.count++
	r.sum += v
	if v > r.max {
		r.max = v
	}
}

// Count returns how many samples the recorder holds.
func (r *Recorder) Count() uint64 { return r.count }

// Reset clears the recorder.
func (r *Recorder) Reset() { *r = Recorder{} }

// Snapshot copies the recorder into a mergeable snapshot.
func (r *Recorder) Snapshot() *Snapshot {
	s := &Snapshot{Count: r.count, Sum: r.sum, Max: r.max}
	s.Counts = r.counts
	return s
}

// Sharded is a histogram split into per-worker recorders so concurrent
// writers never contend or interleave: worker i records into Shard(i).
type Sharded struct {
	shards []Recorder
}

// NewSharded returns a histogram with n independent shards (minimum 1).
func NewSharded(n int) *Sharded {
	if n < 1 {
		n = 1
	}
	return &Sharded{shards: make([]Recorder, n)}
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Shard returns worker i's recorder (i wraps modulo the shard count).
func (s *Sharded) Shard(i int) *Recorder {
	if i < 0 {
		i = -i
	}
	return &s.shards[i%len(s.shards)]
}

// Snapshot merges every shard. The merged bucket counts depend only on
// the multiset of recorded values, never on which shard recorded what.
func (s *Sharded) Snapshot() *Snapshot {
	out := &Snapshot{}
	for i := range s.shards {
		r := &s.shards[i]
		for b, c := range r.counts {
			out.Counts[b] += c
		}
		out.Count += r.count
		out.Sum += r.sum
		if r.max > out.Max {
			out.Max = r.max
		}
	}
	return out
}

// Reset clears every shard.
func (s *Sharded) Reset() {
	for i := range s.shards {
		s.shards[i].Reset()
	}
}

// Snapshot is an immutable merged histogram.
type Snapshot struct {
	Counts [NumBuckets]uint64
	Count  uint64
	Sum    int64
	// Max is the exact maximum recorded value in nanoseconds.
	Max int64
}

// Add merges other into s in place and returns s. Bucket counts, Count,
// and Sum add exactly; Max takes the larger. Merging is commutative and
// associative, so any merge order over the same recordings produces
// byte-identical snapshots.
func (s *Snapshot) Add(other *Snapshot) *Snapshot {
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Count += other.Count
	s.Sum += other.Sum
	if other.Max > s.Max {
		s.Max = other.Max
	}
	return s
}

// Sub returns the delta snapshot s minus base (counts, sum, and count
// subtract bucket-wise; Max is taken from s, since the exact maximum of
// only-new samples is not recoverable from cumulative state).
func (s *Snapshot) Sub(base *Snapshot) *Snapshot {
	out := &Snapshot{Count: s.Count - base.Count, Sum: s.Sum - base.Sum, Max: s.Max}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] - base.Counts[i]
	}
	return out
}

// Quantile returns the value at rank ceil(q*Count) — the smallest
// recorded value v such that at least ceil(q*Count) samples are <= v,
// reported as its bucket's lower bound (see the package error bound).
// It returns 0 for an empty snapshot; q is clamped to [0, 1].
func (s *Snapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if float64(rank) < q*float64(s.Count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			return BucketLow(i)
		}
	}
	return s.Max
}

// Mean returns the exact arithmetic mean in nanoseconds (0 when empty).
func (s *Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Digest fingerprints the bucket counts (FNV-64a over the non-empty
// buckets plus Count and Sum). Two snapshots of the same sample
// multiset digest identically regardless of sharding or merge order.
// Max is excluded: it is exact, so it is already covered by the bucket
// the maximum landed in; including it would add nothing.
func (s *Snapshot) Digest() uint64 {
	h := fnv.New64a()
	var w [16]byte
	binary.LittleEndian.PutUint64(w[:8], s.Count)
	binary.LittleEndian.PutUint64(w[8:], uint64(s.Sum))
	h.Write(w[:])
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		binary.LittleEndian.PutUint64(w[:8], uint64(i))
		binary.LittleEndian.PutUint64(w[8:], c)
		h.Write(w[:])
	}
	return h.Sum64()
}

// Summary reduces a snapshot to the tail-latency figures the scenario
// reports carry. All values are nanoseconds.
type Summary struct {
	Count  uint64  `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  int64   `json:"p50_ns"`
	P90Ns  int64   `json:"p90_ns"`
	P99Ns  int64   `json:"p99_ns"`
	P999Ns int64   `json:"p999_ns"`
	MaxNs  int64   `json:"max_ns"`
}

// Summary computes the snapshot's summary.
func (s *Snapshot) Summary() Summary {
	return Summary{
		Count:  s.Count,
		MeanNs: s.Mean(),
		P50Ns:  s.Quantile(0.50),
		P90Ns:  s.Quantile(0.90),
		P99Ns:  s.Quantile(0.99),
		P999Ns: s.Quantile(0.999),
		MaxNs:  s.Max,
	}
}
