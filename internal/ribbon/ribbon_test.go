package ribbon

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func synthKeys(seed int64, n, size int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	keys := make([][]byte, n)
	for i := range keys {
		k := make([]byte, size)
		rng.Read(k)
		keys[i] = k
	}
	return keys
}

func sideHas(side []uint64, h uint64) bool {
	i := sort.Search(len(side), func(i int) bool { return side[i] >= h })
	return i < len(side) && side[i] == h
}

// Every enrolled key must retrieve its fingerprint: either the solved
// planes match, or the key was bumped and its exact hash is in the side
// list. This is the no-false-negative contract the cascade builds on.
func TestRibbonExactRetrieval(t *testing.T) {
	for _, tc := range []struct{ n, rBits int }{
		{0, 1}, {1, 7}, {5, 1}, {100, 7}, {300, 1}, {1000, 7}, {5000, 8},
	} {
		t.Run(fmt.Sprintf("n=%d/r=%d", tc.n, tc.rBits), func(t *testing.T) {
			keys := synthKeys(int64(tc.n)*8+int64(tc.rBits), tc.n, 40)
			f, bumped, err := Build(3, keys, tc.rBits)
			if err != nil {
				t.Fatal(err)
			}
			for i, k := range keys {
				match, h64 := f.Probe(3, k)
				if !match && !sideHas(bumped, h64) {
					t.Fatalf("key %d: no match and not bumped", i)
				}
			}
			if len(bumped) > tc.n/100+1 {
				t.Fatalf("bumped %d of %d keys — slack too tight", len(bumped), tc.n)
			}
		})
	}
}

// Non-member keys must match at ~2^-rBits — the filter is a filter, not
// a hash table, and the cascade's level sizing depends on that rate.
func TestRibbonFalsePositiveRate(t *testing.T) {
	keys := synthKeys(1, 4000, 40)
	f, _, err := Build(0, keys, 7)
	if err != nil {
		t.Fatal(err)
	}
	probes := synthKeys(2, 20000, 40)
	fp := 0
	for _, k := range probes {
		if f.Contains(0, k) {
			fp++
		}
	}
	// Expected 2^-7 ≈ 156 of 20000; fail beyond 3x.
	if fp > 3*20000/128 {
		t.Fatalf("false positive rate %d/20000 far above 2^-7", fp)
	}
}

// The solved bytes must be a pure function of the key set: insertion
// order must not matter, or the publisher's delta chain would churn.
func TestRibbonDeterministicBytes(t *testing.T) {
	keys := synthKeys(7, 2000, 40)
	f1, b1, err := Build(0, keys, 7)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := make([][]byte, len(keys))
	copy(shuffled, keys)
	rng := rand.New(rand.NewSource(99))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	f2, b2, err := Build(0, shuffled, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f1.AppendEncode(nil), f2.AppendEncode(nil)) {
		t.Fatal("shuffled build produced different bytes")
	}
	if len(b1) != len(b2) {
		t.Fatalf("bump lists differ: %d vs %d", len(b1), len(b2))
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("bump %d differs", i)
		}
	}
}

// Churn locality: adding keys must only rewrite the buckets they land
// in (plus shared geometry), never the whole solution — that is what
// keeps the cascade's daily deltas proportional to churn.
func TestRibbonChurnLocality(t *testing.T) {
	keys := synthKeys(11, 5000, 40)
	f1, _, err := Build(0, keys, 7)
	if err != nil {
		t.Fatal(err)
	}
	grown := append(append([][]byte(nil), keys...), synthKeys(12, 10, 40)...)
	f2, _, err := Build(0, grown, 7)
	if err != nil {
		t.Fatal(err)
	}
	if f1.Slots() != f2.Slots() || f1.NumBuckets() != f2.NumBuckets() {
		t.Skip("geometry boundary crossed; locality only holds at fixed geometry")
	}
	pb := f1.planeBytes * f1.RBits()
	changed := 0
	for b := 0; b < f1.NumBuckets(); b++ {
		if !bytes.Equal(f1.sol[b*pb:(b+1)*pb], f2.sol[b*pb:(b+1)*pb]) {
			changed++
		}
	}
	if changed > 10 {
		t.Fatalf("%d buckets changed for 10 added keys", changed)
	}
}

func TestRibbonEncodeDecodeRoundTrip(t *testing.T) {
	keys := synthKeys(5, 1234, 40)
	f, _, err := Build(2, keys, 7)
	if err != nil {
		t.Fatal(err)
	}
	enc := f.AppendEncode(nil)
	if len(enc) != f.EncodedLen() {
		t.Fatalf("EncodedLen %d != len %d", f.EncodedLen(), len(enc))
	}
	withTrailer := append(append([]byte(nil), enc...), 0xAA, 0xBB)
	dec, n, err := DecodePrefix(withTrailer)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d, want %d", n, len(enc))
	}
	if !bytes.Equal(dec.AppendEncode(nil), enc) {
		t.Fatal("re-encode not canonical")
	}
	for _, k := range keys[:100] {
		m1, h1 := f.Probe(2, k)
		m2, h2 := dec.Probe(2, k)
		if m1 != m2 || h1 != h2 {
			t.Fatal("decoded filter probes differently")
		}
	}
}

func TestRibbonDecodeRejects(t *testing.T) {
	f, _, err := Build(0, synthKeys(4, 500, 40), 1)
	if err != nil {
		t.Fatal(err)
	}
	enc := f.AppendEncode(nil)
	corrupt := func(mut func([]byte)) []byte {
		c := append([]byte(nil), enc...)
		mut(c)
		return c
	}
	cases := map[string][]byte{
		"short header":   enc[:5],
		"rBits zero":     corrupt(func(b []byte) { b[0] = 0 }),
		"rBits nine":     corrupt(func(b []byte) { b[0] = 9 }),
		"pad nonzero":    corrupt(func(b []byte) { b[1] = 1 }),
		"slots unaliged": corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[2:], 77) }),
		"slots tiny":     corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[2:], 64) }),
		"slots huge":     corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[2:], 1 << 21) }),
		"buckets zero":   corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[6:], 0) }),
		// A bucket count that would overflow a 32-bit int byte total must
		// be rejected by the int64 bound, not wrapped.
		"buckets huge": corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[6:], 1<<24) }),
		"truncated":    enc[:len(enc)-1],
		"plane pad":    corrupt(func(b []byte) { b[len(b)-1] = 0xFF }),
	}
	for name, data := range cases {
		if _, _, err := DecodePrefix(data); err == nil {
			t.Errorf("%s: decode accepted", name)
		}
	}
	if _, _, err := DecodePrefix(enc); err != nil {
		t.Fatalf("pristine rejected: %v", err)
	}
}

func TestRibbonProbeZeroAlloc(t *testing.T) {
	keys := synthKeys(6, 3000, 40)
	f, _, err := Build(0, keys, 7)
	if err != nil {
		t.Fatal(err)
	}
	key := keys[42]
	allocs := testing.AllocsPerRun(1000, func() {
		f.Probe(0, key)
	})
	if allocs != 0 {
		t.Fatalf("Probe allocates %.2f per run", allocs)
	}
}

// The estimate formula must agree with what Build actually produces —
// the cascade's per-level kind selection depends on it.
func TestRibbonEstimateMatchesBuild(t *testing.T) {
	for _, n := range []int{0, 1, 50, 300, 2000, 20000} {
		f, _, err := Build(0, synthKeys(int64(n), n, 40), 7)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := f.EncodedLen(), EstimateBytes(n, 7); got != want {
			t.Fatalf("n=%d: EncodedLen %d != EstimateBytes %d", n, got, want)
		}
	}
}

func BenchmarkRibbonProbe(b *testing.B) {
	keys := synthKeys(8, 100000, 40)
	f, _, err := Build(0, keys, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Probe(0, keys[i%len(keys)])
	}
}

func BenchmarkRibbonBuild(b *testing.B) {
	keys := synthKeys(9, 100000, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Build(0, keys, 7); err != nil {
			b.Fatal(err)
		}
	}
}
