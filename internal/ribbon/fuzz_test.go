package ribbon

import (
	"bytes"
	"testing"
)

// FuzzRibbonDecode feeds hostile bytes straight into the level decoder.
// The invariants: never panic, never over-read, and any accepted input
// must re-encode to exactly the bytes consumed (canonical form), with
// probes that run without faulting.
func FuzzRibbonDecode(f *testing.F) {
	for _, n := range []int{0, 40, 700} {
		flt, _, err := Build(0, synthKeys(int64(n), n, 40), 7)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(flt.AppendEncode(nil))
	}
	small, _, err := Build(1, synthKeys(3, 5, 40), 1)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append(small.AppendEncode(nil), 0xFF, 0x00, 0x7F))

	probe := bytes.Repeat([]byte{0x5A}, 40)
	f.Fuzz(func(t *testing.T, data []byte) {
		flt, n, err := DecodePrefix(data)
		if err != nil {
			return
		}
		if n < headerLen || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		if !bytes.Equal(flt.AppendEncode(nil), data[:n]) {
			t.Fatal("accepted input does not re-encode canonically")
		}
		flt.Probe(0, probe)
		flt.Probe(1, probe[:1])
		flt.Probe(2, nil)
	})
}
