// Package ribbon implements a BuRR-style (Bumped Ribbon Retrieval)
// static filter: each key stores an r-bit fingerprint in a linear system
// C·Z = F over GF(2), where a key's row C(k) is a narrow 64-bit window of
// coefficient bits at a hashed start position. The system is solved once
// at build time by banded Gaussian elimination (insertion keeps each
// row's leading one as a pivot; back-substitution fills the solution Z),
// and a probe recomputes the row, dot-products it against Z and compares
// the retrieved bits with the key's recomputed fingerprint.
//
// For a member key the retrieved bits always equal the fingerprint — no
// false negatives, ever. For a non-member the match probability is 2^-r.
// That is the same contract as a Bloom filter at k = r, but the ribbon
// stores ~1.1·r bits per key instead of Bloom's 1.44·r (and instead of
// the ~2.9·r of a half-full publisher Bloom sized for future growth),
// which is what makes it the succinct level representation behind
// internal/cascade.
//
// # Buckets
//
// Keys are split by hash into fixed-size buckets, each an independent
// little linear system. Buckets buy two things: build time stays linear
// (no giant band matrix), and — critically for the cascade's daily delta
// chain — a key only influences the bytes of its own bucket, so a
// publisher that re-solves after churn produces a byte diff proportional
// to the churn, not to the filter.
//
// # Bumping
//
// A banded system can be unsolvable for an unlucky bucket (too many rows
// land on the same pivots). Such rows are *bumped*: Build returns their
// 64-bit key hashes and the caller stores them in an exact side list that
// forces "contains" for those keys. Bumping therefore never causes a
// false negative; a side-list hash collision is just one more false
// positive, which the next cascade level captures like any other. With
// the default ~12% slot slack bumps are rare (well under 0.1% of keys).
//
// Probes are zero-alloc and read the solution through plain byte-slice
// windows, so a decoded filter can alias an mmap'd artifact directly.
package ribbon

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sort"
)

const (
	// window is the coefficient band width: each key's row spans 64
	// consecutive slots starting at its hashed position.
	window = 64
	// minSlots is the smallest legal bucket: the start range
	// [0, slots-window] must be non-empty with a little headroom.
	minSlots = 72
	// bucketLoad is the target key count per bucket.
	bucketLoad = 280
	// headerLen frames an encoded filter: rBits, a zero pad byte,
	// slots u32, nBuckets u32.
	headerLen = 1 + 1 + 4 + 4
	// maxEncodedSlots / maxEncodedBuckets bound hostile headers.
	maxEncodedSlots   = 1 << 20
	maxEncodedBuckets = 1 << 24
)

// Filter is a built (or decoded) ribbon filter. It is immutable and safe
// for concurrent use; sol may alias the buffer handed to DecodePrefix.
type Filter struct {
	rBits      uint8
	slots      uint32 // per bucket, multiple of 8, ≥ minSlots
	nBuckets   uint32
	planeBytes int    // slots/8 + 1 pad byte so window loads stay in range
	sol        []byte // nBuckets × rBits planes of planeBytes each
}

// geometry picks the bucket layout for n keys: enough buckets to hold
// ~bucketLoad keys each, and per-bucket slots with ~12.5% slack (floor
// 16) so the banded systems solve with only rare bumps.
func geometry(n int) (slots, nBuckets uint32) {
	if n < 1 {
		n = 1
	}
	nb := (n + bucketLoad - 1) / bucketLoad
	avg := (n + nb - 1) / nb
	extra := avg / 8
	if extra < 16 {
		extra = 16
	}
	s := (avg + extra + 7) &^ 7
	if s < minSlots {
		s = minSlots
	}
	return uint32(s), uint32(nb)
}

// EstimateBytes returns the encoded size a Build over n keys will
// produce (excluding bumped side-list entries, which are rare). The
// formula is deterministic, so callers can select between level
// representations without building both.
func EstimateBytes(n, rBits int) int {
	slots, nBuckets := geometry(n)
	planeBytes := int(slots)/8 + 1
	return headerLen + int(nBuckets)*rBits*planeBytes
}

// row is a key's reduced position in its bucket's linear system.
type row struct {
	bucket uint32
	start  uint32
	coeff  uint64
	fp     uint8
	h64    uint64
}

// params derives a key's row from sha256(salt||key). The digest's bytes
// are partitioned so bucket/start, coefficients, fingerprint and the
// side-list hash are independent: [0:8) start+bucket, [8:16) coefficients,
// [16] fingerprint, [17:25) side-list hash.
func (f *Filter) params(salt byte, key []byte) row {
	return deriveRow(salt, key, f.rBits, f.slots, f.nBuckets)
}

func deriveRow(salt byte, key []byte, rBits uint8, slots, nBuckets uint32) row {
	var buf [64]byte
	var b []byte
	if len(key) < len(buf) {
		b = buf[:1+len(key)]
	} else {
		b = make([]byte, 1+len(key))
	}
	b[0] = salt
	copy(b[1:], key)
	sum := sha256.Sum256(b)
	h1 := binary.LittleEndian.Uint64(sum[0:8])
	coeff := binary.LittleEndian.Uint64(sum[8:16]) | 1
	return row{
		bucket: uint32((uint64(uint32(h1>>32)) * uint64(nBuckets)) >> 32),
		start:  uint32((uint64(uint32(h1)) * uint64(slots-window+1)) >> 32),
		coeff:  coeff,
		fp:     sum[16] & byte(1<<rBits-1),
		h64:    binary.LittleEndian.Uint64(sum[17:25]),
	}
}

// Hash64 returns the side-list hash of a key: the exact 64-bit identity
// that bumped (and publisher-stashed) keys are stored under.
func Hash64(salt byte, key []byte) uint64 {
	var buf [64]byte
	var b []byte
	if len(key) < len(buf) {
		b = buf[:1+len(key)]
	} else {
		b = make([]byte, 1+len(key))
	}
	b[0] = salt
	copy(b[1:], key)
	sum := sha256.Sum256(b)
	return binary.LittleEndian.Uint64(sum[17:25])
}

// Build solves a ribbon filter holding an rBits-wide fingerprint for
// every key (1 ≤ rBits ≤ 8). The second return value lists the 64-bit
// hashes (Hash64) of bumped keys — rows the banded elimination could not
// place — sorted ascending and deduplicated; the caller must keep them
// in an exact side list to preserve the no-false-negative contract.
// Identical geometry and key set always produce identical bytes.
func Build(salt byte, keys [][]byte, rBits int) (*Filter, []uint64, error) {
	if rBits < 1 || rBits > 8 {
		return nil, nil, fmt.Errorf("ribbon: rBits %d outside [1,8]", rBits)
	}
	slots, nBuckets := geometry(len(keys))
	f := &Filter{
		rBits:      uint8(rBits),
		slots:      slots,
		nBuckets:   nBuckets,
		planeBytes: int(slots)/8 + 1,
	}
	f.sol = make([]byte, int(nBuckets)*rBits*f.planeBytes)

	rows := make([]row, len(keys))
	for i, k := range keys {
		rows[i] = deriveRow(salt, k, f.rBits, slots, nBuckets)
	}
	// Bucket-major, then ascending start: the natural order for banded
	// elimination, and a fixed order makes the solved bytes a pure
	// function of the key set.
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.bucket != b.bucket {
			return a.bucket < b.bucket
		}
		if a.start != b.start {
			return a.start < b.start
		}
		if a.coeff != b.coeff {
			return a.coeff < b.coeff
		}
		return a.h64 < b.h64
	})

	coeffs := make([]uint64, slots)
	rhs := make([]uint8, slots)
	z := make([]uint8, slots)
	var bumped []uint64
	for lo := 0; lo < len(rows); {
		b := rows[lo].bucket
		hi := lo
		for hi < len(rows) && rows[hi].bucket == b {
			hi++
		}
		for i := range coeffs {
			coeffs[i] = 0
			rhs[i] = 0
		}
		for _, r := range rows[lo:hi] {
			if !insertRow(coeffs, rhs, r) {
				bumped = append(bumped, r.h64)
			}
		}
		backSubstitute(coeffs, rhs, z)
		f.packBucket(int(b), z)
		lo = hi
	}
	sort.Slice(bumped, func(i, j int) bool { return bumped[i] < bumped[j] })
	out := bumped[:0]
	for i, h := range bumped {
		if i == 0 || h != bumped[i-1] {
			out = append(out, h)
		}
	}
	return f, out, nil
}

// insertRow performs one step of on-the-fly banded elimination: reduce
// the row against existing pivots until it lands on a free slot (placed),
// vanishes consistently (redundant), or vanishes inconsistently (bumped).
// Every set bit of every stored row stays below len(coeffs), so the slot
// cursor never leaves the bucket.
func insertRow(coeffs []uint64, rhs []uint8, r row) bool {
	s, c, v := r.start, r.coeff, r.fp
	for {
		if coeffs[s] == 0 {
			coeffs[s] = c
			rhs[s] = v
			return true
		}
		c ^= coeffs[s]
		v ^= rhs[s]
		if c == 0 {
			return v == 0 // equal row already present → redundant, not bumped
		}
		t := bits.TrailingZeros64(c)
		c >>= uint(t)
		s += uint32(t)
	}
}

// backSubstitute solves for Z from the eliminated rows, bottom-up. Free
// slots (no pivot) are fixed to zero for canonical output.
func backSubstitute(coeffs []uint64, rhs []uint8, z []uint8) {
	for s := len(coeffs) - 1; s >= 0; s-- {
		c := coeffs[s]
		if c == 0 {
			z[s] = 0
			continue
		}
		acc := rhs[s]
		rest := c >> 1
		i := s + 1
		for rest != 0 {
			t := bits.TrailingZeros64(rest)
			i += t
			acc ^= z[i]
			rest >>= uint(t)
			rest >>= 1
			i++
		}
		z[s] = acc
	}
}

// packBucket transposes the per-slot solution bytes into rBits bit
// planes (plane j, bit s = bit j of z[s]), LSB-first within each byte so
// probes can read 64-slot windows with two little-endian loads.
func (f *Filter) packBucket(bucket int, z []uint8) {
	base := bucket * int(f.rBits) * f.planeBytes
	for j := 0; j < int(f.rBits); j++ {
		plane := f.sol[base+j*f.planeBytes : base+(j+1)*f.planeBytes]
		for s, v := range z {
			plane[s>>3] |= (v >> uint(j) & 1) << uint(s&7)
		}
	}
}

// load64 reads the 64 solution bits starting at bit position off. The
// plane's trailing pad byte guarantees the high read stays in range; a
// shift count of 64 (off on a byte boundary) is defined in Go and yields
// the zero high half.
func load64(plane []byte, off uint32) uint64 {
	byteOff := int(off >> 3)
	sh := off & 7
	lo := binary.LittleEndian.Uint64(plane[byteOff:])
	hi := uint64(plane[byteOff+8])
	return lo>>sh | hi<<(64-sh)
}

// Probe retrieves the key's bits and reports whether they match its
// recomputed fingerprint, plus the key's side-list hash so the caller
// can consult its bump/stash list without hashing again. Member keys
// always match; non-members match with probability 2^-rBits.
// Zero allocations.
func (f *Filter) Probe(salt byte, key []byte) (match bool, h64 uint64) {
	r := f.params(salt, key)
	base := int(r.bucket) * int(f.rBits) * f.planeBytes
	got := uint8(0)
	for j := 0; j < int(f.rBits); j++ {
		w := load64(f.sol[base+j*f.planeBytes:], r.start)
		got |= uint8(bits.OnesCount64(w&r.coeff)&1) << uint(j)
	}
	return got == r.fp, r.h64
}

// Contains is Probe without the hash (for callers with no side list).
func (f *Filter) Contains(salt byte, key []byte) bool {
	m, _ := f.Probe(salt, key)
	return m
}

// RBits returns the fingerprint width.
func (f *Filter) RBits() int { return int(f.rBits) }

// NumBuckets returns the bucket count.
func (f *Filter) NumBuckets() int { return int(f.nBuckets) }

// Slots returns the per-bucket slot count.
func (f *Filter) Slots() int { return int(f.slots) }

// EncodedLen returns the exact AppendEncode output length.
func (f *Filter) EncodedLen() int { return headerLen + len(f.sol) }

// AppendEncode appends the filter's wire form to dst: rBits, a zero
// byte, slots u32, nBuckets u32, then the solution planes.
func (f *Filter) AppendEncode(dst []byte) []byte {
	dst = append(dst, f.rBits, 0)
	dst = binary.LittleEndian.AppendUint32(dst, f.slots)
	dst = binary.LittleEndian.AppendUint32(dst, f.nBuckets)
	return append(dst, f.sol...)
}

// DecodePrefix parses an encoded filter from the front of data and
// returns it with the number of bytes consumed. The filter aliases data.
// Every field is validated — sizes are computed in int64 so a hostile
// header cannot wrap the byte count on 32-bit platforms — and the
// encoding is canonical: a decoded filter re-encodes to identical bytes
// (the pad byte and each plane's trailing pad must be zero).
func DecodePrefix(data []byte) (*Filter, int, error) {
	if len(data) < headerLen {
		return nil, 0, errors.New("ribbon: truncated header")
	}
	rBits := data[0]
	if rBits < 1 || rBits > 8 {
		return nil, 0, fmt.Errorf("ribbon: rBits %d outside [1,8]", rBits)
	}
	if data[1] != 0 {
		return nil, 0, errors.New("ribbon: nonzero pad byte")
	}
	slots := binary.LittleEndian.Uint32(data[2:])
	nBuckets := binary.LittleEndian.Uint32(data[6:])
	if slots < minSlots || slots > maxEncodedSlots || slots%8 != 0 {
		return nil, 0, fmt.Errorf("ribbon: slot count %d invalid", slots)
	}
	if nBuckets < 1 || nBuckets > maxEncodedBuckets {
		return nil, 0, fmt.Errorf("ribbon: bucket count %d invalid", nBuckets)
	}
	planeBytes := int64(slots)/8 + 1
	solLen := int64(nBuckets) * int64(rBits) * planeBytes
	if solLen > int64(len(data)-headerLen) {
		return nil, 0, errors.New("ribbon: truncated solution planes")
	}
	f := &Filter{
		rBits:      rBits,
		slots:      slots,
		nBuckets:   nBuckets,
		planeBytes: int(planeBytes),
		sol:        data[headerLen : headerLen+int(solLen)],
	}
	// Canonical: every plane's pad byte is zero (slots is a multiple of
	// 8, so the pad carries no solution bits).
	for off := int(planeBytes) - 1; off < len(f.sol); off += int(planeBytes) {
		if f.sol[off] != 0 {
			return nil, 0, errors.New("ribbon: nonzero plane padding")
		}
	}
	return f, headerLen + int(solLen), nil
}
