GO ?= go

.PHONY: check vet build test race race-hot bench-smoke bench bench-all bench-crl bench-crl-check bench-fleet bench-fleet-check bench-revdb bench-revdb-check bench-world bench-world-check bench-cascade bench-cascade-check bench-scenario bench-scenario-check chaos fuzz-short

# check is the full pre-merge gate: static checks, race-enabled tests on
# the concurrency-hot packages and then the whole tree (including the
# cascade differential battery in internal/workload), the chaos
# differential harness on its fixed seeds, a short fuzz pass over the
# DER-facing parsers, and a one-iteration smoke of the end-to-end
# world-build benchmark.
check: vet build race-hot race chaos fuzz-short bench-smoke bench-crl-check bench-fleet-check bench-revdb-check bench-world-check bench-cascade-check bench-scenario-check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-hot gives fast feedback on the packages where the serving-layer
# and client-layer concurrency lives (pre-signed OCSP cache, batched
# crawler pool, fault injector, sharded browser cache, fleet driver,
# revocation store backends).
race-hot:
	$(GO) test -race ./internal/ocsp ./internal/crawler ./internal/faultnet/... ./internal/browser ./internal/fleet ./internal/revdb ./internal/revdb/segdb ./internal/corpus ./internal/workload ./internal/cascade ./internal/ribbon ./internal/hist ./internal/scenario

# chaos runs the seeded fault-injection differential harness: fixed seeds,
# each played twice faulted and once clean, asserting determinism,
# convergence, and no stale Good.
chaos:
	$(GO) run ./cmd/chaos -seeds 20150501,3,77,424242

# fuzz-short gives each DER-facing fuzz target a 10s budget — enough to
# exercise the corpus plus some fresh mutations on every merge.
fuzz-short:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=10s ./internal/der
	$(GO) test -run='^$$' -fuzz=FuzzParseCRL -fuzztime=10s ./internal/crl
	$(GO) test -run='^$$' -fuzz=FuzzParseCRLSet -fuzztime=10s ./internal/crlset
	$(GO) test -run='^$$' -fuzz=FuzzCascadeDecode -fuzztime=10s ./internal/cascade
	$(GO) test -run='^$$' -fuzz=FuzzRibbonDecode -fuzztime=10s ./internal/ribbon

# bench-smoke builds one world end to end under the benchmark harness —
# enough to catch pipeline regressions without paying for stable timings.
bench-smoke:
	$(GO) test -run='^$$' -bench=BenchmarkWorldBuild -benchtime=1x .

# bench regenerates BENCH_pr2.json: the OCSP serving-layer load report
# (cold per-request signing vs warm pre-signed cache).
bench:
	$(GO) run ./cmd/revload -o BENCH_pr2.json

# bench-all runs every Go benchmark with memory stats (slow).
bench-all:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# bench-crl regenerates BENCH_pr4.json: the CRL data-path record
# (streaming parse, incremental re-sign, interned ingest) at full
# Heartbleed-scale fixtures.
bench-crl:
	$(GO) run ./cmd/benchcrl -o BENCH_pr4.json

# bench-crl-check is the benchstat-style regression gate in `make check`:
# it re-runs the CRL benchmarks on small fixtures (allocs/op for these
# paths is fixture-size independent) and fails if allocs/op regress
# against the numbers recorded in BENCH_pr4.json.
bench-crl-check:
	$(GO) run ./cmd/benchcrl -check BENCH_pr4.json -quick

# bench-fleet regenerates BENCH_pr5.json: the client-side fleet record
# (seed single-mutex cache vs sharded singleflight cache vs CRLSet/Bloom
# fast paths) at the full population.
bench-fleet:
	$(GO) run ./cmd/fleetload -o BENCH_pr5.json

# bench-fleet-check re-runs the fleet phases on a small population and
# fails if any acceptance gate (alloc reduction, singleflight collapse,
# warm hit ratio, worker-count determinism, CRLSet offline) breaks or the
# warm allocs/verdict regress against BENCH_pr5.json.
bench-fleet-check:
	$(GO) run ./cmd/fleetload -check BENCH_pr5.json -quick

# bench-revdb regenerates BENCH_pr6.json: the revocation-store backend
# record (mem-vs-disk ingest throughput, zero-alloc mmap lookups,
# 1M-entry cold-start recovery, and the 10M-entry RSS budget run).
bench-revdb:
	$(GO) run ./cmd/benchrevdb -o BENCH_pr6.json

# bench-revdb-check is the regression gate in `make check`: it re-runs
# the quick store benchmarks (ingest ratio, zero-alloc warm lookup,
# recovery digest) and validates the full-run numbers recorded in
# BENCH_pr6.json, including the RSS budget split.
bench-revdb-check:
	$(GO) run ./cmd/benchrevdb -check BENCH_pr6.json -quick

# bench-world regenerates BENCH_pr7.json: the world-engine record
# (streaming-vs-in-memory analyze digest parity, 1M-cert build
# throughput ratio, and the paper-scale 38.5M-cert RSS budget run).
bench-world:
	$(GO) run ./cmd/benchworld -o BENCH_pr7.json

# bench-world-check is the regression gate in `make check`: it re-runs
# the digest-parity and build-ratio phases on small fixtures and
# validates the full-run numbers recorded in BENCH_pr7.json, including
# the 38.5M RSS budget split.
bench-world-check:
	$(GO) run ./cmd/benchworld -check BENCH_pr7.json -quick

# bench-cascade regenerates BENCH_pr9.json: the filter-cascade record
# (snapshot + daily-delta bytes/day/client vs CRLSet vs raw CRLs for both
# the Bloom and ribbon level families, the per-issuer sharded ribbon
# chain, the zero-FP/zero-FN exactness audits, and the fully-offline
# fleet phases for all three installed representations).
bench-cascade:
	$(GO) run ./cmd/benchcascade -o BENCH_pr9.json

# bench-scenario regenerates BENCH_pr10.json: the scenario-engine tail-
# latency record of the headline Heartbleed preset (one million simulated
# clients against the CDN-fronted responder tier: per-phase p50/p99/p999
# wall latency, virtual time-to-convergence, stale-Good count).
bench-scenario:
	$(GO) run ./cmd/scenario -preset heartbleed-1m -o BENCH_pr10.json

# bench-scenario-check is the SLO gate in `make check`: it replays the
# scenario at the quick population (identical virtual-time schedule, so
# convergence hours must match the record exactly) and fails if the warm
# p99 or brownout p999 exceed 3x the recorded baseline, any stale-Good
# survives convergence, the histogram record path allocates or exceeds
# 25 ns/op, or the scenario digest differs across worker counts.
bench-scenario-check:
	$(GO) run ./cmd/scenario -check BENCH_pr10.json -quick

# bench-cascade-check is the regression gate in `make check`: it re-runs
# the publisher and offline-fleet phases on a small world and fails if
# any gate (bandwidth ratios, exact coverage, offline allocs/verdict,
# zero network, ribbon snapshot <=0.70x Bloom, sharded ribbon below the
# CRLSet budget, ribbon probes within 2x Bloom ns/verdict, equal fleet
# digests) breaks or allocs regress against BENCH_pr9.json.
bench-cascade-check:
	$(GO) run ./cmd/benchcascade -check BENCH_pr9.json -quick
