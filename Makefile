GO ?= go

.PHONY: check vet build test race bench-smoke bench

# check is the full pre-merge gate: static checks, a race-enabled test
# run, and a one-iteration smoke of the end-to-end world-build benchmark.
check: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke builds one world end to end under the benchmark harness —
# enough to catch pipeline regressions without paying for stable timings.
bench-smoke:
	$(GO) test -run='^$$' -bench=BenchmarkWorldBuild -benchtime=1x .

# bench runs the full harness with memory stats (slow).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...
