GO ?= go

.PHONY: check vet build test race race-hot bench-smoke bench bench-all

# check is the full pre-merge gate: static checks, race-enabled tests on
# the concurrency-hot packages and then the whole tree, and a
# one-iteration smoke of the end-to-end world-build benchmark.
check: vet build race-hot race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-hot gives fast feedback on the packages where the serving-layer
# concurrency lives (pre-signed OCSP cache, batched crawler pool).
race-hot:
	$(GO) test -race ./internal/ocsp ./internal/crawler

# bench-smoke builds one world end to end under the benchmark harness —
# enough to catch pipeline regressions without paying for stable timings.
bench-smoke:
	$(GO) test -run='^$$' -bench=BenchmarkWorldBuild -benchtime=1x .

# bench regenerates BENCH_pr2.json: the OCSP serving-layer load report
# (cold per-request signing vs warm pre-signed cache).
bench:
	$(GO) run ./cmd/revload -o BENCH_pr2.json

# bench-all runs every Go benchmark with memory stats (slow).
bench-all:
	$(GO) test -run='^$$' -bench=. -benchmem ./...
