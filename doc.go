// Package repro is a from-scratch Go reproduction of "An End-to-End
// Measurement of Certificate Revocation in the Web's PKI" (IMC 2015): the
// PKI wire formats (DER, X.509, CRL, OCSP), the measurement apparatus
// (scanner, CRL crawler, revocation database), the browser
// revocation-policy engine with its test suite, the CRLSet pipeline, and
// the Bloom-filter alternative — plus a benchmark harness that regenerates
// every table and figure of the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-versus-measured results. The root package holds
// only the repository-wide benchmark suite (bench_test.go); the library
// lives under internal/ and the executables under cmd/.
package repro
